//! Test-runner configuration and the failure type used by the
//! `prop_assert*` macros.

use rand::SeedableRng;
use std::fmt;

/// The RNG all strategies draw from.
pub type TestRng = rand::rngs::StdRng;

/// Runner configuration (only `cases` is meaningful in this stand-in).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed property check (produced by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// FNV-1a over a test-function name: a stable per-test seed component.
pub fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xCBF29CE484222325u64;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001B3);
    }
    hash
}

/// Deterministic RNG for one test case: reruns reproduce failures exactly.
pub fn case_rng(fn_seed: u64, case: u32) -> TestRng {
    TestRng::seed_from_u64(fn_seed ^ (u64::from(case)).wrapping_mul(0x9E3779B97F4A7C15))
}
