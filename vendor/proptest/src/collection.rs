//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    start: usize,
    end: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

/// A `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.start + 1 >= self.size.end {
            self.size.start
        } else {
            rng.gen_range(self.size.start..self.size.end)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
