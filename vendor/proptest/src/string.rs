//! String generation from simple regex-like patterns.
//!
//! Upstream proptest treats `&str` as a full regex strategy. This stand-in
//! supports the pragmatic subset used by the workspace's tests: sequences
//! of character classes (`[a-z0-9_]`) or literal characters, each followed
//! by an optional `{m,n}`, `{n}`, `+`, `*` or `?` repetition.

use crate::test_runner::TestRng;
use rand::Rng;

/// Generates one string matching `pattern`.
pub fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
            let class = parse_class(&chars[i + 1..close], pattern);
            i = close + 1;
            class
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        let (lo, hi) = parse_repeat(&chars, &mut i, pattern);
        let n = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        for _ in 0..n {
            out.push(alphabet[rng.gen_range(0..alphabet.len())]);
        }
    }
    out
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if j + 2 < body.len() && body[j + 1] == '-' {
            let (a, b) = (body[j], body[j + 2]);
            assert!(a <= b, "bad class range in pattern {pattern:?}");
            for c in a..=b {
                set.push(c);
            }
            j += 3;
        } else {
            set.push(body[j]);
            j += 1;
        }
    }
    assert!(
        !set.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    set
}

fn parse_repeat(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| *i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repeat lower bound"),
                    hi.trim().parse().expect("bad repeat upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repeat count");
                    (n, n)
                }
            }
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        _ => (1, 1),
    }
}
