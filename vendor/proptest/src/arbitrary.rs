//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Returns the canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps failure output readable.
        rng.gen_range(0x20u32..0x7F) as u8 as char
    }
}
