//! A minimal, offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the subset of proptest its property tests use: composable generation
//! [`Strategy`]s (`prop_map`, `prop_filter`, `prop_flat_map`, tuples,
//! ranges, [`collection::vec`], [`option::of`], `any::<T>()`, simple
//! regex-ish string patterns) plus the [`proptest!`], [`prop_oneof!`],
//! [`prop_assert!`] and [`prop_assert_eq!`] macros.
//!
//! Differences from upstream: failing cases are **not shrunk** (the
//! failing input is printed as generated), and generation is seeded
//! deterministically per test function so failures reproduce exactly.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs one property-test function: `cases` generated inputs, panicking on
/// the first failure. Used by the [`proptest!`] macro expansion.
#[macro_export]
macro_rules! proptest {
    (@body ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let fn_seed = $crate::test_runner::fnv1a(stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::case_rng(fn_seed, case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest: test `{}` failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Like `assert!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Like `assert_eq!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Like `assert_ne!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}
