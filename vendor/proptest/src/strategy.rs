//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking: `generate` draws one
/// value from the strategy using the runner's RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy (what [`crate::prop_oneof!`] arms become).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among same-typed strategies.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `Vec<S>` generates one value per element strategy (used when a
/// dynamically built list of strategies feeds a tuple).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// String literals act as simple regex-ish patterns (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
