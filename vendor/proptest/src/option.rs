//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// `None` a quarter of the time, `Some` from `inner` otherwise (matching
/// upstream's default 3:1 weighting toward `Some`).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_range(0..4usize) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
