//! A minimal, offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the subset of the criterion API its benches use: [`Criterion`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`].
//! Each benchmark is timed over `sample_size` samples with an adaptive
//! per-sample iteration count; min / median / mean are printed to stdout.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Benchmark driver and configuration.
pub struct Criterion {
    sample_size: usize,
    /// Target time per benchmark (drives the per-sample iteration count).
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        // Calibrate: how many iterations fit in ~1/sample_size of the
        // measurement budget?
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let once = bencher.elapsed.max(Duration::from_nanos(1));
        let budget = self.measurement_time / self.sample_size as u32;
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{name:<32} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            self.sample_size,
            iters,
        );
        self
    }
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
