//! A minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` API its workload generators and
//! tests actually use: [`SeedableRng::seed_from_u64`], [`rngs::StdRng`],
//! and the [`Rng`] extension methods `gen_range` / `gen_bool` / `gen`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! upstream ChaCha-based `StdRng`, but every consumer in this workspace
//! only relies on *seed-determinism*, never on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators (the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        // 53 bits of mantissa is plenty for test probabilities.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<G: RngCore>(rng: &mut G) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<G: RngCore>(rng: &mut G) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<G: RngCore>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample (the `gen_range` argument).
pub trait SampleRange<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> StdRng {
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-1000..1000);
            assert!((-1000..1000).contains(&v));
            let u: usize = r.gen_range(3..17);
            assert!((3..17).contains(&u));
            let w: u8 = r.gen_range(1..=9);
            assert!((1..=9).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
