//! Every workload family, end to end at test scale: the MIR interpreter,
//! the compiled binary, and the BOLTed binary agree; BOLT reduces taken
//! branches on all of them.

use bolt::compiler::{compile_and_link, CompileOptions, Interp};
use bolt::emu::{Exit, Machine, NullSink};
use bolt::opt::{optimize, BoltOptions};
use bolt::profile::{LbrSampler, SampleTrigger};
use bolt::workloads::{Scale, Workload};

fn run_elf(elf: &bolt::elf::Elf) -> (i64, Vec<i64>) {
    let mut m = Machine::new();
    m.load_elf(elf);
    let r = m.run(&mut NullSink, u64::MAX).expect("runs");
    let Exit::Exited(code) = r.exit else {
        panic!("no exit: {:?}", r.exit);
    };
    (code, m.output)
}

fn check_workload(wl: Workload) {
    let program = wl.build(Scale::Test);

    // Interpreter oracle.
    let mut interp = Interp::new(&program, 2_000_000_000);
    let expected_code = interp.run(&[]).unwrap() & 0xFF;
    let expected_out = interp.output.clone();

    // Compiled binary.
    let bin = compile_and_link(&program, &CompileOptions::default()).expect("compiles");
    let (code, out) = run_elf(&bin.elf);
    assert_eq!(code & 0xFF, expected_code, "{}: compiled exit", wl.name());
    assert_eq!(out, expected_out, "{}: compiled output", wl.name());

    // Profile + BOLT.
    let mut m = Machine::new();
    m.load_elf(&bin.elf);
    let mut sampler = LbrSampler::new(499, SampleTrigger::Instructions);
    m.run(&mut sampler, u64::MAX).unwrap();
    let bolted =
        optimize(&bin.elf, &sampler.profile, &BoltOptions::paper_default()).expect("bolts");
    let (code, out) = run_elf(&bolted.elf);
    assert_eq!(code & 0xFF, expected_code, "{}: bolted exit", wl.name());
    assert_eq!(out, expected_out, "{}: bolted output", wl.name());

    // Layout improves by the paper's own metric.
    let delta = bolted.dyno_after.taken_branch_delta(&bolted.dyno_before);
    assert!(
        delta < 0.0,
        "{}: taken branches should drop, got {delta:+.1}%",
        wl.name()
    );
}

#[test]
fn hhvm_like() {
    check_workload(Workload::Hhvm);
}

#[test]
fn tao_like() {
    check_workload(Workload::Tao);
}

#[test]
fn proxygen_like() {
    check_workload(Workload::Proxygen);
}

#[test]
fn multifeed1_like() {
    check_workload(Workload::Multifeed1);
}

#[test]
fn multifeed2_like() {
    check_workload(Workload::Multifeed2);
}

#[test]
fn clang_like() {
    check_workload(Workload::ClangLike);
}

#[test]
fn gcc_like() {
    check_workload(Workload::GccLike);
}

#[test]
fn interp_like() {
    check_workload(Workload::Interp);
}
