//! Pipeline-equivalence tests for the registry-driven `PassManager`: on a
//! real profiled `Workload::Tao` binary, the manager must produce reports
//! (names, order, change counts) and a function order identical to the
//! pre-refactor hand-inlined pipeline, with wall-clock timing attached.

use bolt::compiler::{compile_and_link, CompileOptions};
use bolt::emu::Machine;
use bolt::ir::BinaryContext;
use bolt::opt::{disassemble_all, discover};
use bolt::passes::{
    fixup, frame, icf, icp, inline_small, layout, peephole, plt, reorder_functions, ro_loads,
    run_pipeline, sctc, uce, PassManager, PassOptions,
};
use bolt::profile::{attach_profile, LbrSampler, SampleTrigger};
use bolt::workloads::{Scale, Workload};

/// A profiled, disassembled TAO context (the driver's state right before
/// the optimization pipeline runs).
fn tao_ctx() -> BinaryContext {
    let program = Workload::Tao.build(Scale::Test);
    let binary = compile_and_link(&program, &CompileOptions::default()).expect("tao compiles");
    let mut machine = Machine::new();
    machine.load_elf(&binary.elf);
    let mut sampler = LbrSampler::new(997, SampleTrigger::Instructions);
    machine.run(&mut sampler, 100_000_000).expect("tao runs");
    let (mut ctx, raw) = discover(&binary.elf);
    disassemble_all(&mut ctx, &raw, &binary.elf);
    attach_profile(&mut ctx, &sampler.profile);
    ctx
}

/// The pre-refactor `run_pipeline` body, reproduced verbatim (minus the
/// debug-only validation): sixteen hand-inlined stanzas. This is the
/// behavioral baseline the manager must match exactly — with one
/// intentional divergence: the branch-fixup re-run after `sctc` is now
/// reported as its own `fixup-branches` entry instead of having its
/// change count discarded and its wall clock folded into sctc's.
fn legacy_pipeline(
    ctx: &mut BinaryContext,
    opts: &PassOptions,
) -> (Vec<(&'static str, u64)>, Vec<usize>) {
    let mut reports: Vec<(&'static str, u64)> = Vec::new();
    if opts.strip_rep_ret {
        reports.push(("strip-rep-ret", peephole::strip_rep_ret(ctx)));
    }
    if opts.icf {
        reports.push(("icf", icf::run_icf(ctx)));
    }
    if opts.icp {
        reports.push(("icp", icp::run_icp(ctx, opts.icp_threshold)));
    }
    if opts.peepholes {
        reports.push(("peepholes", peephole::run_peepholes(ctx)));
    }
    if opts.inline_small {
        reports.push(("inline-small", inline_small::run_inline_small(ctx)));
    }
    if opts.simplify_ro_loads {
        reports.push(("simplify-ro-loads", ro_loads::run_simplify_ro_loads(ctx)));
    }
    if opts.icf {
        reports.push(("icf", icf::run_icf(ctx)));
    }
    if opts.plt {
        reports.push(("plt", plt::run_plt(ctx)));
    }
    reports.push((
        "reorder-bbs",
        layout::run_reorder_bbs(
            ctx,
            opts.reorder_blocks,
            opts.split_functions,
            opts.split_all_cold,
            opts.split_eh,
        ),
    ));
    if opts.peepholes {
        reports.push(("peepholes", peephole::run_peepholes(ctx)));
    }
    if opts.uce {
        reports.push(("uce", uce::run_uce(ctx)));
    }
    reports.push(("fixup-branches", fixup::run_fixup_branches(ctx)));
    let function_order = reorder_functions::run_reorder_functions(ctx, opts.reorder_functions);
    reports.push(("reorder-functions", function_order.len() as u64));
    if opts.sctc {
        reports.push(("sctc", sctc::run_sctc(ctx)));
        reports.push(("fixup-branches", fixup::run_fixup_branches(ctx)));
    }
    if opts.frame_opts {
        reports.push(("frame-opts", frame::run_frame_opts(ctx)));
    }
    if opts.shrink_wrapping {
        reports.push(("shrink-wrapping", frame::run_shrink_wrapping(ctx)));
    }
    (reports, function_order)
}

#[test]
fn manager_matches_legacy_pipeline_on_tao() {
    let baseline_ctx = tao_ctx();
    for (label, opts) in [
        ("default", PassOptions::default()),
        ("layout-only", PassOptions::layout_only()),
        ("none", PassOptions::none()),
    ] {
        let mut legacy_ctx = baseline_ctx.clone();
        let (expected_reports, expected_order) = legacy_pipeline(&mut legacy_ctx, &opts);

        let mut manager_ctx = baseline_ctx.clone();
        let result = run_pipeline(&mut manager_ctx, &opts);

        let got: Vec<(&'static str, u64)> =
            result.reports.iter().map(|r| (r.name, r.changes)).collect();
        assert_eq!(got, expected_reports, "{label}: reports (names + changes)");
        assert_eq!(
            result.function_order, expected_order,
            "{label}: function order"
        );
    }
}

#[test]
fn default_pipeline_reports_every_table1_row_with_timing() {
    let mut ctx = tao_ctx();
    let result = run_pipeline(&mut ctx, &PassOptions::default());
    let names: Vec<&str> = result.reports.iter().map(|r| r.name).collect();
    assert_eq!(
        names,
        PassManager::standard_pass_names(),
        "default options run all sixteen Table-1 passes in order, plus \
         the post-sctc fixup-branches re-run as its own report"
    );
    assert!(
        result.total_duration() > std::time::Duration::ZERO,
        "wall-clock timing is recorded"
    );
    // run_pipeline uses the default manager config: no per-pass dyno.
    assert!(result.reports.iter().all(|r| r.dyno_before.is_none()));
}

#[test]
fn per_pass_dyno_deltas_when_requested() {
    let mut manager = PassManager::standard(&PassOptions::default());
    manager.config.collect_dyno = true;
    let mut ctx = tao_ctx();
    let result = manager.run(&mut ctx, &PassOptions::default());
    assert!(
        result
            .reports
            .iter()
            .all(|r| r.dyno_before.is_some() && r.dyno_after.is_some()),
        "every report carries before/after dyno stats"
    );
    // The layout pass exists to reduce taken branches; its delta must be
    // attributed to it (not just to the pipeline as a whole).
    let reorder = result
        .reports
        .iter()
        .find(|r| r.name == "reorder-bbs")
        .expect("reorder-bbs report");
    let (before, after) = (reorder.dyno_before.unwrap(), reorder.dyno_after.unwrap());
    assert!(
        after.taken_branches <= before.taken_branches,
        "reorder-bbs must not increase taken branches ({} -> {})",
        before.taken_branches,
        after.taken_branches
    );
}
