//! Supervised process-level sharding: the merged result (stdout output
//! words, fdata bytes, counter sums, exit status) must be byte-identical
//! to the in-process sharded path at any worker count, and an
//! interrupted run must resume — re-executing only the missing or
//! invalid shards — to the same bytes.
//!
//! These tests drive the real `bolt-run` binary end to end via
//! `CARGO_BIN_EXE_bolt-run`, exactly as the CI shard-invariance legs do.

use bolt::compiler::{compile_and_link, CompileOptions, FunctionBuilder, MirProgram, Operand};
use bolt::elf::write_elf;
use bolt::workloads::{Scale, Workload};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::OnceLock;

fn bolt_run() -> &'static str {
    env!("CARGO_BIN_EXE_bolt-run")
}

/// A unique scratch directory per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bolt-supervise-resume-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The clang-like workload binary on disk (it has the `config`
/// input-selection global, so shards partition the input space).
fn clang_elf_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let program = Workload::ClangLike.build(Scale::Test);
        let bin = compile_and_link(&program, &CompileOptions::default()).expect("compiles");
        write_elf(&bin.elf).expect("serializes")
    })
}

/// A trivial program whose entry returns 0 — the only way to observe
/// the `0 = full clean merge` row of the exit-code taxonomy, since the
/// evaluation workloads exit with their (nonzero) checksums.
fn exit0_elf_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut b = FunctionBuilder::new("main", 0, "main.c", 1);
        b.ret(Operand::Const(0));
        let mut p = MirProgram::with_entry("main");
        p.add_function(b.finish());
        p.validate().unwrap();
        let bin = compile_and_link(&p, &CompileOptions::default()).expect("compiles");
        write_elf(&bin.elf).expect("serializes")
    })
}

struct RunOutput {
    status: i32,
    stdout: Vec<u8>,
    stderr: String,
    fdata: Vec<u8>,
}

/// Runs `bolt-run` on `elf_path` with the shared measurement flags and
/// returns everything the merge semantics promise to keep identical.
fn run(elf_path: &Path, fdata: &Path, shards: usize, extra: &[&str]) -> RunOutput {
    let out = Command::new(bolt_run())
        .arg(elf_path)
        .arg("--fdata")
        .arg(fdata)
        .arg("--counters")
        .arg("--shards")
        .arg(shards.to_string())
        .arg("--shard-config")
        .arg("4000")
        .args(extra)
        // The CI matrix exports BOLT_* knobs; resolve identically in
        // both paths by clearing the ones that would diverge.
        .env_remove("BOLT_CRASH_AT")
        .output()
        .expect("bolt-run spawns");
    RunOutput {
        status: out.status.code().expect("no signal"),
        stdout: out.stdout,
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
        fdata: std::fs::read(fdata).unwrap_or_default(),
    }
}

/// The perf-stat counter block from stderr — the supervised path must
/// reproduce it exactly (the surrounding supervision report may
/// differ).
fn counter_lines(stderr: &str) -> Vec<&str> {
    stderr
        .lines()
        .filter(|l| {
            l.starts_with("  cycles")
                || l.starts_with("  ipc")
                || l.starts_with("  branch-misses")
                || l.starts_with("  L1-")
                || l.starts_with("  iTLB-")
                || l.starts_with("  LLC-")
        })
        .collect()
}

fn assert_identical(a: &RunOutput, b: &RunOutput, what: &str) {
    assert_eq!(a.stdout, b.stdout, "{what}: stdout must be byte-identical");
    assert_eq!(a.fdata, b.fdata, "{what}: fdata must be byte-identical");
    assert!(!a.fdata.is_empty(), "{what}: profile actually collected");
    assert_eq!(
        counter_lines(&a.stderr),
        counter_lines(&b.stderr),
        "{what}: counter sums must be identical"
    );
    assert_eq!(a.status, b.status, "{what}: exit status must agree");
}

#[test]
fn supervised_merge_is_byte_identical_to_in_process_at_1_and_8_shards() {
    let dir = scratch("identity");
    let elf_path = dir.join("app.elf");
    std::fs::write(&elf_path, clang_elf_bytes()).unwrap();

    for shards in [1usize, 8] {
        let baseline = run(&elf_path, &dir.join("a.fdata"), shards, &[]);
        let state = dir.join(format!("state-{shards}"));
        let supervised = run(
            &elf_path,
            &dir.join("b.fdata"),
            shards,
            &["--supervise", "--state-dir", state.to_str().unwrap()],
        );
        assert!(
            supervised.stderr.contains("supervise:"),
            "supervision report printed:\n{}",
            supervised.stderr
        );
        assert_identical(&baseline, &supervised, &format!("{shards} shards"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_run_resumes_to_identical_bytes() {
    let dir = scratch("resume");
    let elf_path = dir.join("app.elf");
    std::fs::write(&elf_path, clang_elf_bytes()).unwrap();
    let state = dir.join("state");
    let sup = |fdata: &Path, env: &[(&str, &str)]| {
        let mut cmd = Command::new(bolt_run());
        cmd.arg(&elf_path)
            .arg("--fdata")
            .arg(fdata)
            .arg("--counters")
            .arg("--shards")
            .arg("8")
            .arg("--shard-config")
            .arg("4000")
            .arg("--supervise")
            .arg("--backoff-ms")
            .arg("5")
            .arg("--state-dir")
            .arg(&state)
            .env_remove("BOLT_CRASH_AT");
        for (k, v) in env {
            cmd.env(k, v);
        }
        cmd.output().expect("bolt-run spawns")
    };

    // Complete run: the reference bytes.
    let full = sup(&dir.join("full.fdata"), &[]);
    assert!(full.status.code().is_some());
    let full_fdata = std::fs::read(dir.join("full.fdata")).unwrap();

    // Interruption model 1: a shard artifact vanishes (run died before
    // the worker finished). Model 2: a torn, non-atomic write left a
    // truncated artifact behind (validation must discard it).
    std::fs::remove_file(state.join("shard-3.bolta")).unwrap();
    let torn = state.join("shard-5.bolta");
    let bytes = std::fs::read(&torn).unwrap();
    std::fs::write(&torn, &bytes[..bytes.len() / 3]).unwrap();

    // Resume. Every *other* shard is poisoned: if the supervisor
    // re-spawned it instead of resuming its artifact, it would crash
    // out and quarantine, changing the output.
    let resumed = sup(
        &dir.join("resumed.fdata"),
        &[(
            "BOLT_CRASH_AT",
            "0:*:crash,1:*:crash,2:*:crash,4:*:crash,6:*:crash,7:*:crash",
        )],
    );
    let resumed_err = String::from_utf8_lossy(&resumed.stderr);
    assert_eq!(
        std::fs::read(dir.join("resumed.fdata")).unwrap(),
        full_fdata,
        "resumed run must reproduce the fdata byte-for-byte\n{resumed_err}"
    );
    assert_eq!(resumed.stdout, full.stdout, "stdout identical after resume");
    assert_eq!(resumed.status.code(), full.status.code());
    assert!(
        resumed_err.contains("[resumed]"),
        "resume events reported:\n{resumed_err}"
    );
    assert!(
        resumed_err.contains("[stale-artifact]"),
        "torn artifact discarded:\n{resumed_err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn state_dir_of_a_different_run_is_reset_not_merged() {
    let dir = scratch("fingerprint");
    let elf_path = dir.join("app.elf");
    std::fs::write(&elf_path, clang_elf_bytes()).unwrap();
    let state = dir.join("state");

    // Populate the state dir at 4000, then rerun with a different
    // shard-config base: every artifact is stale by fingerprint.
    let first = run(
        &elf_path,
        &dir.join("a.fdata"),
        4,
        &["--supervise", "--state-dir", state.to_str().unwrap()],
    );
    assert!(first.stderr.contains("supervise:"));
    let out = Command::new(bolt_run())
        .arg(&elf_path)
        .arg("--fdata")
        .arg(dir.join("b.fdata"))
        .arg("--counters")
        .arg("--shards")
        .arg("4")
        .arg("--shard-config")
        .arg("5000")
        .arg("--supervise")
        .arg("--state-dir")
        .arg(&state)
        .env_remove("BOLT_CRASH_AT")
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("[manifest-reset]"),
        "mismatched state dir reset:\n{stderr}"
    );
    assert!(
        !stderr.contains("[resumed]"),
        "no stale artifact may be resumed:\n{stderr}"
    );
    // And the result matches a fresh in-process run at base 5000.
    let baseline = Command::new(bolt_run())
        .arg(&elf_path)
        .arg("--fdata")
        .arg(dir.join("c.fdata"))
        .arg("--shards")
        .arg("4")
        .arg("--shard-config")
        .arg("5000")
        .env_remove("BOLT_CRASH_AT")
        .output()
        .unwrap();
    assert_eq!(out.stdout, baseline.stdout);
    assert_eq!(
        std::fs::read(dir.join("b.fdata")).unwrap(),
        std::fs::read(dir.join("c.fdata")).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_full_merge_of_an_exit0_binary_exits_0() {
    let dir = scratch("exit0");
    let elf_path = dir.join("zero.elf");
    std::fs::write(&elf_path, exit0_elf_bytes()).unwrap();
    let out = Command::new(bolt_run())
        .arg(&elf_path)
        .arg("--shards")
        .arg("2")
        .arg("--supervise")
        .arg("--state-dir")
        .arg(dir.join("state"))
        .env_remove("BOLT_CRASH_AT")
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "full clean merge is exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn step_budget_flag_and_env_are_honored_and_reported() {
    let dir = scratch("budget");
    let elf_path = dir.join("app.elf");
    std::fs::write(&elf_path, clang_elf_bytes()).unwrap();

    // Flag form, in-process path.
    let out = Command::new(bolt_run())
        .arg(&elf_path)
        .arg("--max-steps")
        .arg("1000")
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("did not exit") && stderr.contains("budget 1000"),
        "truncated run reports its budget:\n{stderr}"
    );
    assert!(!out.status.success());

    // Env form, supervised path: the resolved budget is forwarded to
    // the workers and reported per shard.
    let out = Command::new(bolt_run())
        .arg(&elf_path)
        .arg("--shards")
        .arg("2")
        .arg("--supervise")
        .arg("--state-dir")
        .arg(dir.join("state"))
        .env("BOLT_MAX_STEPS", "2000")
        .env_remove("BOLT_CRASH_AT")
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("budget 2000"),
        "supervised shards inherit the env budget:\n{stderr}"
    );
    // The flag beats the env.
    let out = Command::new(bolt_run())
        .arg(&elf_path)
        .arg("--max-steps")
        .arg("1500")
        .env("BOLT_MAX_STEPS", "2000")
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("budget 1500"),
        "--max-steps beats BOLT_MAX_STEPS:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
