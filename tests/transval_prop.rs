//! Property tests cross-checking the symbolic translation validator
//! against concrete differential execution.
//!
//! Soundness direction: for random straight-line programs over random
//! initial register states, the symbolic sweep
//! (`bolt::emu::validate_code`) proves every translation tier
//! equivalent to step semantics — and concretely, running the very same
//! bytes under all four engines must then agree on every observable
//! (program output including flag probes, final registers, final
//! flags). A symbolic "clean" verdict that concrete execution
//! contradicts would fail here.
//!
//! Catching direction: applying a random applicable semantic mutation
//! to a random block must flip the symbolic verdict to the mutation's
//! expected finding kind while the structural validator still accepts
//! the corrupted pools.

use bolt::elf::{Elf, Section};
use bolt::emu::symexec::{sym_block_insts, SymState};
use bolt::emu::{
    lower_into, translation_shapes, validate_block, validate_code, validate_translation, Engine,
    Machine, NullSink,
};
use bolt::verify::{apply_sem_mutation, SemMutation};
use bolt_isa::{encode_at, encoded_len, AluOp, Cond, Inst, Reg, ShiftOp, Target};
use proptest::prelude::*;

/// The registers random bodies compute in; r8+ are reserved for the
/// observation epilogue, rsp for the (unused) stack.
const REGS: [Reg; 6] = [Reg::Rax, Reg::Rbx, Reg::Rcx, Reg::Rdx, Reg::Rsi, Reg::Rdi];

/// One raw generated operation: `(opcode, r1, r2, imm, amount)`,
/// decoded into an instruction by [`body_inst`].
type RawOp = (u8, u8, u8, i64, u8);

fn reg(sel: u8) -> Reg {
    REGS[sel as usize % REGS.len()]
}

fn body_inst(op: &RawOp) -> Inst {
    let &(code, r1, r2, imm, amt) = op;
    let dst = reg(r1);
    let src = reg(r2);
    match code % 9 {
        0 => Inst::MovRI { dst, imm },
        1 => Inst::MovRR { dst, src },
        2 => {
            let alu = [
                AluOp::Add,
                AluOp::Sub,
                AluOp::And,
                AluOp::Or,
                AluOp::Xor,
                AluOp::Cmp,
            ];
            Inst::Alu {
                op: alu[amt as usize % alu.len()],
                dst,
                src,
            }
        }
        3 => {
            let alu = [
                AluOp::Add,
                AluOp::Sub,
                AluOp::And,
                AluOp::Or,
                AluOp::Xor,
                AluOp::Cmp,
            ];
            Inst::AluI {
                op: alu[amt as usize % alu.len()],
                dst,
                imm: imm as i32,
            }
        }
        4 => Inst::Imul { dst, src },
        5 => {
            let ops = [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar];
            Inst::Shift {
                op: ops[r2 as usize % ops.len()],
                dst,
                amount: 1 + amt % 63,
            }
        }
        6 => Inst::Test { a: dst, b: src },
        7 => Inst::Movzx8 { dst, src },
        _ => Inst::Setcc {
            cond: Cond::from_cc(amt % 16).expect("all 16 cc values decode"),
            dst,
        },
    }
}

/// Builds the full program: random register inits, the random body,
/// then an epilogue that stages every body register, probes five flag
/// conditions, emits everything through the output syscall, and exits.
fn program(inits: &[u64], body: &[RawOp]) -> Vec<Inst> {
    let mut insts = Vec::new();
    for (r, &v) in REGS.iter().zip(inits) {
        insts.push(Inst::MovRI {
            dst: *r,
            imm: v as i64,
        });
    }
    insts.extend(body.iter().map(body_inst));
    // Stage body registers before the emit loop clobbers rax/rdi.
    let staged = [Reg::R8, Reg::R9, Reg::R10, Reg::R11, Reg::R12, Reg::R13];
    for (s, r) in staged.iter().zip(REGS) {
        insts.push(Inst::MovRR { dst: *s, src: r });
    }
    // Probe the final flags: emit one bit per condition. `mov` and
    // `syscall` leave the flags untouched, so all five probes observe
    // the body's final flag state.
    for cond in [Cond::E, Cond::B, Cond::S, Cond::O, Cond::P] {
        insts.push(Inst::MovRI {
            dst: Reg::R14,
            imm: 0,
        });
        insts.push(Inst::Setcc {
            cond,
            dst: Reg::R14,
        });
        insts.push(Inst::MovRR {
            dst: Reg::Rdi,
            src: Reg::R14,
        });
        insts.push(Inst::MovRI {
            dst: Reg::Rax,
            imm: 1,
        });
        insts.push(Inst::Syscall);
    }
    for s in staged {
        insts.push(Inst::MovRR {
            dst: Reg::Rdi,
            src: s,
        });
        insts.push(Inst::MovRI {
            dst: Reg::Rax,
            imm: 1,
        });
        insts.push(Inst::Syscall);
    }
    insts.push(Inst::MovRI {
        dst: Reg::Rax,
        imm: 60,
    });
    insts.push(Inst::MovRI {
        dst: Reg::Rdi,
        imm: 0,
    });
    insts.push(Inst::Syscall);
    insts
}

/// Observable equality of two symbolic states: everything except the
/// `reg_writer` attribution metadata, which a dead `mov` rewrite can
/// change without touching any observable.
fn observably_equal(a: &SymState, b: &SymState) -> bool {
    a.regs == b.regs
        && a.effects == b.effects
        && a.flag_checks == b.flag_checks
        && a.exit_flags == b.exit_flags
        && a.terminator == b.terminator
}

fn assemble(insts: &[Inst], base: u64) -> Vec<u8> {
    let mut code = Vec::new();
    let mut at = base;
    for i in insts {
        let e = encode_at(i, at).expect("encodes");
        at += e.bytes.len() as u64;
        code.extend(e.bytes);
    }
    code
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: symbolic "equivalent" verdicts are backed by concrete
    /// agreement of all four engines on random programs and states.
    #[test]
    fn symbolic_clean_verdict_matches_concrete_execution(
        inits in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        body in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<i64>(), any::<u8>()),
            0..24,
        ),
    ) {
        let base = 0x400000u64;
        let inits = [inits.0, inits.1, inits.2, inits.3, inits.4, inits.5];
        let insts = program(&inits, &body);
        let code = assemble(&insts, base);

        // Symbolic verdict: all three translation tiers equivalent to
        // step semantics on these bytes.
        let findings = validate_code(&code, base);
        prop_assert!(findings.is_empty(), "symbolic findings on a faithful program: {findings:?}");

        // Concrete differential: the engines must agree observable for
        // observable.
        let mut elf = Elf::new(base);
        elf.sections.push(Section::code(".text", base, code));
        let mut legs = Vec::new();
        for engine in [Engine::Step, Engine::Block, Engine::Superblock, Engine::Uop] {
            let mut m = Machine::new();
            m.load_elf(&elf);
            let r = m.run_engine(&mut NullSink, 1_000_000, engine).expect("runs");
            legs.push((engine, r.exit, m.output.clone(), m.regs, m.flags));
        }
        for leg in &legs[1..] {
            prop_assert_eq!(&legs[0].1, &leg.1, "exit status ({} vs {})", legs[0].0, leg.0);
            prop_assert_eq!(&legs[0].2, &leg.2, "program output ({} vs {})", legs[0].0, leg.0);
            prop_assert_eq!(&legs[0].3, &leg.3, "final registers ({} vs {})", legs[0].0, leg.0);
            prop_assert_eq!(&legs[0].4, &leg.4, "final flags ({} vs {})", legs[0].0, leg.0);
        }
    }

    /// Catching: a random applicable semantic mutation on a random
    /// block flips the symbolic verdict to the expected finding kind
    /// while structural validation keeps accepting.
    #[test]
    fn random_semantic_mutation_is_caught(
        body in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<i64>(), any::<u8>()),
            1..24,
        ),
        which in 0usize..SemMutation::ALL.len(),
    ) {
        let entry = 0x400100u64;
        let mut insts: Vec<Inst> = body.iter().map(body_inst).collect();
        insts.push(Inst::Ret);
        let reference: Vec<(Inst, u8)> = insts
            .iter()
            .map(|&i| (i, encoded_len(&i) as u8))
            .collect();
        let mut uops = Vec::new();
        lower_into(&mut uops, &reference);
        let mut shapes = translation_shapes(&reference);
        let mut cached = reference.clone();

        let m = SemMutation::ALL[which];
        if let Some(desc) = apply_sem_mutation(m, &mut cached, &mut uops, &mut shapes) {
            validate_block(&cached, &uops)
                .unwrap_or_else(|e| panic!("{m} ({desc}): structural validator must accept: {e}"));
            let findings =
                validate_translation(entry, &reference, &cached, Some(&uops), Some(&shapes));
            // In a random body the mutation can land in dead code (the
            // corrupted destination overwritten before block exit), in
            // which case the corrupted translation really is equivalent
            // and a clean verdict is correct. Ground truth comes from
            // the instruction evaluator alone: the mutation is
            // observable iff the two instruction pools reach different
            // symbolic states (or the shape list no longer matches the
            // mutated instructions).
            let visible = !observably_equal(
                &sym_block_insts(&reference, entry),
                &sym_block_insts(&cached, entry),
            ) || shapes != translation_shapes(&cached);
            if visible {
                prop_assert!(
                    findings.iter().any(|f| f.kind == m.expected_kind()),
                    "{} ({}): expected {:?}, got {:?}",
                    m, desc, m.expected_kind(), findings
                );
            } else {
                prop_assert!(
                    findings.is_empty(),
                    "{} ({}): invisible mutation must stay clean, got {:?}",
                    m, desc, findings
                );
            }
        }
        // No applicable site in this random block: vacuously fine — the
        // deterministic suite in tests/semantic_mutations.rs pins a
        // site for every kind.
    }
}

/// The proptest bodies never branch, so one handwritten looping program
/// keeps the concrete differential honest across block chaining too.
#[test]
fn looping_program_sweeps_clean_and_agrees_concretely() {
    let base = 0x400000u64;
    let build = |loop_addr: u64| {
        vec![
            Inst::MovRI {
                dst: Reg::Rcx,
                imm: 5,
            },
            Inst::MovRI {
                dst: Reg::Rbx,
                imm: 1,
            },
            // loop: rbx *= 2 ; rcx -= 1 ; jne loop
            Inst::Alu {
                op: AluOp::Add,
                dst: Reg::Rbx,
                src: Reg::Rbx,
            },
            Inst::AluI {
                op: AluOp::Sub,
                dst: Reg::Rcx,
                imm: 1,
            },
            Inst::Jcc {
                cond: Cond::Ne,
                target: Target::Addr(loop_addr),
                width: Default::default(),
            },
            Inst::MovRR {
                dst: Reg::Rdi,
                src: Reg::Rbx,
            },
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Syscall,
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 60,
            },
            Inst::MovRI {
                dst: Reg::Rdi,
                imm: 0,
            },
            Inst::Syscall,
        ]
    };
    // Two-pass layout for the backward branch.
    let addr_of = |insts: &[Inst], idx: usize| {
        let mut at = base;
        for i in &insts[..idx] {
            at += encode_at(i, at).expect("encodes").bytes.len() as u64;
        }
        at
    };
    let probe = build(base);
    let loop_addr = addr_of(&probe, 2);
    let code = assemble(&build(loop_addr), base);

    let findings = validate_code(&code, base);
    assert!(findings.is_empty(), "loop must sweep clean: {findings:?}");

    let mut elf = Elf::new(base);
    elf.sections.push(Section::code(".text", base, code));
    let mut outputs = Vec::new();
    for engine in [Engine::Step, Engine::Block, Engine::Superblock, Engine::Uop] {
        let mut m = Machine::new();
        m.load_elf(&elf);
        let r = m.run_engine(&mut NullSink, 10_000, engine).expect("runs");
        assert_eq!(m.output, vec![32], "{engine}: 1 << 5");
        outputs.push((r.exit, m.output.clone(), m.regs, m.flags));
    }
    assert!(outputs.windows(2).all(|w| w[0] == w[1]));
}
