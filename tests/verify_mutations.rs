//! Mutation testing for the static verifier (`bolt-verify`): the
//! re-disassembly check must (a) pass with zero findings on every clean
//! pipeline — each preset, each paper workload, with and without a
//! profile — and (b) catch every seeded binary defect with the finding
//! kind that defect is documented to produce. A verifier that misses a
//! seeded defect is worse than no verifier: it converts corruption into
//! false confidence.

use bolt::compiler::{compile_and_link, CompileOptions};
use bolt::elf::Elf;
use bolt::emu::Machine;
use bolt::opt::{optimize, BoltOptions, BoltOutput};
use bolt::passes::PassOptions;
use bolt::profile::{LbrSampler, Profile, SampleTrigger};
use bolt::verify::{apply_mutation, verify_rewrite, Mutation};
use bolt::workloads::{Scale, Workload};
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// Builds a workload and profiles one full run under the emulator (the
/// `perf record` step), so the layout passes have real edge counts.
fn build(workload: Workload) -> (Elf, Profile) {
    let elf = compile_and_link(&workload.build(Scale::Test), &CompileOptions::default())
        .expect("workload compiles")
        .elf;
    let mut machine = Machine::new();
    machine.load_elf(&elf);
    let mut sampler = LbrSampler::new(997, SampleTrigger::Instructions);
    machine.run(&mut sampler, u64::MAX).expect("workload runs");
    (elf, sampler.profile)
}

fn tao_fixture() -> &'static (Elf, Profile) {
    static FIXTURE: OnceLock<(Elf, Profile)> = OnceLock::new();
    FIXTURE.get_or_init(|| build(Workload::Tao))
}

fn clang_fixture() -> &'static (Elf, Profile) {
    static FIXTURE: OnceLock<(Elf, Profile)> = OnceLock::new();
    FIXTURE.get_or_init(|| build(Workload::ClangLike))
}

fn bolt_verified(elf: &Elf, profile: &Profile, preset: &str) -> BoltOutput {
    let mut opts = BoltOptions::paper_default();
    opts.passes = PassOptions::preset(preset).expect("known preset");
    opts.verify_each = true;
    optimize(elf, profile, &opts).expect("BOLT succeeds")
}

/// Every clean pipeline must verify with zero findings: the verifier's
/// model of the rewriter (fold-chain retargeting, split symbols, packed
/// blocks, patched jump tables) has to hold on every preset, not just
/// the default one, and on profile-less runs whose layouts stay
/// conservative.
#[test]
fn clean_pipelines_verify_with_zero_findings() {
    let unprofiled = Profile::default();
    for (name, fixture) in [("tao", tao_fixture()), ("clang-like", clang_fixture())] {
        let (elf, profile) = fixture;
        for preset in PassOptions::PRESETS {
            for (label, prof) in [("profiled", profile), ("unprofiled", &unprofiled)] {
                let out = bolt_verified(elf, prof, preset);
                let report = out.verify.as_ref().expect("-verify-each ran");
                assert!(
                    report.functions_checked > 0,
                    "{name}/{preset}/{label}: verifier checked no functions"
                );
                let findings = out.all_findings();
                assert!(
                    findings.is_empty(),
                    "{name}/{preset}/{label}: clean pipeline produced findings:\n{}",
                    findings
                        .iter()
                        .map(|f| format!("  {f}"))
                        .collect::<Vec<_>>()
                        .join("\n")
                );
            }
        }
    }
}

/// Every seeded defect must be caught with its documented finding kind.
/// Each mutation is applied to a fresh clone of an optimized binary; a
/// mutation is allowed to find no applicable site on one workload (e.g.
/// no jump table survived) but must apply on at least one of the two.
#[test]
fn seeded_mutations_are_caught_with_the_expected_kind() {
    let outputs: Vec<(&str, BoltOutput)> = vec![
        ("tao", {
            let (elf, profile) = tao_fixture();
            bolt_verified(elf, profile, "default")
        }),
        ("clang-like", {
            let (elf, profile) = clang_fixture();
            bolt_verified(elf, profile, "default")
        }),
    ];
    for (name, out) in &outputs {
        assert!(
            verify_rewrite(&out.elf, &out.ctx).is_clean(),
            "{name}: baseline must be clean before mutating"
        );
    }

    let mut kinds_caught = BTreeSet::new();
    for m in Mutation::ALL {
        let mut applied_somewhere = false;
        for (name, out) in &outputs {
            let mut mutated = out.elf.clone();
            let Some(site) = apply_mutation(m, &mut mutated, &out.ctx) else {
                continue;
            };
            applied_somewhere = true;
            let report = verify_rewrite(&mutated, &out.ctx);
            let kinds: BTreeSet<&str> = report.findings.iter().map(|f| f.kind.as_str()).collect();
            assert!(
                kinds.contains(m.expected_kind().as_str()),
                "{name}: mutation {} ({site}) expected a {} finding, verifier reported: {:?}",
                m.as_str(),
                m.expected_kind(),
                report
                    .findings
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
            );
            kinds_caught.insert(m.expected_kind().as_str());
        }
        assert!(
            applied_somewhere,
            "mutation {} found no applicable site in either optimized workload",
            m.as_str()
        );
    }
    // The acceptance bar: the harness must exercise at least six distinct
    // finding kinds, proving the verifier's checks are independent, not
    // one catch-all.
    assert!(
        kinds_caught.len() >= 6,
        "mutations exercised only {} finding kinds: {kinds_caught:?}",
        kinds_caught.len()
    );
}
