//! The flagship property: for randomly generated programs, the MIR
//! interpreter, the compiled binary, and the BOLTed binary all produce
//! identical observable behavior — under every compiler option set and
//! both profile modes.

use bolt::compiler::{
    compile_and_link, BinOp, CmpOp, CompileOptions, FunctionBuilder, Global, Interp, MirProgram,
    Operand, Rvalue, ShiftKind,
};
use bolt::emu::{Exit, Machine, NullSink};
use bolt::opt::{optimize, BoltOptions};
use bolt::profile::{IpSampler, LbrSampler, SampleTrigger};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random but always-terminating program: a few leaf
/// functions with arithmetic and branches, one loop driver, globals, and
/// emits.
fn random_program(seed: u64) -> MirProgram {
    let mut r = StdRng::seed_from_u64(seed);
    let mut p = MirProgram::with_entry("main");
    p.globals.push(Global {
        name: "tbl".into(),
        words: (0..64).map(|_| r.gen_range(-1000..1000)).collect(),
        mutable: false,
    });
    p.globals.push(Global {
        name: "state".into(),
        words: vec![0; 8],
        mutable: true,
    });

    let n_funcs = r.gen_range(2..6);
    for k in 0..n_funcs {
        let mut f = FunctionBuilder::new(&format!("leaf_{k}"), k as u32 % 3, "leaf.c", 1);
        // Random arithmetic chain.
        let mut cur = 0u32; // parameter local
        for _ in 0..r.gen_range(1..6) {
            let rv = match r.gen_range(0..6) {
                0 => Rvalue::BinOp(
                    BinOp::Add,
                    Operand::Local(cur),
                    Operand::Const(r.gen_range(-100..100)),
                ),
                1 => Rvalue::BinOp(
                    BinOp::Mul,
                    Operand::Local(cur),
                    Operand::Const(r.gen_range(-5..7)),
                ),
                2 => Rvalue::BinOp(
                    BinOp::Xor,
                    Operand::Local(cur),
                    Operand::Const(r.gen_range(0..1 << 20)),
                ),
                3 => Rvalue::Shift(ShiftKind::Shr, Operand::Local(cur), r.gen_range(1..16)),
                4 => Rvalue::Shift(ShiftKind::Shl, Operand::Local(cur), r.gen_range(1..8)),
                _ => Rvalue::BinOp(
                    BinOp::And,
                    Operand::Local(cur),
                    Operand::Const(r.gen_range(1..1 << 16)),
                ),
            };
            cur = f.assign(rv);
        }
        // Maybe a table read with a masked index (always in range).
        if r.gen_bool(0.5) {
            let idx = f.assign(Rvalue::BinOp(
                BinOp::And,
                Operand::Local(cur),
                Operand::Const(63),
            ));
            cur = f.assign(Rvalue::LoadGlobal {
                global: "tbl".into(),
                index: Operand::Local(idx),
            });
        }
        // Maybe call an earlier leaf.
        if k > 0 && r.gen_bool(0.6) {
            let callee = r.gen_range(0..k);
            cur = f.call(&format!("leaf_{callee}"), vec![Operand::Local(cur)]);
        }
        // Random branch with both arms returning.
        let c = f.assign_cmp(
            match r.gen_range(0..4) {
                0 => CmpOp::Lt,
                1 => CmpOp::Gt,
                2 => CmpOp::Eq,
                _ => CmpOp::Le,
            },
            Operand::Local(cur),
            Operand::Const(r.gen_range(-50..50)),
        );
        let (t, e) = f.branch(Operand::Local(c));
        f.switch_to(t);
        f.ret(Operand::Local(cur));
        f.switch_to(e);
        let alt = f.assign(Rvalue::BinOp(
            BinOp::Sub,
            Operand::Const(0),
            Operand::Local(cur),
        ));
        f.ret(Operand::Local(alt));
        p.add_function(f.finish());
    }

    // main: a bounded loop mixing leaf calls and global state.
    let iters = r.gen_range(50..400);
    let mut m = FunctionBuilder::new("main", 9, "main.c", 0);
    let acc = m.new_local();
    let i = m.new_local();
    m.assign_to(acc, Rvalue::Use(Operand::Const(r.gen_range(-10..10))));
    m.assign_to(i, Rvalue::Use(Operand::Const(0)));
    let head = m.goto_new();
    m.switch_to(head);
    let c = m.assign_cmp(CmpOp::Lt, Operand::Local(i), Operand::Const(iters));
    let (body, done) = m.branch(Operand::Local(c));
    m.switch_to(body);
    let which = r.gen_range(0..n_funcs);
    let v = m.call(&format!("leaf_{which}"), vec![Operand::Local(i)]);
    m.assign_to(
        acc,
        Rvalue::BinOp(BinOp::Add, Operand::Local(acc), Operand::Local(v)),
    );
    if r.gen_bool(0.5) {
        let slot = r.gen_range(0..8);
        m.push_stmt(bolt::compiler::Stmt::StoreGlobal {
            global: "state".into(),
            index: Operand::Const(slot),
            value: Operand::Local(acc),
            line: 0,
        });
    }
    if r.gen_bool(0.3) {
        m.emit(Operand::Local(acc));
    }
    m.assign_to(
        i,
        Rvalue::BinOp(BinOp::Add, Operand::Local(i), Operand::Const(1)),
    );
    m.goto(head);
    m.switch_to(done);
    m.emit(Operand::Local(acc));
    let code = m.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(acc),
        Operand::Const(0x7F),
    ));
    m.ret(Operand::Local(code));
    p.add_function(m.finish());
    p.validate().expect("random program valid");
    p
}

fn run_elf(elf: &bolt::elf::Elf) -> (i64, Vec<i64>) {
    let mut m = Machine::new();
    m.load_elf(elf);
    let r = m.run(&mut NullSink, 500_000_000).expect("runs");
    let Exit::Exited(code) = r.exit else {
        panic!("no exit: {:?}", r.exit);
    };
    (code, m.output)
}

#[test]
fn interpreter_compiler_and_bolt_agree_on_random_programs() {
    for seed in 0..25u64 {
        let program = random_program(seed);

        // Oracle: the MIR interpreter.
        let mut interp = Interp::new(&program, 200_000_000);
        let expected_code = interp.run(&[]).unwrap() & 0xFF;
        let expected_out = interp.output.clone();

        // Vary compiler options with the seed.
        let opts = CompileOptions {
            opt_level: (seed % 3) as u8,
            lto: seed % 2 == 0,
            plt: seed % 3 != 1,
            legacy_amd: seed % 4 == 2,
            align_blocks: seed % 2 == 1,
            ..CompileOptions::default()
        };
        let bin = compile_and_link(&program, &opts).expect("compiles");
        let (code, out) = run_elf(&bin.elf);
        assert_eq!(code & 0xFF, expected_code, "seed {seed}: compiled exit");
        assert_eq!(out, expected_out, "seed {seed}: compiled output");

        // Profile (alternate LBR / IP mode with the seed) and BOLT.
        let mut m = Machine::new();
        m.load_elf(&bin.elf);
        let profile = if seed % 2 == 0 {
            let mut s = LbrSampler::new(97, SampleTrigger::Instructions);
            m.run(&mut s, 500_000_000).unwrap();
            s.profile
        } else {
            let mut s = IpSampler::new(97);
            m.run(&mut s, 500_000_000).unwrap();
            s.profile
        };
        let bolted =
            optimize(&bin.elf, &profile, &BoltOptions::paper_default()).expect("bolt succeeds");
        let (code, out) = run_elf(&bolted.elf);
        assert_eq!(code & 0xFF, expected_code, "seed {seed}: bolted exit");
        assert_eq!(out, expected_out, "seed {seed}: bolted output");
    }
}
