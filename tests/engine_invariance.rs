//! Engine invariance: the block-translation engines (`--engine=block`,
//! `--engine=superblock`, and `--engine=uop` / `BOLT_ENGINE`) must be
//! *observationally identical* to the per-instruction step engine —
//! byte-identical `Counters`, merged `Profile`, recorded program
//! output, and rewritten ELF — the same way
//! `tests/thread_invariance.rs` proves thread-count invariance and
//! `tests/shard_invariance.rs` proves shard-count invariance. The sweep
//! is four-way at 1 and 8 shards, and covers self-modifying text (block
//! chain links, translations, and lowered micro-ops must all drop),
//! step budgets landing mid-(super)block, and the uop engine's lazy
//! flags surviving chained block transitions.

use bolt::compiler::{compile_and_link, CompileOptions};
use bolt::elf::{write_elf, Elf, Section};
use bolt::emu::{CountingSink, Engine, Exit, Machine, NullSink};
use bolt::workloads::{Scale, Workload};
use bolt_bench::{bolt_with_profile, measure_batch_with, profile_lbr_batch_with, shard_plan};
use bolt_isa::{encode_at, AluOp, Cond, Inst, JumpWidth, Mem, Reg, Target};
use bolt_sim::SimConfig;
use std::sync::OnceLock;

fn build(workload: Workload) -> Elf {
    compile_and_link(&workload.build(Scale::Test), &CompileOptions::default())
        .expect("workload compiles")
        .elf
}

/// Profiled TAO (the paper's smallest data-center workload).
fn tao_fixture() -> &'static Elf {
    static FIXTURE: OnceLock<Elf> = OnceLock::new();
    FIXTURE.get_or_init(|| build(Workload::Tao))
}

/// A compiler-like workload with the `config` seed global, so shards
/// partition the input space.
fn clang_fixture() -> &'static Elf {
    static FIXTURE: OnceLock<Elf> = OnceLock::new();
    FIXTURE.get_or_init(|| build(Workload::ClangLike))
}

/// Seed-partitions shards when the binary has a `config` global;
/// otherwise every shard runs the binary as loaded.
fn prepare_for(elf: &Elf) -> impl Fn(usize, &mut Machine) + Sync + '_ {
    let addr = elf.symbol("config").map(|s| s.value);
    move |shard, m: &mut Machine| {
        if let Some(addr) = addr {
            m.mem.write_u64(addr, 1 + shard as u64);
        }
    }
}

/// The acceptance property: profile + measure `elf` under all four
/// engines at `shards` shards and assert every observable is
/// byte-identical, then prove the rewritten ELFs match byte for byte.
fn assert_engine_invariant(elf: &Elf, shards: usize, what: &str) {
    let cfg = SimConfig::small();
    let mut legs = Vec::new();
    for engine in [Engine::Step, Engine::Block, Engine::Superblock, Engine::Uop] {
        let plan = shard_plan(shards, 2).with_engine(engine);
        let (profile, batch) = profile_lbr_batch_with(elf, &cfg, &plan, prepare_for(elf));
        let measured = measure_batch_with(elf, &cfg, &plan, prepare_for(elf));
        legs.push((engine, profile, batch, measured));
    }
    let step = &legs[0];
    let from_step = bolt_with_profile(elf, &step.1);
    let step_bytes = write_elf(&from_step.elf).expect("serializes");
    for leg in &legs[1..] {
        let engine = leg.0;
        assert_eq!(
            step.1.to_fdata(),
            leg.1.to_fdata(),
            "{what}/{engine}: merged profile must be byte-identical across engines"
        );
        assert_eq!(
            step.1, leg.1,
            "{what}/{engine}: profile maps equal, not just text"
        );
        assert_eq!(
            step.2.counters, leg.2.counters,
            "{what}/{engine}: summed profiling counters identical"
        );
        assert_eq!(
            step.2.runs, leg.2.runs,
            "{what}/{engine}: per-shard results (exit, output, steps, counters)"
        );
        assert_eq!(
            step.3.runs, leg.3.runs,
            "{what}/{engine}: measurement-only counters identical too"
        );
        // The profiles drive BOLT to byte-identical rewritten binaries.
        let from_leg = bolt_with_profile(elf, &leg.1);
        assert_eq!(
            step_bytes,
            write_elf(&from_leg.elf).expect("serializes"),
            "{what}/{engine}: rewritten ELF byte-identical across engines"
        );
    }
}

#[test]
fn profiled_tao_identical_across_engines_at_1_and_8_shards() {
    for shards in [1usize, 8] {
        assert_engine_invariant(tao_fixture(), shards, "tao");
    }
}

#[test]
fn clang_workload_identical_across_engines_at_1_and_8_shards() {
    for shards in [1usize, 8] {
        assert_engine_invariant(clang_fixture(), shards, "clang-like");
    }
}

/// Assembles `insts` contiguously at `base`, returning the bytes and the
/// start address of each instruction.
fn asm(insts: &[Inst], base: u64) -> (Vec<u8>, Vec<u64>) {
    let mut bytes = Vec::new();
    let mut addrs = Vec::new();
    let mut at = base;
    for i in insts {
        addrs.push(at);
        let e = encode_at(i, at).expect("encodes");
        at += e.bytes.len() as u64;
        bytes.extend(e.bytes);
    }
    (bytes, addrs)
}

/// A binary that calls a function, patches that function's code through
/// an ordinary store, and calls it again — the self-modifying-text case
/// that forces block invalidation. Emits the function's return value
/// after each call: `[1, 2]` is only observable if the engine refetches
/// the patched bytes.
fn self_modifying_elf() -> Elf {
    let base = 0x400000u64;
    // The callee is exactly 8 bytes — `mov rax, imm32` (7) + `ret` (1) —
    // so a single 8-byte store rewrites it atomically.
    let (callee_v2, _) = asm(
        &[
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 2,
            },
            Inst::Ret,
        ],
        0, // position-independent encoding (no rip-relative operands)
    );
    assert_eq!(callee_v2.len(), 8, "patch must be one 8-byte store");

    // Lay main out first with a placeholder callee address, then fix up:
    // the callee sits right after main, and its address only feeds MovRI
    // immediates (length-stable), so a second pass converges.
    let build = |callee_addr: u64| -> Vec<Inst> {
        vec![
            // rax = f()  (returns 1 before the patch)
            Inst::Call {
                target: Target::Addr(callee_addr),
            },
            // emit rax
            Inst::MovRR {
                dst: Reg::Rdi,
                src: Reg::Rax,
            },
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Syscall,
            // patch f with the 8 bytes staged at 0x500000
            Inst::MovRI {
                dst: Reg::R10,
                imm: 0x500000,
            },
            Inst::Load {
                dst: Reg::R11,
                mem: Mem::BaseDisp {
                    base: Reg::R10,
                    disp: 0,
                },
            },
            Inst::MovRI {
                dst: Reg::R10,
                imm: callee_addr as i64,
            },
            Inst::Store {
                mem: Mem::BaseDisp {
                    base: Reg::R10,
                    disp: 0,
                },
                src: Reg::R11,
            },
            // rax = f()  (must observe the patched code: returns 2)
            Inst::Call {
                target: Target::Addr(callee_addr),
            },
            Inst::MovRR {
                dst: Reg::Rdi,
                src: Reg::Rax,
            },
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Syscall,
            // exit 0
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 60,
            },
            Inst::MovRI {
                dst: Reg::Rdi,
                imm: 0,
            },
            Inst::Syscall,
            // f: mov rax, 1 ; ret
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Ret,
        ]
    };
    let (probe, addrs) = asm(&build(base), base);
    let callee_addr = addrs[addrs.len() - 2];
    let (code, addrs2) = asm(&build(callee_addr), base);
    assert_eq!(
        addrs2[addrs2.len() - 2],
        callee_addr,
        "layout converged after one fixup pass"
    );
    assert_eq!(probe.len(), code.len());

    let mut elf = Elf::new(base);
    elf.sections.push(Section::code(".text", base, code));
    elf.sections
        .push(Section::data(".data", 0x500000, callee_v2));
    elf
}

/// Self-modifying text under every engine: the block engines must drop
/// their translations — and, under `superblock`, the chain links that
/// die with them — when a store patches cached code, or the second call
/// would observably execute stale bytes.
#[test]
fn self_modifying_text_forces_block_invalidation() {
    let elf = self_modifying_elf();
    let mut outputs = Vec::new();
    for engine in [Engine::Step, Engine::Block, Engine::Superblock, Engine::Uop] {
        let mut m = Machine::new();
        m.load_elf(&elf);
        let mut sink = CountingSink::default();
        let r = m.run_engine(&mut sink, 10_000, engine).expect("runs");
        assert_eq!(r.exit, Exit::Exited(0), "{engine}");
        assert_eq!(
            m.output,
            vec![1, 2],
            "{engine}: second call must observe the patched code"
        );
        outputs.push((r, m.output.clone(), m.regs, sink.insts, sink.branches));
    }
    assert_eq!(outputs[0], outputs[1], "block engine agrees on SMC");
    assert_eq!(outputs[0], outputs[2], "superblock engine agrees on SMC");
    assert_eq!(outputs[0], outputs[3], "uop engine agrees on SMC");
}

/// The step-accounting satellite at harness level: a budget landing
/// mid-block must stop at exactly the same retired count, rip, and
/// partial output under every engine.
#[test]
fn max_steps_budget_lands_identically_inside_blocks() {
    let elf = tao_fixture();
    // Find the full run length once, then probe budgets around block
    // boundaries (primes stride the whole range).
    let mut m = Machine::new();
    m.load_elf(elf);
    let full = m
        .run_engine(&mut NullSink, u64::MAX, Engine::Step)
        .expect("runs")
        .steps;
    for budget in (13..full).step_by((full / 7).max(1) as usize) {
        let observe = |engine: Engine| {
            let mut m = Machine::new();
            m.load_elf(elf);
            let mut sink = CountingSink::default();
            let r = m.run_engine(&mut sink, budget, engine).expect("runs");
            (r, m.rip, m.output.clone(), m.regs, sink.insts)
        };
        let step = observe(Engine::Step);
        for engine in [Engine::Block, Engine::Superblock, Engine::Uop] {
            let leg = observe(engine);
            assert_eq!(step, leg, "{engine} budget {budget}");
        }
        assert_eq!(step.0.exit, Exit::MaxSteps, "budget {budget} is partial");
        assert_eq!(step.0.steps, budget, "stopped exactly at the budget");
    }
}

/// The uop engine's lazy-flags adversarial case: flags are written at
/// the end of one block (`sub` just before an unconditional jump) and
/// consumed only *after* the chained block transition — first by a
/// `setcc`, then by a `jcc` in the same successor block. The pending
/// lazy state must survive the chain link and materialize to exactly
/// the step engine's flags; the final architectural `Machine::flags`
/// must also match on exit (the run ends with flags still pending from
/// the uop hot loop's perspective).
#[test]
fn lazy_flags_survive_chained_block_transitions() {
    let base = 0x400000u64;
    // Loop structure (blocks annotated):
    //   A: rcx -= 1 ; jmp B          <- flags written, block ends
    //   B: rax = 0 ; setne rax ;     <- first consumer, across the chain
    //      jne C ; jmp D             <- second consumer, same flags
    //   C: rbx += rax ; jmp A
    //   D: emit rbx ; exit 0
    // rcx starts at 3: two `ne` iterations accumulate rbx = 2, the
    // third hits zero and falls through to D.
    let build = |a: u64, b_: u64, c: u64, d: u64| -> Vec<Inst> {
        vec![
            Inst::MovRI {
                dst: Reg::Rcx,
                imm: 3,
            },
            Inst::MovRI {
                dst: Reg::Rbx,
                imm: 0,
            },
            // A (index 2)
            Inst::AluI {
                op: AluOp::Sub,
                dst: Reg::Rcx,
                imm: 1,
            },
            Inst::Jmp {
                target: Target::Addr(b_),
                width: JumpWidth::Near,
            },
            // B (index 4)
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 0,
            },
            Inst::Setcc {
                cond: Cond::Ne,
                dst: Reg::Rax,
            },
            Inst::Jcc {
                cond: Cond::Ne,
                target: Target::Addr(c),
                width: JumpWidth::Near,
            },
            Inst::Jmp {
                target: Target::Addr(d),
                width: JumpWidth::Near,
            },
            // C (index 8)
            Inst::Alu {
                op: AluOp::Add,
                dst: Reg::Rbx,
                src: Reg::Rax,
            },
            Inst::Jmp {
                target: Target::Addr(a),
                width: JumpWidth::Near,
            },
            // D (index 10)
            Inst::MovRR {
                dst: Reg::Rdi,
                src: Reg::Rbx,
            },
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Syscall,
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 60,
            },
            Inst::MovRI {
                dst: Reg::Rdi,
                imm: 0,
            },
            Inst::Syscall,
        ]
    };
    // Near jumps are length-stable, so one fixup pass converges.
    let (_, addrs) = asm(&build(base, base, base, base), base);
    let (code, addrs2) = asm(&build(addrs[2], addrs[4], addrs[8], addrs[10]), base);
    assert_eq!(addrs, addrs2, "layout converged");
    let mut elf = Elf::new(base);
    elf.sections.push(Section::code(".text", base, code));

    let mut legs = Vec::new();
    for engine in [Engine::Step, Engine::Block, Engine::Superblock, Engine::Uop] {
        let mut m = Machine::new();
        m.load_elf(&elf);
        let mut sink = CountingSink::default();
        let r = m.run_engine(&mut sink, 10_000, engine).expect("runs");
        assert_eq!(r.exit, Exit::Exited(0), "{engine}");
        assert_eq!(
            m.output,
            vec![2],
            "{engine}: setcc across the chained transition counted the ne iterations"
        );
        legs.push((
            r,
            m.output.clone(),
            m.regs,
            m.flags,
            sink.insts,
            sink.branches,
        ));
    }
    for leg in &legs[1..] {
        assert_eq!(
            &legs[0], leg,
            "every engine agrees, including final architectural flags"
        );
    }
}

/// The mid-*superblock* boundary sweep: the straight-line-heavy
/// workload's loop body is a single ~60-instruction superblock, so
/// budgets striding one body-length probe every intra-superblock offset
/// — each must retire exactly `budget` instructions, at the same rip,
/// with the same partial observables, under all four engines.
#[test]
fn max_steps_budget_lands_identically_inside_superblocks() {
    let elf = bolt_bench::straightline_elf(40);
    let mut m = Machine::new();
    m.load_elf(&elf);
    let full = m
        .run_engine(&mut NullSink, u64::MAX, Engine::Step)
        .expect("runs")
        .steps;
    // One loop iteration's instruction count: stride budgets by a prime
    // near it so the cut point walks through the superblock body.
    for budget in (5..full).step_by(59) {
        let observe = |engine: Engine| {
            let mut m = Machine::new();
            m.load_elf(&elf);
            let mut sink = CountingSink::default();
            let r = m.run_engine(&mut sink, budget, engine).expect("runs");
            (
                r,
                m.rip,
                m.regs,
                sink.insts,
                sink.mem_reads,
                sink.mem_writes,
            )
        };
        let step = observe(Engine::Step);
        assert_eq!(step.0.steps, budget, "budget {budget}: exact retired count");
        for engine in [Engine::Block, Engine::Superblock, Engine::Uop] {
            assert_eq!(step, observe(engine), "{engine} budget {budget}");
        }
    }
}

/// The `--validate-semantics` leg: with symbolic translation validation
/// enabled, every block the translation engines pack — across all four
/// workloads — must be *proven* semantically equivalent to the step
/// semantics of a fresh decode at translate time. A disagreement no
/// longer aborts the run: the block degrades to a lower execution tier
/// (decoded entries, then per-instruction stepping) and the run keeps
/// its observables. The acceptance property is therefore twofold: the
/// runs complete with output matching the step engine, *and* the tier
/// counters show zero degraded blocks — every translation proved clean
/// at full tier.
///
/// The knob is process-global and sticky-on by design; other tests in
/// this binary may also translate under validation afterwards, which is
/// harmless — their translations must prove clean anyway.
#[test]
fn all_workloads_translate_clean_under_semantic_validation() {
    bolt::emu::enable_sem_validation();
    let interp = build(Workload::Interp);
    let straightline = bolt_bench::straightline_elf(40);
    let workloads: [(&str, &Elf); 4] = [
        ("tao", tao_fixture()),
        ("clang-like", clang_fixture()),
        ("interp", &interp),
        ("straightline", &straightline),
    ];
    for (what, elf) in workloads {
        let reference = {
            let mut m = Machine::new();
            m.load_elf(elf);
            let r = m
                .run_engine(&mut NullSink, u64::MAX, Engine::Step)
                .expect("runs");
            (r.exit, m.output)
        };
        for engine in [Engine::Block, Engine::Superblock, Engine::Uop] {
            let mut m = Machine::new();
            m.load_elf(elf);
            let r = m
                .run_engine(&mut NullSink, u64::MAX, engine)
                .expect("runs (every translated block proved equivalent)");
            let tiers = m.tier_counts();
            assert_eq!((r.exit, m.output), reference, "{what}/{engine}");
            assert_eq!(
                tiers.degraded(),
                0,
                "{what}/{engine}: clean translations never degrade ({tiers:?})"
            );
            assert!(tiers.full > 0, "{what}/{engine}: blocks were translated");
        }
    }
}

/// The full default pipeline on profiled TAO runs under `-verify-each`
/// with zero findings, and `-time-passes` attributes the verifier's
/// wall clock as its own `verify` rows — one per executed pass — rather
/// than folding it into the passes being verified.
#[test]
fn default_pipeline_under_verify_each_is_clean_on_tao() {
    let elf = tao_fixture();
    let plan = shard_plan(1, 2);
    let (profile, _) = profile_lbr_batch_with(elf, &SimConfig::small(), &plan, prepare_for(elf));

    let mut opts = bolt::opt::BoltOptions::paper_default();
    opts.verify_each = true;
    opts.time_passes = true;
    let out = bolt::opt::optimize(elf, &profile, &opts).expect("BOLT succeeds");

    let findings = out.all_findings();
    assert!(
        findings.is_empty(),
        "default pipeline must verify clean, got:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    let rewrite = out.verify.as_ref().expect("re-disassembly ran");
    assert!(rewrite.functions_checked > 0);

    // One lint sweep per executed pass, each timed as its own row.
    let verify_rows = out
        .pipeline
        .reports
        .iter()
        .filter(|r| r.name == "verify")
        .count();
    let executed = out
        .pipeline
        .reports
        .iter()
        .filter(|r| r.name != "verify" && !r.skipped)
        .count();
    assert_eq!(
        verify_rows, executed,
        "-verify-each must lint after every executed pass"
    );
    let report = bolt::opt::timing_report(&out.pipeline);
    assert!(
        report.contains("verify"),
        "-time-passes must show the verifier rows:\n{report}"
    );
}
