//! The fault-injection harness: every seeded [`FaultPlan`] — corrupted
//! ELF bytes, corrupted text images, corrupted profile text, poisoned
//! pass kernels — must be survived gracefully at every layer:
//!
//! - no panic escapes the parser, the driver, a pass, or the emitter;
//! - if the corrupted input still parses, the pipeline quarantines the
//!   affected functions instead of failing, and the output ELF still
//!   serializes, parses, and behaves like the (corrupted) input;
//! - quarantined functions keep their original bytes verbatim at their
//!   original addresses;
//! - every degradation shows up in the structured [`QuarantineReport`].
//!
//! The sweep here covers a handful of seeds; CI runs the same harness
//! over a wider seed range (see `.github/workflows/ci.yml`).

use bolt::compiler::{
    compile_and_link, BinOp, CmpOp, CompileOptions, FunctionBuilder, MirProgram, Operand, Rvalue,
};
use bolt::elf::{read_elf, write_elf, Elf};
use bolt::emu::{EmuError, Exit, Machine, NullSink};
use bolt::ir::NonSimpleReason;
use bolt::opt::{optimize, BoltOptions, BoltOutput, QuarantineAction};
use bolt::profile::{LbrSampler, Profile, SampleTrigger};
use bolt::verify::{FaultPlan, FaultSurface};

const MAX_STEPS: u64 = 10_000_000;

/// The seeds every run sweeps. CI widens the sweep without a recompile
/// by listing extra seeds (decimal or `0x`-hex, comma-separated) in
/// `BOLT_FAULT_SEEDS`; a garbled entry fails loudly rather than
/// silently shrinking the sweep.
fn seeds() -> Vec<u64> {
    let mut seeds: Vec<u64> = vec![1, 2, 3, 0xB017];
    if let Ok(v) = std::env::var("BOLT_FAULT_SEEDS") {
        for tok in v.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let parsed = match tok.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => tok.parse(),
            };
            seeds.push(parsed.unwrap_or_else(|_| panic!("BOLT_FAULT_SEEDS: bad seed {tok:?}")));
        }
        seeds.sort_unstable();
        seeds.dedup();
    }
    seeds
}

/// A small multi-function program so corruptions and quarantines have
/// several distinct victims: a hash helper, a branchy filter, and a
/// main loop.
fn program() -> MirProgram {
    let mut p = MirProgram::with_entry("main");

    let mut h = FunctionBuilder::new("hash", 0, "h.c", 1);
    let a = h.assign(Rvalue::BinOp(
        BinOp::Mul,
        Operand::Local(0),
        Operand::Const(0x9E3779B1),
    ));
    let b = h.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(a),
        Operand::Const(0xFFF),
    ));
    h.ret(Operand::Local(b));
    p.add_function(h.finish());

    let mut f = FunctionBuilder::new("filter", 1, "f.c", 1);
    let c = f.assign_cmp(CmpOp::Lt, Operand::Local(0), Operand::Const(64));
    let (lo, hi) = f.branch(Operand::Local(c));
    f.switch_to(lo);
    let r1 = f.call("hash", vec![Operand::Local(0)]);
    f.ret(Operand::Local(r1));
    f.switch_to(hi);
    let r2 = f.assign(Rvalue::BinOp(
        BinOp::Add,
        Operand::Local(0),
        Operand::Const(13),
    ));
    f.ret(Operand::Local(r2));
    p.add_function(f.finish());

    let mut m = FunctionBuilder::new("main", 2, "m.c", 0);
    let sum = m.new_local();
    let i = m.new_local();
    m.assign_to(sum, Rvalue::Use(Operand::Const(0)));
    m.assign_to(i, Rvalue::Use(Operand::Const(0)));
    let head = m.goto_new();
    m.switch_to(head);
    let c0 = m.assign_cmp(CmpOp::Lt, Operand::Local(i), Operand::Const(150));
    let (body, done) = m.branch(Operand::Local(c0));
    m.switch_to(body);
    let v = m.call("filter", vec![Operand::Local(i)]);
    m.assign_to(
        sum,
        Rvalue::BinOp(BinOp::Add, Operand::Local(sum), Operand::Local(v)),
    );
    m.assign_to(
        i,
        Rvalue::BinOp(BinOp::Add, Operand::Local(i), Operand::Const(1)),
    );
    m.goto(head);
    m.switch_to(done);
    m.emit(Operand::Local(sum));
    let masked = m.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(sum),
        Operand::Const(0x3F),
    ));
    m.ret(Operand::Local(masked));
    p.add_function(m.finish());
    p.validate().unwrap();
    p
}

/// What a run looks like from the outside. Error exits compare by kind
/// only: a trap inside relocated code reports a different rip than the
/// same trap at the original address, and a non-terminating mutant cut
/// off at the budget retires different partial output under different
/// layouts.
#[derive(Debug, Clone, PartialEq)]
enum Observed {
    Exited(i64, Vec<i64>),
    MaxSteps,
    Faulted(&'static str),
}

fn observe(elf: &Elf) -> Observed {
    let mut m = Machine::new();
    m.load_elf(elf);
    match m.run(&mut NullSink, MAX_STEPS) {
        Ok(r) => match r.exit {
            Exit::Exited(code) => Observed::Exited(code, m.output.clone()),
            Exit::MaxSteps => Observed::MaxSteps,
            // A bare top-frame `ret` ends the run like an exit(0) shim.
            Exit::Returned => Observed::Exited(0, m.output.clone()),
        },
        Err(EmuError::BadInstruction { .. }) => Observed::Faulted("bad-instruction"),
        Err(EmuError::Trap { .. }) => Observed::Faulted("trap"),
        Err(EmuError::BadSyscall { .. }) => Observed::Faulted("bad-syscall"),
    }
}

fn fixture() -> (Elf, Profile) {
    let bin = compile_and_link(&program(), &CompileOptions::default()).unwrap();
    let mut m = Machine::new();
    m.load_elf(&bin.elf);
    let mut sampler = LbrSampler::new(61, SampleTrigger::Instructions);
    let r = m.run(&mut sampler, MAX_STEPS).expect("baseline runs");
    assert!(matches!(r.exit, Exit::Exited(_)), "baseline exits");
    (bin.elf, sampler.profile)
}

/// The post-conditions every *successful* degraded run must satisfy,
/// plus whole-program behavior preservation.
fn check_output(input: &Elf, out: &BoltOutput, what: &str) {
    check_structure(input, out, what);
    // Behavior: the output is observationally the input (including
    // inputs that fault — the rewrite must not change *how* they fail).
    assert_eq!(
        observe(input),
        observe(&out.elf),
        "{what}: behavior preserved"
    );
}

/// The behavior *class* of a run, with data values erased. Used where a
/// mutant may read uninitialized stack memory (a text flip can turn a
/// store into a load of a never-written slot): what such a read observes
/// depends on stale stack contents — dead stores other code legitimately
/// drops, return addresses that move with relocation — so no rewriter
/// can promise value-exact behavior for it. How the program *ends* is
/// still determined by its control flow, which a faithful decode
/// reproduces exactly; an output that exits where the input faulted (or
/// vice versa) is a real bug this class still catches.
fn observed_class(o: &Observed) -> &'static str {
    match o {
        Observed::Exited(..) => "exits",
        Observed::MaxSteps => "max-steps",
        Observed::Faulted(kind) => kind,
    }
}

/// The structural post-conditions alone — used for raw-byte mutants,
/// where flipped ELF metadata can legitimately redefine the entry point
/// or function boundaries (so behavioral equivalence of a rewrite is
/// not a meaningful contract), but the output must still serialize,
/// reparse, and keep every quarantined function's bytes verbatim.
fn check_structure(input: &Elf, out: &BoltOutput, what: &str) {
    // The output always serializes and parses back.
    let bytes = write_elf(&out.elf).unwrap_or_else(|e| panic!("{what}: serialize: {e}"));
    read_elf(&bytes).unwrap_or_else(|e| panic!("{what}: reparse: {e}"));

    // Ladder-quarantined functions keep their original bytes at their
    // original addresses, and every one of them is in the report.
    let quarantined_in_ctx: Vec<&str> = out
        .ctx
        .functions
        .iter()
        .filter(|f| f.non_simple_reason == Some(NonSimpleReason::Quarantined))
        .map(|f| f.name.as_str())
        .collect();
    for name in &quarantined_in_ctx {
        let sym_in = input
            .symbol(name)
            .unwrap_or_else(|| panic!("{what}: {name} in input"));
        let sym_out = out
            .elf
            .symbol(name)
            .unwrap_or_else(|| panic!("{what}: {name} survives in output"));
        assert_eq!(sym_in.value, sym_out.value, "{what}: {name} not relocated");
        assert_eq!(
            input.read_vaddr(sym_in.value, sym_in.size as usize),
            out.elf.read_vaddr(sym_in.value, sym_in.size as usize),
            "{what}: {name}: original bytes preserved verbatim"
        );
        assert!(
            out.quarantine
                .events
                .iter()
                .any(|e| e.function == *name && e.action == QuarantineAction::Quarantine),
            "{what}: {name} quarantined but unreported:\n{}",
            out.quarantine.render()
        );
    }
    assert_eq!(
        out.quarantine.quarantined,
        quarantined_in_ctx.len(),
        "{what}: report count matches the context"
    );
}

#[test]
fn every_fault_plan_is_survived_at_every_seed() {
    let (elf, profile) = fixture();
    let pristine_bytes = write_elf(&elf).expect("serializes");
    let pristine_fdata = profile.to_fdata();

    for seed in seeds() {
        for plan in FaultPlan::sweep(seed) {
            let what = format!("{}/seed{}", plan.kind, seed);
            match plan.kind.surface() {
                FaultSurface::ElfBytes => {
                    // Contract: the reader returns, never panics. When
                    // the mutant still parses, the whole pipeline must
                    // hold the same no-panic contract.
                    let mut bytes = pristine_bytes.clone();
                    assert!(plan.apply_elf_bytes(&mut bytes), "{what}: applies");
                    if let Ok(mutant) = read_elf(&bytes) {
                        if let Ok(out) = optimize(&mutant, &profile, &BoltOptions::paper_default())
                        {
                            check_structure(&mutant, &out, &what);
                        }
                    }
                }
                FaultSurface::Image => {
                    // Contract: corrupted text never fails the run — the
                    // driver quarantines what no longer decodes or
                    // verifies and rewrites the rest. Behavior compares
                    // by class, not value: a flip that still decodes can
                    // leave the mutant reading uninitialized stack slots
                    // (see [`observed_class`]), where value-exact
                    // equality is unattainable for any rewriter.
                    let mut mutant = elf.clone();
                    assert!(plan.apply_image(&mut mutant), "{what}: applies");
                    let mut opts = BoltOptions::paper_default();
                    opts.verify = true;
                    opts.verify_sem = true;
                    let out = optimize(&mutant, &profile, &opts)
                        .unwrap_or_else(|e| panic!("{what}: must degrade, not fail: {e}"));
                    check_structure(&mutant, &out, &what);
                    assert_eq!(
                        observed_class(&observe(&mutant)),
                        observed_class(&observe(&out.elf)),
                        "{what}: behavior class preserved"
                    );
                }
                FaultSurface::Profile => {
                    // Contract: the profile parser returns, never
                    // panics; a profile that still parses must drive a
                    // fully successful, behavior-preserving rewrite.
                    let mut text = pristine_fdata.clone();
                    assert!(plan.apply_profile(&mut text), "{what}: applies");
                    if let Ok(mutant_profile) = Profile::from_fdata(&text) {
                        let out = optimize(&elf, &mutant_profile, &BoltOptions::paper_default())
                            .unwrap_or_else(|e| panic!("{what}: pipeline accepts: {e}"));
                        check_output(&elf, &out, &what);
                    }
                }
                FaultSurface::Pipeline => {
                    // Contract: a panicking pass kernel is contained by
                    // the quarantine ladder; the run still succeeds.
                    let mut opts = BoltOptions::paper_default();
                    opts.poison_nth = plan.poison_nth();
                    let out = optimize(&elf, &profile, &opts)
                        .unwrap_or_else(|e| panic!("{what}: ladder contains the panic: {e}"));
                    check_output(&elf, &out, &what);
                }
            }
        }
    }
}

/// A clean pipeline — no faults injected anywhere — quarantines nothing
/// and its report says so.
#[test]
fn clean_pipeline_quarantines_nothing() {
    let (elf, profile) = fixture();
    let out = optimize(&elf, &profile, &BoltOptions::paper_default()).expect("bolts");
    assert!(out.quarantine.is_clean(), "{}", out.quarantine.render());
    assert_eq!(out.quarantine.rounds, 1);
    assert!(!out
        .ctx
        .functions
        .iter()
        .any(|f| f.non_simple_reason == Some(NonSimpleReason::Quarantined)));
    assert_eq!(observe(&elf), observe(&out.elf));
}

/// Corrupting the *entire* text section (every function at once) is the
/// worst-case image fault: the driver must still produce an output — in
/// the limit an identity rewrite with everything quarantined or
/// non-simple — that behaves exactly like the corrupted input.
#[test]
fn total_text_corruption_degrades_to_identity() {
    let (elf, profile) = fixture();
    let mut mutant = elf.clone();
    for sec in &mut mutant.sections {
        if sec.is_exec() {
            for (i, b) in sec.data.iter_mut().enumerate() {
                *b = (i as u8).wrapping_mul(197).wrapping_add(11);
            }
        }
    }
    let out = optimize(&mutant, &profile, &BoltOptions::paper_default())
        .unwrap_or_else(|e| panic!("total corruption must degrade, not fail: {e}"));
    let bytes = write_elf(&out.elf).expect("serializes");
    read_elf(&bytes).expect("reparses");
    assert_eq!(
        observe(&mutant),
        observe(&out.elf),
        "failure mode preserved"
    );
}
