//! Thread-count invariance: `PassManager::run` (and the whole driver)
//! must produce byte-identical results whether the per-function passes
//! run serially (`-threads=1`) or sharded across workers (`-threads=8`),
//! on the profiled TAO fixture.

use bolt::compiler::{compile_and_link, CompileOptions};
use bolt::elf::{write_elf, Elf};
use bolt::emu::Machine;
use bolt::ir::{dump_function, BinaryContext, DumpOptions};
use bolt::opt::{optimize, BoltOptions};
use bolt::passes::{PassManager, PassOptions};
use bolt::profile::{LbrSampler, Profile, SampleTrigger};
use bolt::workloads::{Scale, Workload};
use bolt_bench::prepare_ctx;
use std::sync::OnceLock;

/// The profiled TAO binary and its LBR profile (compiled and emulated
/// once; both tests read it immutably).
fn tao_fixture() -> &'static (Elf, Profile) {
    static FIXTURE: OnceLock<(Elf, Profile)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let program = Workload::Tao.build(Scale::Test);
        let binary = compile_and_link(&program, &CompileOptions::default()).expect("tao compiles");
        let mut machine = Machine::new();
        machine.load_elf(&binary.elf);
        let mut sampler = LbrSampler::new(997, SampleTrigger::Instructions);
        machine.run(&mut sampler, 100_000_000).expect("tao runs");
        (binary.elf, sampler.profile)
    })
}

/// Every function's printed IR — the pipeline's observable output,
/// normalized through the dumper so block order, terminators, and edges
/// are all covered.
fn dump_all(ctx: &BinaryContext) -> String {
    let mut out = String::new();
    for f in &ctx.functions {
        out.push_str(&dump_function(
            f,
            None,
            DumpOptions {
                print_debug_info: false,
            },
        ));
    }
    out
}

#[test]
fn pass_manager_output_identical_at_1_and_8_threads() {
    let (elf, profile) = tao_fixture();
    let baseline = prepare_ctx(elf, profile);
    for (label, opts) in [
        ("default", PassOptions::default()),
        ("layout-only", PassOptions::layout_only()),
        ("none", PassOptions::none()),
    ] {
        let mut runs = Vec::new();
        for threads in [1usize, 8] {
            let mut manager = PassManager::standard(&opts);
            manager.config.threads = threads;
            let mut ctx = baseline.clone();
            let result = manager.run(&mut ctx, &opts);
            runs.push((result, dump_all(&ctx)));
        }
        let (serial, parallel) = (&runs[0], &runs[1]);
        assert_eq!(
            serial.0.reports, parallel.0.reports,
            "{label}: reports (names + change counts) must not depend on thread count"
        );
        assert_eq!(
            serial.0.function_order, parallel.0.function_order,
            "{label}: function order must not depend on thread count"
        );
        assert_eq!(
            serial.1, parallel.1,
            "{label}: emitted IR must not depend on thread count"
        );
    }
}

#[test]
fn full_driver_binary_identical_at_1_and_8_threads() {
    let (elf, profile) = tao_fixture();
    let mut outputs = Vec::new();
    for threads in [1usize, 8] {
        let opts = BoltOptions {
            threads,
            ..BoltOptions::paper_default()
        };
        let out = optimize(elf, profile, &opts).expect("bolt succeeds");
        outputs.push((write_elf(&out.elf).expect("serializes"), out.pipeline));
    }
    let (serial, parallel) = (&outputs[0], &outputs[1]);
    assert_eq!(serial.1.reports, parallel.1.reports, "driver reports");
    assert_eq!(
        serial.1.function_order, parallel.1.function_order,
        "driver function order"
    );
    assert_eq!(
        serial.0, parallel.0,
        "rewritten binaries must be byte-identical at 1 vs 8 threads"
    );
}
