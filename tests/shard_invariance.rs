//! Shard-count invariance: sharded batch emulation must produce
//! byte-identical merged profiles and summed counters at any worker
//! count, and a one-shard batch must equal a plain serial run — the
//! measurement-side mirror of `tests/thread_invariance.rs`.

use bolt::compiler::{compile_and_link, CompileOptions};
use bolt::elf::Elf;
use bolt::emu::{run_batch, CountingSink, Machine, NullSink, ShardPlan};
use bolt::workloads::{Scale, Workload};
use bolt_bench::{
    measure, measure_batch, profile_lbr, profile_lbr_batch, profile_lbr_batch_with, seed_partition,
    shard_plan,
};
use bolt_sim::SimConfig;
use std::sync::OnceLock;

/// A compiler-like workload binary (it has the `config` input-selection
/// global, so shards can partition the input space by seed).
fn clang_fixture() -> &'static Elf {
    static FIXTURE: OnceLock<Elf> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let program = Workload::ClangLike.build(Scale::Test);
        compile_and_link(&program, &CompileOptions::default())
            .expect("clang-like compiles")
            .elf
    })
}

/// The number of shards the suite partitions the workload into. Honors
/// the CI matrix's `BOLT_SHARDS` leg but never drops below 4, so the
/// batch paths stay exercised even on the serial leg.
fn suite_shards() -> usize {
    bolt::emu::resolve_shards(0).max(4)
}

#[test]
fn sharded_profile_identical_at_1_and_8_workers() {
    let elf = clang_fixture();
    let cfg = SimConfig::small();
    let shards = suite_shards();
    let mut runs = Vec::new();
    for workers in [1usize, 8] {
        let plan = shard_plan(shards, workers);
        let (profile, batch) = profile_lbr_batch_with(elf, &cfg, &plan, seed_partition(elf, 1));
        runs.push((profile, batch));
    }
    let (serial, sharded) = (&runs[0], &runs[1]);
    assert_eq!(
        serial.0.to_fdata(),
        sharded.0.to_fdata(),
        "merged profile must be byte-identical at 1 vs 8 workers"
    );
    assert_eq!(serial.0, sharded.0, "profile maps equal, not just text");
    assert_eq!(
        serial.1.counters, sharded.1.counters,
        "summed counters must not depend on the worker count"
    );
    assert_eq!(
        serial.1.runs, sharded.1.runs,
        "per-shard results (exit, output, steps, counters) identical"
    );
    // Shards actually partitioned the input: distinct observable outputs.
    assert_eq!(serial.1.runs.len(), shards);
    let distinct: std::collections::HashSet<_> =
        serial.1.runs.iter().map(|r| r.output.clone()).collect();
    assert!(distinct.len() > 1, "seed partitioning varies the shards");
}

#[test]
fn one_shard_batch_equals_serial_single_run() {
    let elf = clang_fixture();
    let cfg = SimConfig::small();
    let (serial_profile, serial_run) = profile_lbr(elf, &cfg);
    let (batch_profile, batch) = profile_lbr_batch(elf, &cfg, &shard_plan(1, 8));
    assert_eq!(batch_profile.to_fdata(), serial_profile.to_fdata());
    assert_eq!(batch.runs, vec![serial_run]);

    let measured = measure_batch(elf, &cfg, &shard_plan(1, 1));
    assert_eq!(measured.runs[0], measure(elf, &cfg));
    assert_eq!(measured.counters, measured.runs[0].counters);
}

#[test]
fn summed_batch_counters_equal_sum_of_parts() {
    let elf = clang_fixture();
    let cfg = SimConfig::small();
    let batch = measure_batch(elf, &cfg, &shard_plan(3, 2));
    let expected: bolt_sim::Counters = batch.runs.iter().map(|r| &r.counters).sum();
    assert_eq!(batch.counters, expected);
    assert_eq!(
        batch.counters.instructions,
        batch
            .runs
            .iter()
            .map(|r| r.counters.instructions)
            .sum::<u64>()
    );
}

/// The machine-reuse regression the `Machine::load_elf` reset fix
/// guards: at 1 worker one machine executes every shard back-to-back,
/// at `shards` workers each machine executes exactly one — identical
/// per-shard results prove no state leaks between consecutive loads.
#[test]
fn machine_reuse_across_shards_leaks_nothing() {
    let elf = clang_fixture();
    let shards = suite_shards();
    let collect = |workers: usize| {
        let plan = ShardPlan::new(shards).with_threads(workers);
        run_batch(
            elf,
            &plan,
            |_| CountingSink::default(),
            // Different seeds per shard: a leak from shard i-1 into
            // shard i would change i's trace or output.
            seed_partition(elf, 1),
        )
        .expect("batch runs")
        .into_iter()
        .map(|s| (s.shard, s.result, s.output, s.sink.insts, s.sink.branches))
        .collect::<Vec<_>>()
    };
    assert_eq!(collect(1), collect(shards));

    // And explicitly: a machine that already ran shard A, when reloaded
    // and given shard B's seed, matches a fresh machine running B.
    let seed_b = seed_partition(elf, 3);
    let mut reused = Machine::new();
    reused.load_elf(elf);
    seed_partition(elf, 1)(0, &mut reused);
    reused.run(&mut NullSink, u64::MAX).expect("shard A runs");
    reused.load_elf(elf);
    seed_b(1, &mut reused);
    reused.run(&mut NullSink, u64::MAX).expect("shard B runs");

    let mut fresh = Machine::new();
    fresh.load_elf(elf);
    seed_b(1, &mut fresh);
    fresh.run(&mut NullSink, u64::MAX).expect("shard B runs");
    assert_eq!(reused.output, fresh.output);
    assert_eq!(reused.regs, fresh.regs);
}
