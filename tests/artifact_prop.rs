//! Durable-artifact serialization properties: every `Profile`,
//! `Counters`, and `ShardArtifact` round-trips canonically through its
//! framed artifact encoding, and *every* corruption — each single-byte
//! mutation, each seeded [`ArtifactMutation`], truncation, extension —
//! is rejected by validation. The supervisor's "no corrupt artifact is
//! ever merged" guarantee reduces to exactly these properties.

use bolt::emu::artifact::{self, KIND_COUNTERS, KIND_PROFILE, KIND_SHARD_RUN};
use bolt::emu::Exit;
use bolt::profile::{Profile, ProfileMode};
use bolt::shard_artifact::ShardArtifact;
use bolt::sim::Counters;
use bolt::verify::ArtifactMutation;
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = Profile> {
    (
        proptest::collection::vec(
            (any::<u32>(), any::<u32>(), 1u64..1 << 40, 0u64..1 << 20),
            0..24,
        ),
        proptest::collection::vec((any::<u32>(), any::<u32>(), 1u64..1 << 30), 0..12),
        proptest::collection::vec((any::<u32>(), 1u64..1 << 30), 0..12),
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(|(branches, falls, ips, use_ip, samples)| {
            let mut p = Profile::new(if use_ip {
                ProfileMode::IpSamples
            } else {
                ProfileMode::Lbr
            });
            for (from, to, count, mispred) in branches {
                p.branches.insert(
                    (u64::from(from), u64::from(to)),
                    (count, mispred.min(count)),
                );
            }
            for (from, to, count) in falls {
                p.fallthroughs
                    .insert((u64::from(from), u64::from(to)), count);
            }
            for (ip, count) in ips {
                p.ip_samples.insert(u64::from(ip), count);
            }
            p.num_samples = samples;
            p
        })
}

fn counters_strategy() -> impl Strategy<Value = Counters> {
    (proptest::collection::vec(any::<u64>(), 11), 0u64..1 << 52).prop_map(|(v, cyc)| Counters {
        instructions: v[0],
        cycles: cyc as f64 / 16.0,
        cond_branches: v[1],
        branch_mispredicts: v[2],
        l1i_accesses: v[3],
        l1i_misses: v[4],
        l1d_accesses: v[5],
        l1d_misses: v[6],
        l2_misses: v[7],
        llc_misses: v[8],
        itlb_misses: v[9],
        dtlb_misses: v[10],
    })
}

fn shard_artifact_strategy() -> impl Strategy<Value = ShardArtifact> {
    (
        any::<u32>(),
        prop_oneof![
            any::<i64>().prop_map(Exit::Exited),
            Just(Exit::MaxSteps),
            Just(Exit::Returned),
        ],
        any::<u64>(),
        proptest::collection::vec(any::<i64>(), 0..32),
        proptest::option::of(profile_strategy()),
        proptest::option::of(counters_strategy()),
    )
        .prop_map(
            |(shard, exit, steps, output, profile, counters)| ShardArtifact {
                shard,
                exit,
                steps,
                output,
                profile,
                counters,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Profile -> artifact -> Profile is the identity, and re-encoding
    /// yields the same bytes (canonical form).
    #[test]
    fn profile_round_trips_canonically(p in profile_strategy()) {
        let bytes = p.to_artifact();
        let back = Profile::from_artifact(&bytes).unwrap();
        prop_assert_eq!(&back, &p);
        prop_assert_eq!(back.to_artifact(), bytes);
    }

    /// Counters round-trip exactly (cycles via bit pattern, not via a
    /// lossy decimal rendering).
    #[test]
    fn counters_round_trip_canonically(c in counters_strategy()) {
        let bytes = c.to_artifact();
        let back = Counters::from_artifact(&bytes).unwrap();
        prop_assert_eq!(back.cycles.to_bits(), c.cycles.to_bits());
        prop_assert_eq!(&back, &c);
        prop_assert_eq!(back.to_artifact(), bytes);
    }

    /// The combined shard artifact round-trips with every optional
    /// payload combination.
    #[test]
    fn shard_artifact_round_trips_canonically(a in shard_artifact_strategy()) {
        let bytes = a.to_artifact();
        let back = ShardArtifact::from_artifact(&bytes).unwrap();
        prop_assert_eq!(&back, &a);
        prop_assert_eq!(back.to_artifact(), bytes);
    }

    /// Every seeded artifact mutation is detected: either framing
    /// validation or payload decoding must reject the mutant. (The
    /// reverse — a mutation accidentally producing a different *valid*
    /// artifact — would silently corrupt a merge.)
    #[test]
    fn every_seeded_mutation_is_rejected(a in shard_artifact_strategy(), seed in any::<u64>()) {
        let pristine = a.to_artifact();
        for m in ArtifactMutation::all() {
            let mut bytes = pristine.clone();
            prop_assert!(m.apply(&mut bytes, seed), "{} applies", m);
            prop_assert!(bytes != pristine, "{} must mutate the bytes", m);
            prop_assert!(
                ShardArtifact::from_artifact(&bytes).is_err(),
                "mutation {} seed {} must be rejected",
                m,
                seed
            );
        }
    }

    /// Arbitrary byte noise never decodes (and never panics the
    /// decoder): garbage a crashed worker leaves at the artifact path
    /// is always caught.
    #[test]
    fn random_bytes_never_decode(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert!(ShardArtifact::from_artifact(&bytes).is_err());
        prop_assert!(Profile::from_artifact(&bytes).is_err());
        prop_assert!(Counters::from_artifact(&bytes).is_err());
    }
}

/// Exhaustive single-byte corruption sweep over a representative framed
/// artifact of each kind: flipping any single bit of any byte, dropping
/// any suffix, or appending any byte is detected. This is the
/// deterministic floor under the seeded proptest sweep above.
#[test]
fn exhaustive_single_byte_corruption_is_rejected() {
    let mut profile = Profile::new(ProfileMode::Lbr);
    profile.add_branch(0x401000, 0x402000, true);
    profile.add_fallthrough(0x402000, 0x402040);
    profile.num_samples = 7;
    let counters = Counters {
        instructions: 12345,
        cycles: 6789.25,
        ..Counters::default()
    };
    let shard = ShardArtifact {
        shard: 2,
        exit: Exit::Exited(0),
        steps: 99,
        output: vec![3, -4],
        profile: Some(profile.clone()),
        counters: Some(counters),
    };

    let cases: Vec<(u16, Vec<u8>)> = vec![
        (KIND_PROFILE, profile.to_artifact()),
        (KIND_COUNTERS, counters.to_artifact()),
        (KIND_SHARD_RUN, shard.to_artifact()),
    ];
    for (kind, pristine) in cases {
        let decodes = |bytes: &[u8]| -> bool {
            match kind {
                KIND_PROFILE => Profile::from_artifact(bytes).is_ok(),
                KIND_COUNTERS => Counters::from_artifact(bytes).is_ok(),
                _ => ShardArtifact::from_artifact(bytes).is_ok(),
            }
        };
        assert!(decodes(&pristine), "kind {kind}: pristine artifact decodes");
        for at in 0..pristine.len() {
            for bit in 0..8 {
                let mut bytes = pristine.clone();
                bytes[at] ^= 1 << bit;
                assert!(
                    !decodes(&bytes),
                    "kind {kind}: flip of byte {at} bit {bit} must be rejected"
                );
            }
        }
        for keep in 0..pristine.len() {
            assert!(
                !decodes(&pristine[..keep]),
                "kind {kind}: truncation to {keep} bytes must be rejected"
            );
        }
        for extra in [0u8, 1, 0xFF] {
            let mut bytes = pristine.clone();
            bytes.push(extra);
            assert!(
                !decodes(&bytes),
                "kind {kind}: appended byte {extra:#x} must be rejected"
            );
        }
        // Framing agrees with the typed decoder on the pristine bytes.
        assert_eq!(artifact::validate(&pristine), Ok(kind));
    }
}
