//! Fast versions of the paper's key experimental claims, run at test
//! scale so `cargo test` exercises the full evaluation machinery.

use bolt::compiler::{compile_and_link, CompileOptions, SourceProfile};
use bolt::emu::{Exit, Machine, Tee};
use bolt::ir::LineTable;
use bolt::opt::{optimize, BoltOptions};
use bolt::profile::{LbrSampler, Profile, SampleTrigger};
use bolt::sim::{Counters, CpuModel, SimConfig};
use bolt::workloads::{Scale, Workload};

fn profile_and_measure(elf: &bolt::elf::Elf, cfg: &SimConfig) -> (Profile, Counters, Vec<i64>) {
    let mut m = Machine::new();
    m.load_elf(elf);
    let mut sampler = LbrSampler::new(499, SampleTrigger::Instructions);
    let mut model = CpuModel::new(cfg.clone());
    let r = {
        let mut tee = Tee(&mut sampler, &mut model);
        m.run(&mut tee, u64::MAX).expect("runs")
    };
    assert!(matches!(r.exit, Exit::Exited(_)));
    (sampler.profile, model.counters(), m.output)
}

fn measure(elf: &bolt::elf::Elf, cfg: &SimConfig) -> (Counters, Vec<i64>) {
    let (_, c, out) = profile_and_measure(elf, cfg);
    (c, out)
}

fn to_source(profile: &Profile, elf: &bolt::elf::Elf) -> SourceProfile {
    let lines = LineTable::from_bytes(&elf.section(".bolt.lines").unwrap().data).unwrap();
    let mut sp = SourceProfile::new();
    for (&ip, &count) in &profile.ip_samples {
        if let Some((_f, line)) = lines.lookup(ip) {
            sp.add_line(line, count);
        }
    }
    for ft in profile.sorted_fallthroughs() {
        let lo = lines.entries.partition_point(|e| e.0 < ft.from);
        let hi = lines.entries.partition_point(|e| e.0 <= ft.to);
        for e in &lines.entries[lo..hi] {
            sp.add_line(e.2, ft.count);
        }
    }
    sp
}

/// Figure 5's claim at test scale: BOLT speeds up data-center workloads.
#[test]
fn bolt_speeds_up_datacenter_workloads() {
    let cfg = SimConfig::small();
    for wl in [Workload::Tao, Workload::Proxygen] {
        let program = wl.build(Scale::Test);
        let bin = compile_and_link(&program, &CompileOptions::default()).unwrap();
        let (profile, base, out0) = profile_and_measure(&bin.elf, &cfg);
        let bolted = optimize(&bin.elf, &profile, &BoltOptions::paper_default()).unwrap();
        let (new, out1) = measure(&bolted.elf, &cfg);
        assert_eq!(out0, out1, "{}", wl.name());
        assert!(
            new.cycles < base.cycles,
            "{}: {} -> {} cycles",
            wl.name(),
            base.cycles,
            new.cycles
        );
        assert!(new.l1i_misses < base.l1i_misses, "{}: L1I", wl.name());
    }
}

/// Figures 7/8's claim: BOLT on top of PGO+LTO still helps (the
/// approaches are complementary), and everything preserves semantics.
#[test]
fn bolt_complements_pgo_lto() {
    let cfg = SimConfig::small();
    let program = Workload::ClangLike.build(Scale::Test);

    let base = compile_and_link(&program, &CompileOptions::default()).unwrap();
    let (base_profile, base_c, out0) = profile_and_measure(&base.elf, &cfg);

    // PGO+LTO.
    let sp = to_source(&base_profile, &base.elf);
    let pgo = compile_and_link(&program, &CompileOptions::pgo_lto(sp)).unwrap();
    let (pgo_profile, pgo_c, out1) = profile_and_measure(&pgo.elf, &cfg);
    assert_eq!(out0, out1, "PGO preserves semantics");

    // BOLT on top of PGO+LTO.
    let both = optimize(&pgo.elf, &pgo_profile, &BoltOptions::paper_default()).unwrap();
    let (both_c, out2) = measure(&both.elf, &cfg);
    assert_eq!(out0, out2, "PGO+BOLT preserves semantics");

    assert!(
        both_c.cycles < pgo_c.cycles,
        "BOLT helps beyond PGO+LTO: {} -> {}",
        pgo_c.cycles,
        both_c.cycles
    );
    assert!(
        both_c.cycles < base_c.cycles,
        "the combination beats the baseline"
    );
}

/// Section 5.1's claim: LBR profiles beat naive non-LBR inference.
#[test]
fn lbr_beats_naive_non_lbr() {
    let cfg = SimConfig::small();
    let program = Workload::Proxygen.build(Scale::Test);
    let bin = compile_and_link(&program, &CompileOptions::default()).unwrap();
    let (lbr_profile, _, out0) = profile_and_measure(&bin.elf, &cfg);

    let mut m = Machine::new();
    m.load_elf(&bin.elf);
    let mut ip = bolt::profile::IpSampler::new(31);
    m.run(&mut ip, u64::MAX).unwrap();

    let with_lbr = optimize(&bin.elf, &lbr_profile, &BoltOptions::paper_default()).unwrap();
    let (lbr_c, out1) = measure(&with_lbr.elf, &cfg);
    assert_eq!(out0, out1);

    let mut naive = BoltOptions::paper_default();
    naive.non_lbr_tuned = false;
    let with_ip = optimize(&bin.elf, &ip.profile, &naive).unwrap();
    let (ip_c, out2) = measure(&with_ip.elf, &cfg);
    assert_eq!(out0, out2);

    assert!(
        lbr_c.cycles <= ip_c.cycles * 1.02,
        "LBR should not lose to naive non-LBR: {} vs {}",
        lbr_c.cycles,
        ip_c.cycles
    );
}

/// The ICF size claim: folding shrinks rewritten text without changing
/// behavior.
#[test]
fn icf_shrinks_rewritten_text() {
    let cfg = SimConfig::small();
    let program = Workload::Hhvm.build(Scale::Test);
    let bin = compile_and_link(&program, &CompileOptions::default()).unwrap();
    let (profile, _, out0) = profile_and_measure(&bin.elf, &cfg);

    let with = optimize(&bin.elf, &profile, &BoltOptions::paper_default()).unwrap();
    let mut no_icf_opts = BoltOptions::paper_default();
    no_icf_opts.passes.icf = false;
    let without = optimize(&bin.elf, &profile, &no_icf_opts).unwrap();

    let s_with = with.rewrite_stats.hot_text_size + with.rewrite_stats.cold_text_size;
    let s_without = without.rewrite_stats.hot_text_size + without.rewrite_stats.cold_text_size;
    assert!(
        s_with < s_without,
        "ICF shrinks text: {s_with} < {s_without}"
    );

    let (_, out1) = measure(&with.elf, &cfg);
    assert_eq!(out0, out1);
}
