//! Seeded crash-injection sweep over the supervised sharding path: for
//! every `BOLT_CRASH_SEEDS` seed, a seeded worker fault (abort, silent
//! exit, hang, garbage/truncated/corrupt artifact) is injected via
//! `BOLT_CRASH_AT`, and the harness asserts the supervision contract:
//!
//! * a transient fault (first attempt only) is retried and the final
//!   merge is byte-identical to the fault-free run;
//! * a persistent fault quarantines exactly the injected shard and the
//!   run exits 3 with every *other* shard merged — and the partial
//!   merge is identical whatever the failure mode, which proves no
//!   corrupt artifact ever reached the reducer.

use bolt::compiler::{compile_and_link, CompileOptions};
use bolt::elf::write_elf;
use bolt::verify::{CrashMode, XorShift64};
use bolt::workloads::{Scale, Workload};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::OnceLock;

const SHARDS: usize = 4;

fn bolt_run() -> &'static str {
    env!("CARGO_BIN_EXE_bolt-run")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bolt-supervise-crash-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn clang_elf_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let program = Workload::ClangLike.build(Scale::Test);
        let bin = compile_and_link(&program, &CompileOptions::default()).expect("compiles");
        write_elf(&bin.elf).expect("serializes")
    })
}

/// The seeds to sweep: `BOLT_CRASH_SEEDS` (comma-separated) or a small
/// default for local runs. CI's release leg widens this.
fn seeds() -> Vec<u64> {
    match std::env::var("BOLT_CRASH_SEEDS") {
        Ok(s) if !s.trim().is_empty() => s
            .split(',')
            .map(|t| t.trim().parse().expect("BOLT_CRASH_SEEDS: bad seed"))
            .collect(),
        _ => vec![1, 2, 3],
    }
}

/// One supervised run with a crash spec injected into the workers.
fn supervised(elf: &Path, fdata: &Path, state: &Path, crash_at: &str, deadline_ms: u64) -> Output {
    Command::new(bolt_run())
        .arg(elf)
        .arg("--fdata")
        .arg(fdata)
        .arg("--shards")
        .arg(SHARDS.to_string())
        .arg("--shard-config")
        .arg("4000")
        .arg("--supervise")
        .arg("--state-dir")
        .arg(state)
        .arg("--backoff-ms")
        .arg("5")
        .arg("--deadline-ms")
        .arg(deadline_ms.to_string())
        .env("BOLT_CRASH_AT", crash_at)
        .output()
        .expect("bolt-run spawns")
}

struct Reference {
    stdout: Vec<u8>,
    fdata: Vec<u8>,
    status: i32,
}

/// The fault-free supervised run every injected run is compared to.
fn reference(dir: &Path, elf: &Path) -> Reference {
    let fdata = dir.join("ref.fdata");
    let out = supervised(elf, &fdata, &dir.join("ref-state"), "", 300_000);
    Reference {
        stdout: out.stdout,
        fdata: std::fs::read(&fdata).unwrap(),
        status: out.status.code().expect("no signal"),
    }
}

/// Hangs resolve via the deadline; give them a short one so the sweep
/// stays fast, and everything else a generous one.
fn deadline_for(mode: CrashMode) -> u64 {
    match mode {
        CrashMode::Hang => 2_000,
        _ => 300_000,
    }
}

#[test]
fn transient_faults_are_retried_to_a_byte_identical_merge() {
    let dir = scratch("transient");
    let elf = dir.join("app.elf");
    std::fs::write(&elf, clang_elf_bytes()).unwrap();
    let reference = reference(&dir, &elf);

    for seed in seeds() {
        // Seeded choice of victim shard and fault mode — the sweep
        // covers the mode space as the seed set widens.
        let mut rng = XorShift64::new(seed);
        let shard = rng.below(SHARDS);
        let mode = CrashMode::all()[rng.below(CrashMode::all().len())];
        let spec = format!("{shard}:0:{mode}");

        let fdata = dir.join(format!("s{seed}.fdata"));
        let state = dir.join(format!("s{seed}-state"));
        let out = supervised(&elf, &fdata, &state, &spec, deadline_for(mode));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(reference.status),
            "seed {seed} ({spec}): transient fault must not change the exit\n{stderr}"
        );
        assert_eq!(
            out.stdout, reference.stdout,
            "seed {seed} ({spec}): stdout identical after retry\n{stderr}"
        );
        assert_eq!(
            std::fs::read(&fdata).unwrap(),
            reference.fdata,
            "seed {seed} ({spec}): fdata identical after retry\n{stderr}"
        );
        assert!(
            stderr.contains("[retry]"),
            "seed {seed} ({spec}): the fault actually fired and was retried\n{stderr}"
        );
        let _ = std::fs::remove_dir_all(&state);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistent_faults_quarantine_and_never_merge_corrupt_artifacts() {
    let dir = scratch("persistent");
    let elf = dir.join("app.elf");
    std::fs::write(&elf, clang_elf_bytes()).unwrap();

    for seed in seeds() {
        let mut rng = XorShift64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let shard = rng.below(SHARDS);

        // The partial merge with the victim shard *silently absent*
        // (workers exit without an artifact): the uncontroversial
        // reference for "this shard contributed nothing".
        let absent_fdata = dir.join(format!("s{seed}-absent.fdata"));
        let absent = supervised(
            &elf,
            &absent_fdata,
            &dir.join(format!("s{seed}-absent-state")),
            &format!("{shard}:*:exit"),
            300_000,
        );
        let stderr = String::from_utf8_lossy(&absent.stderr);
        assert_eq!(
            absent.status.code(),
            Some(3),
            "seed {seed}: merged-with-quarantined exits 3\n{stderr}"
        );
        assert!(
            stderr.contains("[quarantined]") && stderr.contains(&format!("shard {shard}")),
            "seed {seed}: shard {shard} quarantined\n{stderr}"
        );
        let absent_bytes = std::fs::read(&absent_fdata).unwrap();

        // Every corrupt-artifact mode must land on the *same* partial
        // merge: if a garbage, truncated, or bit-flipped artifact ever
        // reached the reducer, these bytes would differ.
        for mode in [
            CrashMode::GarbageArtifact,
            CrashMode::TruncatedArtifact,
            CrashMode::CorruptArtifact,
            CrashMode::Abort,
        ] {
            let fdata = dir.join(format!("s{seed}-{mode}.fdata"));
            let state = dir.join(format!("s{seed}-{mode}-state"));
            let out = supervised(&elf, &fdata, &state, &format!("{shard}:*:{mode}"), 300_000);
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert_eq!(
                out.status.code(),
                Some(3),
                "seed {seed} mode {mode}: exits 3\n{stderr}"
            );
            assert_eq!(
                std::fs::read(&fdata).unwrap(),
                absent_bytes,
                "seed {seed} mode {mode}: corrupt artifact must never be merged\n{stderr}"
            );
            assert_eq!(out.stdout, absent.stdout, "seed {seed} mode {mode}: stdout");
            if mode.clean_exit_bad_artifact() {
                assert!(
                    stderr.contains("[bad-artifact]"),
                    "seed {seed} mode {mode}: rejection reported\n{stderr}"
                );
            }
            let _ = std::fs::remove_dir_all(&state);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_shard_failing_means_no_merge_and_exit_1() {
    let dir = scratch("total-loss");
    let elf = dir.join("app.elf");
    std::fs::write(&elf, clang_elf_bytes()).unwrap();
    let fdata = dir.join("out.fdata");
    let out = supervised(&elf, &fdata, &dir.join("state"), "*:*:exit", 300_000);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(1),
        "no usable artifacts is exit 1\n{stderr}"
    );
    assert!(out.stdout.is_empty(), "nothing merged, nothing printed");
    assert!(
        !fdata.exists(),
        "no fdata written when there is nothing to merge"
    );
    assert!(stderr.contains("no usable shard artifacts"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hung_worker_is_killed_and_the_run_recovers() {
    let dir = scratch("hang");
    let elf = dir.join("app.elf");
    std::fs::write(&elf, clang_elf_bytes()).unwrap();
    let reference = reference(&dir, &elf);
    let fdata = dir.join("out.fdata");
    let out = supervised(&elf, &fdata, &dir.join("state"), "2:0:hang", 2_000);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("[timeout]") && stderr.contains("killed"),
        "deadline kill reported\n{stderr}"
    );
    assert_eq!(out.status.code(), Some(reference.status));
    assert_eq!(std::fs::read(&fdata).unwrap(), reference.fdata);
    let _ = std::fs::remove_dir_all(&dir);
}
