//! The semantic-mutation acceptance suite: every [`SemMutation`] kind
//! corrupts a block translation in a way the *structural* validator
//! (`bolt::emu::validate_block`) still accepts — the pools remain
//! internally consistent — yet the *symbolic* validator
//! (`bolt::emu::validate_translation`) must catch it with the expected
//! finding kind, because only the symbolic layer compares the
//! translation against the meaning of the original bytes.
//!
//! Also covers the clean direction (faithful translations of the same
//! blocks prove equivalent with zero findings) and the lazy-flags
//! adversarial case: a live flag write at the end of one chained block
//! whose only consumer lives in the *next* block is still caught when
//! elided, via the block-exit flags observable.

use bolt::emu::{
    lower_into, translation_shapes, validate_block, validate_code, validate_translation, MemShape,
    MicroOp, SemFindingKind,
};
use bolt::verify::{apply_sem_mutation, SemMutation};
use bolt_isa::{encode_at, encoded_len, AluOp, Cond, Inst, JumpWidth, Mem, Reg, Target};

fn with_len(insts: &[Inst]) -> Vec<(Inst, u8)> {
    insts.iter().map(|&i| (i, encoded_len(&i) as u8)).collect()
}

/// Faithful translation of `insts`: the lowered uop pool and the
/// recorded shape list, exactly as `BlockCache::translate` builds them.
fn faithful(insts: &[(Inst, u8)]) -> (Vec<MicroOp>, Vec<MemShape>) {
    let mut uops = Vec::new();
    lower_into(&mut uops, insts);
    (uops, translation_shapes(insts))
}

/// A block containing an applicable site for every mutation kind.
fn site_block(m: SemMutation) -> Vec<(Inst, u8)> {
    let insts = match m {
        SemMutation::WrongRegister => vec![
            Inst::MovRR {
                dst: Reg::Rdx,
                src: Reg::Rsi,
            },
            Inst::Ret,
        ],
        SemMutation::DroppedSignExtend => vec![
            Inst::MovRI {
                dst: Reg::Rax,
                imm: -5,
            },
            Inst::Ret,
        ],
        SemMutation::SwappedEaScale => vec![
            Inst::Load {
                dst: Reg::Rax,
                mem: Mem::BaseIndexScale {
                    base: Reg::Rdi,
                    index: Reg::Rsi,
                    scale: 8,
                    disp: -8,
                },
            },
            Inst::Ret,
        ],
        SemMutation::DeadFlagWriter => vec![
            Inst::Shift {
                op: bolt_isa::ShiftOp::Shl,
                dst: Reg::Rax,
                amount: 3,
            },
            Inst::MovRI {
                dst: Reg::Rcx,
                imm: 1,
            },
            Inst::Ret,
        ],
        SemMutation::ReorderedMemEffect => vec![
            Inst::Load {
                dst: Reg::Rax,
                mem: Mem::base(Reg::Rdi, 0),
            },
            Inst::Store {
                mem: Mem::base(Reg::Rsi, 0),
                src: Reg::Rax,
            },
            Inst::Ret,
        ],
        SemMutation::WrongCondCode => vec![
            Inst::AluI {
                op: AluOp::Cmp,
                dst: Reg::Rax,
                imm: 0,
            },
            Inst::Jcc {
                cond: Cond::E,
                target: Target::Addr(0x400200),
                width: JumpWidth::Near,
            },
        ],
        SemMutation::WrongBranchTarget => vec![
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Jmp {
                target: Target::Addr(0x400200),
                width: JumpWidth::Near,
            },
        ],
    };
    with_len(&insts)
}

/// The tentpole acceptance property: each semantic corruption is
/// field-plausible (structural validation still passes) yet the
/// symbolic validator reports the expected finding kind.
#[test]
fn every_mutation_passes_structural_but_fails_symbolic_validation() {
    let entry = 0x400100u64;
    for m in SemMutation::ALL {
        let reference = site_block(m);
        // The untouched translation proves clean first.
        let (uops, shapes) = faithful(&reference);
        let clean = validate_translation(entry, &reference, &reference, Some(&uops), Some(&shapes));
        assert!(
            clean.is_empty(),
            "{m}: clean site block has findings: {clean:?}"
        );

        let mut cached = reference.clone();
        let (mut uops, mut shapes) = faithful(&reference);
        let desc = apply_sem_mutation(m, &mut cached, &mut uops, &mut shapes)
            .unwrap_or_else(|| panic!("{m}: site block must contain an applicable site"));

        // Structural validation (pools against each other) still accepts.
        validate_block(&cached, &uops).unwrap_or_else(|e| {
            panic!("{m} ({desc}): structural validator must keep accepting, got {e}")
        });

        // Symbolic validation (translation against the bytes' meaning)
        // reports the expected kind.
        let findings = validate_translation(entry, &reference, &cached, Some(&uops), Some(&shapes));
        assert!(
            findings.iter().any(|f| f.kind == m.expected_kind()),
            "{m} ({desc}): expected a {:?} finding, got {findings:?}",
            m.expected_kind()
        );
    }
}

/// The same defects must also be caught on the tiers that execute the
/// decoded instructions directly (no uop pool): the cached instruction
/// pool is the evaluated side then.
#[test]
fn instruction_pool_mutations_are_caught_without_uops() {
    let entry = 0x400100u64;
    for m in SemMutation::ALL {
        if m == SemMutation::DeadFlagWriter {
            // Flag liveness is a uop-tier concept; the inst-pool tiers
            // evaluate flags eagerly, and the elided writer is caught
            // there as plain instruction drift (covered below by
            // WrongRegister et al. through the same code path).
            continue;
        }
        let reference = site_block(m);
        let mut cached = reference.clone();
        let (mut uops, mut shapes) = faithful(&reference);
        let Some(_) = apply_sem_mutation(m, &mut cached, &mut uops, &mut shapes) else {
            panic!("{m}: site block must contain an applicable site");
        };
        let findings = validate_translation(entry, &reference, &cached, None, Some(&shapes));
        assert!(
            findings.iter().any(|f| f.kind == m.expected_kind()),
            "{m}: expected a {:?} finding without a uop pool, got {findings:?}",
            m.expected_kind()
        );
    }
}

/// The lazy-flags-across-chained-blocks adversarial case. Block A ends
/// with a live flag write (`shl`) and an unconditional jump; the only
/// consumer (`jcc`) lives in chained block B. Per-block symbolic
/// validation never sees A's consumer — the conservative contract is
/// that A's *exit flags* observable carries the pending state across
/// the chain. Eliding A's writer must therefore still be caught, at A,
/// as a flag mismatch at block exit.
#[test]
fn elided_flag_writer_is_caught_at_the_chained_block_boundary() {
    let a_entry = 0x400100u64;
    let b_entry = 0x400200u64;
    let block_a = with_len(&[
        Inst::Shift {
            op: bolt_isa::ShiftOp::Shl,
            dst: Reg::Rcx,
            amount: 1,
        },
        Inst::Jmp {
            target: Target::Addr(b_entry),
            width: JumpWidth::Near,
        },
    ]);
    let (uops, shapes) = faithful(&block_a);
    assert!(
        uops[0].fl,
        "block-end liveness must conservatively keep the shift live for the chained consumer"
    );
    let clean = validate_translation(a_entry, &block_a, &block_a, Some(&uops), Some(&shapes));
    assert!(clean.is_empty(), "clean chained block: {clean:?}");

    let mut cached = block_a.clone();
    let (mut uops, mut shapes) = faithful(&block_a);
    apply_sem_mutation(
        SemMutation::DeadFlagWriter,
        &mut cached,
        &mut uops,
        &mut shapes,
    )
    .expect("the live shift is an applicable site");
    validate_block(&cached, &uops).expect("structurally still consistent");
    let findings = validate_translation(a_entry, &block_a, &cached, Some(&uops), Some(&shapes));
    assert!(
        findings
            .iter()
            .any(|f| f.kind == SemFindingKind::FlagMismatch),
        "the elided live writer must surface as a flag mismatch at A's exit: {findings:?}"
    );
}

/// The clean leg of the adversarial case as the sweep sees it: the full
/// A→B chained structure, encoded to real bytes, proves clean under all
/// three translation tiers.
#[test]
fn chained_flag_consumer_structure_sweeps_clean() {
    let base = 0x400000u64;
    // A: shl rcx, 1 ; jmp B      (flags live out of A)
    // B: setne al ; jne A' ...   (consumer in the successor)
    let build = |b_addr: u64, end_addr: u64| {
        vec![
            Inst::Shift {
                op: bolt_isa::ShiftOp::Shl,
                dst: Reg::Rcx,
                amount: 1,
            },
            Inst::Jmp {
                target: Target::Addr(b_addr),
                width: JumpWidth::Near,
            },
            Inst::Setcc {
                cond: Cond::Ne,
                dst: Reg::Rax,
            },
            Inst::Jcc {
                cond: Cond::Ne,
                target: Target::Addr(end_addr),
                width: JumpWidth::Near,
            },
            Inst::Ret,
        ]
    };
    // Two-pass layout: near jumps are length-stable.
    let lay = |insts: &[Inst]| {
        let mut at = base;
        let mut addrs = Vec::new();
        let mut code = Vec::new();
        for i in insts {
            addrs.push(at);
            let e = encode_at(i, at).expect("encodes");
            at += e.bytes.len() as u64;
            code.extend(e.bytes);
        }
        (code, addrs)
    };
    let (_, addrs) = lay(&build(base, base));
    let (code, addrs2) = lay(&build(addrs[2], addrs[4]));
    assert_eq!(addrs, addrs2, "layout converged");
    let findings = validate_code(&code, base);
    assert!(
        findings.is_empty(),
        "chained structure must sweep clean: {findings:?}"
    );
}
