//! Instruction-address heat maps (paper Figure 9).
//!
//! The paper plots a 64×64 matrix over the text segment: each cell is a
//! fixed-size block of the address space and its heat is the average
//! number of times each byte of the block was fetched, on a log scale.

use bolt_emu::{BlockEvent, TraceSink};
use std::fmt::Write as _;

/// Number of cells per side of the heat map (the paper uses 64×64).
pub const HEATMAP_DIM: usize = 64;

/// Collects fetched-byte counts over a code address range.
#[derive(Debug, Clone)]
pub struct HeatMap {
    base: u64,
    size: u64,
    block: u64,
    /// Bytes fetched per block.
    cells: Vec<u64>,
}

impl HeatMap {
    /// Creates a heat map covering `[base, base + size)`.
    pub fn new(base: u64, size: u64) -> HeatMap {
        let cells = HEATMAP_DIM * HEATMAP_DIM;
        let block = (size / cells as u64).max(1);
        HeatMap {
            base,
            size,
            block,
            cells: vec![0; cells],
        }
    }

    /// Bytes per heat-map cell.
    pub fn block_bytes(&self) -> u64 {
        self.block
    }

    /// The average per-byte fetch count of each cell, in row-major order.
    pub fn intensities(&self) -> Vec<f64> {
        self.cells
            .iter()
            .map(|&c| c as f64 / self.block as f64)
            .collect()
    }

    /// Fraction of cells with any activity.
    pub fn occupancy(&self) -> f64 {
        let active = self.cells.iter().filter(|&&c| c > 0).count();
        active as f64 / self.cells.len() as f64
    }

    /// The hot footprint: total bytes in cells holding the top `fraction`
    /// of all fetch activity (how tightly hot code is packed — the paper's
    /// "4 MB instead of 148.2 MB" observation).
    pub fn hot_footprint(&self, fraction: f64) -> u64 {
        let total: u64 = self.cells.iter().sum();
        if total == 0 {
            return 0;
        }
        let mut sorted: Vec<u64> = self.cells.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let want = (total as f64 * fraction) as u64;
        let mut acc = 0u64;
        let mut blocks = 0u64;
        for c in sorted {
            if acc >= want || c == 0 {
                break;
            }
            acc += c;
            blocks += 1;
        }
        blocks * self.block
    }

    /// Renders the log-scale matrix as CSV (row per line).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for row in 0..HEATMAP_DIM {
            let cells: Vec<String> = (0..HEATMAP_DIM)
                .map(|col| {
                    let v = self.cells[row * HEATMAP_DIM + col] as f64 / self.block as f64;
                    format!("{:.3}", (1.0 + v).log10())
                })
                .collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    /// Renders an ASCII-art view (log scale, ' ' = cold, '@' = hottest).
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let max = self
            .intensities()
            .into_iter()
            .fold(0.0f64, |a, b| a.max((1.0 + b).log10()));
        let mut out = String::new();
        for row in 0..HEATMAP_DIM {
            for col in 0..HEATMAP_DIM {
                let v = self.cells[row * HEATMAP_DIM + col] as f64 / self.block as f64;
                let lv = (1.0 + v).log10();
                let idx = if max == 0.0 {
                    0
                } else {
                    ((lv / max) * (RAMP.len() - 1) as f64).round() as usize
                };
                out.push(RAMP[idx.min(RAMP.len() - 1)] as char);
            }
            out.push('\n');
        }
        out
    }
}

impl TraceSink for HeatMap {
    #[inline]
    fn on_inst(&mut self, addr: u64, len: u8) {
        if addr < self.base || addr >= self.base + self.size {
            return;
        }
        let cell = ((addr - self.base) / self.block) as usize;
        if let Some(c) = self.cells.get_mut(cell) {
            *c += len as u64;
        }
    }

    /// Batched path: a block whose instruction starts all land in one
    /// cell contributes its whole byte length at once (attribution is by
    /// start address, exactly like the per-instruction path); blocks
    /// straddling a cell boundary replay per fetch.
    #[inline]
    fn on_block(&mut self, ev: BlockEvent<'_>) {
        let Some(&(last_addr, _)) = ev.fetches.last() else {
            return; // an empty block retires nothing
        };
        if ev.entry >= self.base && last_addr < self.base + self.size {
            let first = (ev.entry - self.base) / self.block;
            if first == (last_addr - self.base) / self.block {
                if let Some(c) = self.cells.get_mut(first as usize) {
                    *c += ev.byte_len as u64;
                }
                return;
            }
        }
        ev.replay(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concentration_is_visible() {
        let mut h = HeatMap::new(0x400000, 64 * 64 * 64); // 64B blocks
                                                          // Hammer one small region.
        for _ in 0..1000 {
            for a in 0..16u64 {
                h.on_inst(0x400000 + a * 4, 4);
            }
        }
        // Touch a scattered region once each.
        for i in 0..500u64 {
            h.on_inst(0x400000 + i * 512, 4);
        }
        assert!(h.occupancy() > 0.1);
        let hot = h.hot_footprint(0.9);
        assert!(
            hot <= 2 * h.block_bytes(),
            "90% of heat fits in a couple of blocks, got {hot}"
        );
        let csv = h.to_csv();
        assert_eq!(csv.lines().count(), HEATMAP_DIM);
        let ascii = h.to_ascii();
        assert!(ascii.contains('@'), "hottest cell rendered");
    }

    #[test]
    fn batched_block_attribution_matches_per_inst() {
        // 64B cells; one block inside a cell, one straddling two cells,
        // one partially out of range.
        for (entry, lens) in [
            (0x400010u64, vec![4u8, 4, 4]),
            (0x40003Cu64, vec![4, 4, 4]),
            (0x400000u64 + 64 * 64 - 4, vec![4, 4, 4]),
        ] {
            let mut fetches = Vec::new();
            let mut at = entry;
            for &len in &lens {
                fetches.push((at, len));
                at += len as u64;
            }
            let ev = BlockEvent {
                entry,
                inst_count: lens.len() as u32,
                byte_len: (at - entry) as u32,
                fetches: &fetches,
                lines64: &[],
                crossings64: 0,
                mems: &[],
            };
            let mut per = HeatMap::new(0x400000, 64 * 64 * 64);
            for &(addr, len) in &fetches {
                per.on_inst(addr, len);
            }
            let mut batched = HeatMap::new(0x400000, 64 * 64 * 64);
            batched.on_block(ev);
            assert_eq!(per.cells, batched.cells, "entry {entry:#x}");
        }
    }

    #[test]
    fn out_of_range_fetches_ignored() {
        let mut h = HeatMap::new(0x400000, 4096);
        h.on_inst(0x100, 4);
        h.on_inst(0x500000, 4);
        assert_eq!(h.occupancy(), 0.0);
    }
}
