//! # bolt-sim — microarchitectural front-end model
//!
//! The reproduction's substitute for hardware performance counters: a
//! cache/TLB hierarchy, a gshare + BTB + RAS branch predictor, and an
//! additive cycle cost model, all fed by the emulator's [`bolt_emu::TraceSink`]
//! event stream. Also provides the instruction-address heat maps of paper
//! Figure 9.
//!
//! The model's purpose is *ordering fidelity*, not absolute accuracy: code
//! layouts with better I-cache/iTLB locality and fewer taken branches must
//! score measurably better, which is the property the paper's evaluation
//! (Figures 5–9, 11) rests on.

mod branch;
mod cache;
mod config;
mod heatmap;
mod perf;

pub use branch::{BranchOutcome, BranchPredictor};
pub use cache::Cache;
pub use config::SimConfig;
pub use heatmap::{HeatMap, HEATMAP_DIM};
pub use perf::{Counters, CpuModel};
