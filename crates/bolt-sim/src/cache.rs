//! Set-associative cache model with LRU replacement.

/// A set-associative cache with true-LRU replacement.
///
/// Used for every level of the hierarchy (L1I, L1D, L2, LLC) and — with a
/// "line size" of one page — for the TLBs.
#[derive(Debug, Clone)]
pub struct Cache {
    /// log2 of the line size.
    line_shift: u32,
    sets: usize,
    ways: usize,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    tick: u64,
    /// Memoized most-recent access: the line and its slot. The entry
    /// most recently accessed cannot have been evicted since (an
    /// eviction would itself be a newer access that re-aims the memo),
    /// so a repeat access is a guaranteed hit that skips the set scan —
    /// the common case for consecutive same-line accesses (an emulated
    /// loop's data, a basic block's fetches).
    last_line: u64,
    last_slot: usize,
    pub accesses: u64,
    pub misses: u64,
}

impl Cache {
    /// Creates a cache of `size_bytes` with `ways`-way associativity and
    /// `line_bytes` lines. All three must be powers of two with
    /// `size_bytes >= ways * line_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two or inconsistent.
    pub fn new(size_bytes: u64, ways: usize, line_bytes: u64) -> Cache {
        assert!(size_bytes.is_power_of_two(), "size must be a power of two");
        assert!(line_bytes.is_power_of_two(), "line must be a power of two");
        assert!(ways.is_power_of_two(), "ways must be a power of two");
        let lines = size_bytes / line_bytes;
        assert!(
            lines as usize >= ways,
            "cache must have at least one set ({size_bytes} bytes, {ways} ways)"
        );
        let sets = lines as usize / ways;
        Cache {
            line_shift: line_bytes.trailing_zeros(),
            sets,
            ways,
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
            last_line: u64::MAX,
            last_slot: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Accesses the line containing `addr`; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        if line == self.last_line {
            // Memoized fast path: identical bookkeeping to a slow-path
            // hit (tick, access count, LRU stamp), minus the set scan.
            self.tick += 1;
            self.accesses += 1;
            self.stamps[self.last_slot] = self.tick;
            return true;
        }
        self.tick += 1;
        self.accesses += 1;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        if let Some(way) = slots.iter().position(|&t| t == line) {
            self.stamps[base + way] = self.tick;
            self.last_line = line;
            self.last_slot = base + way;
            return true;
        }
        self.misses += 1;
        // Evict LRU.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.tick;
        self.last_line = line;
        self.last_slot = base + victim;
        false
    }

    /// The line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        1 << self.line_shift
    }

    /// Number of sets (used by batched charging to prove two resident
    /// lines cannot interact through LRU state).
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Miss rate over all accesses so far.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Resets counters but keeps contents (for warmup-then-measure runs).
    pub fn reset_counters(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses() {
        let mut c = Cache::new(1024, 2, 64);
        assert!(!c.access(0), "cold miss");
        assert!(c.access(0), "hit");
        assert!(c.access(63), "same line");
        assert!(!c.access(64), "next line misses");
        assert_eq!(c.accesses, 4);
        assert_eq!(c.misses, 2);
        assert!((c.miss_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 2 ways, 64B lines, 2 sets (256 bytes total).
        let mut c = Cache::new(256, 2, 64);
        // Set 0 gets lines 0, 2, 4 (addresses 0, 128, 256).
        assert!(!c.access(0));
        assert!(!c.access(128));
        assert!(!c.access(256)); // evicts line 0 (LRU)
        assert!(!c.access(0), "line 0 was evicted");
        assert!(c.access(256), "line 4 still resident");
    }

    #[test]
    fn lru_updates_on_hit() {
        let mut c = Cache::new(256, 2, 64);
        c.access(0);
        c.access(128);
        c.access(0); // touch line 0 -> line 2 becomes LRU
        c.access(256); // evicts line 2
        assert!(c.access(0), "line 0 protected by its recent hit");
        assert!(!c.access(128), "line 2 was evicted");
    }

    #[test]
    fn page_granularity_works_as_tlb() {
        let mut tlb = Cache::new(64 * 4096, 4, 4096);
        assert!(!tlb.access(0x400000));
        assert!(tlb.access(0x400FFF), "same page");
        assert!(!tlb.access(0x401000), "next page");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = Cache::new(1000, 2, 64);
    }

    /// The last-line memo must be observationally identical to the
    /// scanning path: same hit/miss sequence, same counters, same LRU
    /// behavior — including after the memoized line's set churns.
    #[test]
    fn memoized_repeat_hits_match_scan_semantics() {
        let mut c = Cache::new(256, 2, 64); // 2 ways, 2 sets
        assert!(!c.access(0), "cold miss primes the memo");
        for _ in 0..10 {
            assert!(c.access(32), "memoized same-line hits");
        }
        assert_eq!(c.accesses, 11);
        assert_eq!(c.misses, 1);
        // Fill set 0's other way, then re-touch line 0 (a scan-path hit:
        // the memo now holds line 2) so line 2 becomes the LRU victim.
        assert!(!c.access(128));
        assert!(c.access(0));
        assert!(!c.access(256), "set 0 full -> evicts line 2 (LRU)");
        assert!(c.access(0), "line 0 protected by its recent touch");
        assert!(!c.access(128), "line 2 was the eviction victim");
        assert_eq!(c.misses, 4);
        assert_eq!(c.accesses, 16);
    }
}
