//! Simulator configuration presets.

/// Geometry and latency parameters of the modeled CPU front end.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    pub line_bytes: u64,
    pub page_bytes: u64,
    pub l1i_bytes: u64,
    pub l1i_ways: usize,
    pub l1d_bytes: u64,
    pub l1d_ways: usize,
    pub l2_bytes: u64,
    pub l2_ways: usize,
    pub llc_bytes: u64,
    pub llc_ways: usize,
    pub itlb_entries: u64,
    pub itlb_ways: usize,
    pub dtlb_entries: u64,
    pub dtlb_ways: usize,
    pub predictor_history_bits: u32,
    pub btb_entries: usize,
    /// Base cycles per instruction with a perfect front end.
    pub base_cpi: f64,
    pub branch_miss_latency: f64,
    /// Front-end redirect cost for a taken branch missing in the BTB.
    pub btb_miss_latency: f64,
    pub l2_latency: f64,
    pub llc_latency: f64,
    pub mem_latency: f64,
    pub tlb_miss_latency: f64,
}

impl SimConfig {
    /// An IvyBridge-class server core (the paper's evaluation hardware,
    /// section 6.2.1), with capacities scaled to the reproduction's
    /// binary sizes so the baseline workloads are front-end bound the way
    /// a 100+ MB data-center binary is on real 32 KiB L1I hardware.
    pub fn server() -> SimConfig {
        SimConfig {
            line_bytes: 64,
            page_bytes: 4096,
            l1i_bytes: 16 << 10,
            l1i_ways: 8,
            l1d_bytes: 32 << 10,
            l1d_ways: 8,
            l2_bytes: 128 << 10,
            l2_ways: 8,
            llc_bytes: 2 << 20,
            llc_ways: 16,
            itlb_entries: 16,
            itlb_ways: 4,
            dtlb_entries: 32,
            dtlb_ways: 4,
            predictor_history_bits: 12,
            btb_entries: 1024,
            base_cpi: 0.3,
            branch_miss_latency: 14.0,
            btb_miss_latency: 5.0,
            l2_latency: 10.0,
            llc_latency: 26.0,
            mem_latency: 170.0,
            tlb_miss_latency: 30.0,
        }
    }

    /// A tiny configuration for unit tests (fast, very sensitive to
    /// locality).
    pub fn small() -> SimConfig {
        SimConfig {
            l1i_bytes: 2 << 10,
            l1d_bytes: 2 << 10,
            l2_bytes: 8 << 10,
            llc_bytes: 64 << 10,
            itlb_entries: 8,
            dtlb_entries: 8,
            btb_entries: 64,
            predictor_history_bits: 8,
            ..SimConfig::server()
        }
    }
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig::server()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        for cfg in [SimConfig::server(), SimConfig::small()] {
            assert!(cfg.l1i_bytes.is_power_of_two());
            assert!(cfg.llc_bytes > cfg.l2_bytes);
            assert!(cfg.l2_bytes > cfg.l1i_bytes);
            assert!(cfg.mem_latency > cfg.llc_latency);
        }
    }
}
