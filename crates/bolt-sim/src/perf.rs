//! The CPU front-end performance model: the reproduction's substitute for
//! hardware performance counters (paper section 6 measures branch misses,
//! I-cache/D-cache misses, I-TLB/D-TLB misses, LLC misses, and CPU time).

use crate::{BranchPredictor, Cache, SimConfig};
use bolt_emu::{BlockEvent, BranchEvent, TraceSink};

/// Counter snapshot reported by the model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Counters {
    pub instructions: u64,
    pub cycles: f64,
    pub cond_branches: u64,
    pub branch_mispredicts: u64,
    pub l1i_accesses: u64,
    pub l1i_misses: u64,
    pub l1d_accesses: u64,
    pub l1d_misses: u64,
    pub l2_misses: u64,
    pub llc_misses: u64,
    pub itlb_misses: u64,
    pub dtlb_misses: u64,
}

impl Counters {
    /// Adds `other`'s event counts into `self` — aggregation across
    /// independent runs (e.g. the shards of a batch). Every field is a
    /// sum, so merging is commutative and associative and a batch summed
    /// in shard-index order equals any other order.
    pub fn merge(&mut self, other: &Counters) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.cond_branches += other.cond_branches;
        self.branch_mispredicts += other.branch_mispredicts;
        self.l1i_accesses += other.l1i_accesses;
        self.l1i_misses += other.l1i_misses;
        self.l1d_accesses += other.l1d_accesses;
        self.l1d_misses += other.l1d_misses;
        self.l2_misses += other.l2_misses;
        self.llc_misses += other.llc_misses;
        self.itlb_misses += other.itlb_misses;
        self.dtlb_misses += other.dtlb_misses;
    }

    /// Percentage reduction of a metric from `self` (baseline) to `other`.
    pub fn reduction(base: u64, new: u64) -> f64 {
        if base == 0 {
            0.0
        } else {
            100.0 * (base as f64 - new as f64) / base as f64
        }
    }

    /// Speedup of `new` over `self` in percent (by cycle count).
    pub fn speedup_over(&self, new: &Counters) -> f64 {
        if new.cycles == 0.0 {
            0.0
        } else {
            100.0 * (self.cycles - new.cycles) / new.cycles
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles
        }
    }

    /// Serializes to the compact binary artifact *payload* (see
    /// [`bolt_emu::artifact`] for the framing): every field as eight
    /// little-endian bytes in declaration order, `cycles` by its IEEE
    /// bit pattern — so equal counters encode to equal bytes and a
    /// supervised sum can be compared byte-for-byte against the
    /// in-process path.
    pub fn to_bytes(&self) -> Vec<u8> {
        let fields = [
            self.instructions,
            self.cycles.to_bits(),
            self.cond_branches,
            self.branch_mispredicts,
            self.l1i_accesses,
            self.l1i_misses,
            self.l1d_accesses,
            self.l1d_misses,
            self.l2_misses,
            self.llc_misses,
            self.itlb_misses,
            self.dtlb_misses,
        ];
        let mut out = Vec::with_capacity(fields.len() * 8);
        for f in fields {
            out.extend_from_slice(&f.to_le_bytes());
        }
        out
    }

    /// Decodes a [`Counters::to_bytes`] payload (exact length
    /// required).
    pub fn from_bytes(bytes: &[u8]) -> Result<Counters, bolt_emu::ArtifactError> {
        use bolt_emu::artifact::ByteReader;
        let mut r = ByteReader::new(bytes);
        let c = Counters {
            instructions: r.u64("instructions")?,
            cycles: f64::from_bits(r.u64("cycles")?),
            cond_branches: r.u64("cond_branches")?,
            branch_mispredicts: r.u64("branch_mispredicts")?,
            l1i_accesses: r.u64("l1i_accesses")?,
            l1i_misses: r.u64("l1i_misses")?,
            l1d_accesses: r.u64("l1d_accesses")?,
            l1d_misses: r.u64("l1d_misses")?,
            l2_misses: r.u64("l2_misses")?,
            llc_misses: r.u64("llc_misses")?,
            itlb_misses: r.u64("itlb_misses")?,
            dtlb_misses: r.u64("dtlb_misses")?,
        };
        r.finish("counters payload slack")?;
        Ok(c)
    }

    /// Frames [`Counters::to_bytes`] as a durable artifact
    /// (`KIND_COUNTERS`).
    pub fn to_artifact(&self) -> Vec<u8> {
        bolt_emu::artifact::frame(bolt_emu::artifact::KIND_COUNTERS, &self.to_bytes())
    }

    /// Validates framing and decodes a [`Counters::to_artifact`] byte
    /// string.
    pub fn from_artifact(bytes: &[u8]) -> Result<Counters, bolt_emu::ArtifactError> {
        let payload = bolt_emu::artifact::unframe(bytes, bolt_emu::artifact::KIND_COUNTERS)?;
        Counters::from_bytes(payload)
    }
}

impl std::ops::AddAssign<&Counters> for Counters {
    fn add_assign(&mut self, other: &Counters) {
        self.merge(other);
    }
}

impl std::ops::Add for Counters {
    type Output = Counters;

    fn add(mut self, other: Counters) -> Counters {
        self.merge(&other);
        self
    }
}

impl std::iter::Sum for Counters {
    fn sum<I: Iterator<Item = Counters>>(iter: I) -> Counters {
        iter.fold(Counters::default(), |mut acc, c| {
            acc.merge(&c);
            acc
        })
    }
}

impl<'a> std::iter::Sum<&'a Counters> for Counters {
    fn sum<I: Iterator<Item = &'a Counters>>(iter: I) -> Counters {
        iter.fold(Counters::default(), |mut acc, c| {
            acc.merge(c);
            acc
        })
    }
}

/// The microarchitectural model. Implements [`TraceSink`] so it can be
/// attached directly to the emulator.
///
/// The hierarchy is L1I + L1D → unified L2 → LLC → memory, with separate
/// I/D TLBs and a gshare + BTB + RAS branch predictor. The cycle cost model
/// is additive: a base CPI plus fixed penalties per miss event — crude, but
/// it preserves the *ordering* the paper's evaluation depends on (front-end
/// bound binaries are dominated by I-cache/iTLB misses and branch
/// mispredictions).
#[derive(Debug)]
pub struct CpuModel {
    pub cfg: SimConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    itlb: Cache,
    dtlb: Cache,
    pub predictor: BranchPredictor,
    instructions: u64,
    extra_cycles: f64,
}

impl CpuModel {
    pub fn new(cfg: SimConfig) -> CpuModel {
        CpuModel {
            l1i: Cache::new(cfg.l1i_bytes, cfg.l1i_ways, cfg.line_bytes),
            l1d: Cache::new(cfg.l1d_bytes, cfg.l1d_ways, cfg.line_bytes),
            l2: Cache::new(cfg.l2_bytes, cfg.l2_ways, cfg.line_bytes),
            llc: Cache::new(cfg.llc_bytes, cfg.llc_ways, cfg.line_bytes),
            itlb: Cache::new(
                cfg.itlb_entries * cfg.page_bytes,
                cfg.itlb_ways,
                cfg.page_bytes,
            ),
            dtlb: Cache::new(
                cfg.dtlb_entries * cfg.page_bytes,
                cfg.dtlb_ways,
                cfg.page_bytes,
            ),
            predictor: BranchPredictor::new(cfg.predictor_history_bits, cfg.btb_entries),
            instructions: 0,
            extra_cycles: 0.0,
            cfg,
        }
    }

    fn miss_path(&mut self, addr: u64, from_l1i: bool) -> f64 {
        // L1 missed; walk L2 -> LLC -> memory.
        let _ = from_l1i;
        if self.l2.access(addr) {
            self.cfg.l2_latency
        } else if self.llc.access(addr) {
            self.cfg.l2_latency + self.cfg.llc_latency
        } else {
            self.cfg.l2_latency + self.cfg.llc_latency + self.cfg.mem_latency
        }
    }

    /// The interleaved-walk half of [`TraceSink::on_block`]: charges a
    /// superblock event whose fetch and memory records interleave by
    /// instruction index, in exact program order. First touches of
    /// I-side pages/lines are probed at their step-engine positions
    /// (so shared L2/LLC levels see the same probe order); repeat
    /// fetches and consecutive same-line D-side accesses — guaranteed
    /// most-recently-used hits whose re-stamp cannot change any LRU
    /// decision — are bulk-counted without a cache walk.
    fn on_superblock(&mut self, ev: BlockEvent<'_>) {
        // Same-line ⇒ same-page needs pages no smaller than lines.
        if self.cfg.page_bytes < 64 {
            ev.replay(self);
            return;
        }
        self.instructions += ev.inst_count as u64;
        let page_mask = !(self.cfg.page_bytes - 1);
        // Last-probed I-side line/page (fetches ascend, so `!=` means
        // first touch); invalid sentinels make the first fetch probe.
        let mut cur_line = u64::MAX;
        let mut cur_page = u64::MAX;
        let mut itlb_bulk = 0u64;
        let mut l1i_bulk = 0u64;
        // Two-slot memo of recently *charged* non-crossing D-side lines
        // (`d1` newest). A repeat of `d1` is a guaranteed
        // most-recently-used hit in both L1D and dTLB. A repeat of `d2`
        // is equally guaranteed when `d1` provably lives in a different
        // L1D set and a different dTLB set — then `d2` is still the
        // newest access within each of its own sets, and skipping its
        // re-stamp cannot change any LRU decision (recency *order*
        // within every set is preserved). This covers the alternating
        // stack-line/data-line pattern of typical straight-line code.
        let mut d1 = u64::MAX;
        let mut d2 = u64::MAX;
        let l1d_set_mask = (self.l1d.sets() - 1) as u64;
        let dtlb_set_mask = (self.dtlb.sets() - 1) as u64;
        let page_shift = self.cfg.page_bytes.trailing_zeros();
        let distinct_sets = |a: u64, b: u64| {
            ((a >> 6) & l1d_set_mask) != ((b >> 6) & l1d_set_mask)
                && ((a >> page_shift) & dtlb_set_mask) != ((b >> page_shift) & dtlb_set_mask)
        };
        let mut d_bulk = 0u64;
        let mut mi = 0usize;
        for (i, &(addr, len)) in ev.fetches.iter().enumerate() {
            let page = addr & page_mask;
            if page != cur_page {
                if !self.itlb.access(page) {
                    self.extra_cycles += self.cfg.tlb_miss_latency;
                }
                cur_page = page;
            } else {
                itlb_bulk += 1;
            }
            let la = (addr >> 6) << 6;
            if la != cur_line {
                if !self.l1i.access(la) {
                    self.extra_cycles += self.miss_path(la, true);
                }
                cur_line = la;
            } else {
                l1i_bulk += 1;
            }
            let le = ((addr + len as u64 - 1) >> 6) << 6;
            if le != la {
                // A crossing fetch's second line is always a first
                // touch (lines ascend strictly once left).
                if !self.l1i.access(le) {
                    self.extra_cycles += self.miss_path(le, true);
                }
                cur_line = le;
            }
            while let Some(m) = ev.mems.get(mi) {
                if m.inst as usize != i {
                    break;
                }
                mi += 1;
                let dl = (m.addr >> 6) << 6;
                let crosses = ((m.addr + m.len.max(1) as u64 - 1) >> 6) << 6 != dl;
                if !crosses && (dl == d1 || (dl == d2 && distinct_sets(d1, d2))) {
                    d_bulk += 1;
                } else {
                    self.on_mem(m.addr, m.len, m.write);
                    if crosses {
                        // The crossing touched two lines; neither slot
                        // can claim MRU safely any more.
                        d1 = u64::MAX;
                        d2 = u64::MAX;
                    } else if dl != d1 {
                        d2 = d1;
                        d1 = dl;
                    }
                }
            }
        }
        self.itlb.accesses += itlb_bulk;
        self.l1i.accesses += l1i_bulk;
        self.l1d.accesses += d_bulk;
        self.dtlb.accesses += d_bulk;
    }

    /// Current counter snapshot.
    pub fn counters(&self) -> Counters {
        Counters {
            instructions: self.instructions,
            cycles: self.instructions as f64 * self.cfg.base_cpi + self.extra_cycles,
            cond_branches: self.predictor.cond_branches,
            branch_mispredicts: self.predictor.total_steering_misses(),
            l1i_accesses: self.l1i.accesses,
            l1i_misses: self.l1i.misses,
            l1d_accesses: self.l1d.accesses,
            l1d_misses: self.l1d.misses,
            l2_misses: self.l2.misses,
            llc_misses: self.llc.misses,
            itlb_misses: self.itlb.misses,
            dtlb_misses: self.dtlb.misses,
        }
    }
}

impl TraceSink for CpuModel {
    #[inline]
    fn on_inst(&mut self, addr: u64, len: u8) {
        self.instructions += 1;
        if !self.itlb.access(addr) {
            self.extra_cycles += self.cfg.tlb_miss_latency;
        }
        if !self.l1i.access(addr) {
            self.extra_cycles += self.miss_path(addr, true);
        }
        // A fetch crossing a line boundary touches the next line too.
        let end = addr + len as u64 - 1;
        if end >> self.cfg.line_bytes.trailing_zeros()
            != addr >> self.cfg.line_bytes.trailing_zeros()
            && !self.l1i.access(end)
        {
            self.extra_cycles += self.miss_path(end, true);
        }
    }

    /// Charges a translated block's whole footprint in one call.
    ///
    /// Byte-identical to replaying the event's interleaved
    /// [`on_inst`]/[`on_mem`] sequence. The I-side argument: a
    /// straight-line block's fetch stream touches pages and lines in
    /// monotone non-decreasing order, so every repeat access is a
    /// guaranteed most-recently-used hit with no penalty and no
    /// LRU-order effect — only the first touch of each distinct
    /// page/line can miss, and D-side accesses in between touch
    /// *different* structures (L1D/dTLB) so they cannot disturb it.
    /// The block engine's events carry no memory records and take the
    /// pure-I-side bulk path; the superblock engine's interleaved
    /// records are walked in exact program order (each probe lands at
    /// its step-engine position relative to the shared L2/LLC levels),
    /// with the same bulk treatment applied to repeat fetches and to
    /// consecutive same-line D-side accesses (a push/pop run, a hot
    /// spill slot) — the D-side footprint charged in bulk the way the
    /// I-side already is.
    ///
    /// [`on_inst`]: TraceSink::on_inst
    /// [`on_mem`]: TraceSink::on_mem
    #[inline]
    fn on_block(&mut self, ev: BlockEvent<'_>) {
        // The precomputed footprint models 64-byte lines; a config with
        // exotic geometry replays the exact per-instruction path.
        if self.cfg.line_bytes != 64 || self.cfg.page_bytes <= 16 || ev.fetches.is_empty() {
            ev.replay(self);
            return;
        }
        if !ev.mems.is_empty() {
            self.on_superblock(ev);
            return;
        }
        self.instructions += ev.inst_count as u64;
        // iTLB: pages of instruction-start addresses (every page in the
        // range holds at least one start — pages dwarf instructions).
        let page_mask = !(self.cfg.page_bytes - 1);
        let last_page = ev.fetches[ev.fetches.len() - 1].0 & page_mask;
        let mut page = ev.entry & page_mask;
        let mut pages_probed = 0u64;
        loop {
            pages_probed += 1;
            if !self.itlb.access(page) {
                self.extra_cycles += self.cfg.tlb_miss_latency;
            }
            if page >= last_page {
                break;
            }
            page += self.cfg.page_bytes;
        }
        // Bulk-count the repeat accesses (one per instruction in the
        // step engine), mirroring the L1I correction below.
        self.itlb.accesses += ev.inst_count as u64 - pages_probed;
        // L1I: each distinct line once; repeats bulk-counted (the step
        // engine reports one access per fetch plus one per crossing).
        for &line in ev.lines64 {
            if !self.l1i.access(line) {
                self.extra_cycles += self.miss_path(line, true);
            }
        }
        let total_accesses = ev.inst_count as u64 + ev.crossings64 as u64;
        self.l1i.accesses += total_accesses - ev.lines64.len() as u64;
    }

    #[inline]
    fn on_branch(&mut self, ev: BranchEvent) {
        let outcome = self.predictor.observe(ev);
        if outcome.mispredicted {
            self.extra_cycles += self.cfg.branch_miss_latency;
        } else if outcome.btb_fetch_miss {
            self.extra_cycles += self.cfg.btb_miss_latency;
        }
    }

    #[inline]
    fn on_mem(&mut self, addr: u64, len: u8, _write: bool) {
        if !self.dtlb.access(addr) {
            self.extra_cycles += self.cfg.tlb_miss_latency;
        }
        if !self.l1d.access(addr) {
            self.extra_cycles += self.miss_path(addr, false);
        }
        // An access crossing a line boundary touches the next line too,
        // exactly like the I-side check in `on_inst`.
        let end = addr + len.max(1) as u64 - 1;
        if end >> self.cfg.line_bytes.trailing_zeros()
            != addr >> self.cfg.line_bytes.trailing_zeros()
            && !self.l1d.access(end)
        {
            self.extra_cycles += self.miss_path(end, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_emu::BranchKind;

    #[test]
    fn tight_loop_is_fast_scattered_code_is_slow() {
        let cfg = SimConfig::small();
        // Tight loop: 1000 insts in 64 bytes.
        let mut hot = CpuModel::new(cfg.clone());
        for i in 0..1000u64 {
            hot.on_inst(0x400000 + (i % 16) * 4, 4);
        }
        // Scattered: 1000 insts spread over 4MB.
        let mut cold = CpuModel::new(cfg);
        for i in 0..1000u64 {
            cold.on_inst(0x400000 + (i * 4099) % (4 << 20), 4);
        }
        let h = hot.counters();
        let c = cold.counters();
        assert!(h.cycles < c.cycles, "locality must be rewarded");
        assert!(h.l1i_misses < c.l1i_misses);
        assert!(h.itlb_misses < c.itlb_misses);
        assert!(c.llc_misses > 0, "scattered code spills past LLC");
    }

    #[test]
    fn branch_penalty_counted() {
        let cfg = SimConfig::small();
        let mut m = CpuModel::new(cfg);
        let base = m.counters().cycles;
        for i in 0..64u64 {
            m.on_branch(BranchEvent {
                from: 0x400000,
                to: 0x400100,
                taken: i % 2 == 0, // alternation takes time to learn
                kind: BranchKind::Cond,
            });
        }
        let c = m.counters();
        assert!(c.branch_mispredicts > 0);
        assert!(c.cycles > base);
    }

    #[test]
    fn line_straddling_data_access_touches_both_lines() {
        let cfg = SimConfig::small();
        let line = cfg.line_bytes;
        // 8-byte access entirely inside one line: one D-side access.
        let mut within = CpuModel::new(cfg.clone());
        within.on_mem(0x500000, 8, false);
        assert_eq!(within.counters().l1d_accesses, 1);

        // 8-byte access straddling a line boundary: both lines touched.
        let mut straddle = CpuModel::new(cfg.clone());
        straddle.on_mem(0x500000 + line - 4, 8, false);
        let c = straddle.counters();
        assert_eq!(c.l1d_accesses, 2, "second line accessed");
        assert_eq!(c.l1d_misses, 2, "both lines cold-miss");
        assert!(
            c.cycles > within.counters().cycles,
            "the extra line costs cycles"
        );

        // The straddling access warms *both* lines: repeating it hits.
        straddle.on_mem(0x500000 + line - 4, 8, false);
        assert_eq!(straddle.counters().l1d_misses, 2, "no new misses");

        // Writes take the same path.
        let mut w = CpuModel::new(cfg);
        w.on_mem(0x600000 + line - 1, 2, true);
        assert_eq!(w.counters().l1d_accesses, 2);
    }

    /// Builds the [`BlockEvent`] fields the emulator's translation cache
    /// would precompute for a contiguous run of instruction lengths.
    fn block_parts(entry: u64, lens: &[u8]) -> (Vec<(u64, u8)>, Vec<u64>, u32) {
        let mut fetches = Vec::new();
        let mut crossings = 0u32;
        let mut at = entry;
        for &len in lens {
            fetches.push((at, len));
            if (at >> 6) != ((at + len as u64 - 1) >> 6) {
                crossings += 1;
            }
            at += len as u64;
        }
        let mut lines = Vec::new();
        let mut line = (entry >> 6) << 6;
        while line < at {
            lines.push(line);
            line += 64;
        }
        (fetches, lines, crossings)
    }

    /// The batched `on_block` must charge byte-identically to replaying
    /// `on_inst` per fetch — including line crossings, page boundaries,
    /// and the bulk-counted repeat accesses.
    #[test]
    fn batched_block_equals_per_inst_charging() {
        let cfg = SimConfig::small();
        for (entry, lens) in [
            (0x400000u64, vec![4u8; 12]),       // within one line
            (0x40003Du64, vec![7, 7, 7, 2, 3]), // line crossing mid-block
            (0x400FF0u64, vec![4; 16]),         // page + line boundary
            (0x400FFDu64, vec![7]),             // single straddling inst
        ] {
            let (fetches, lines, crossings) = block_parts(entry, &lens);
            let byte_len: u32 = lens.iter().map(|&l| l as u32).sum();
            let ev = bolt_emu::BlockEvent {
                entry,
                inst_count: lens.len() as u32,
                byte_len,
                fetches: &fetches,
                lines64: &lines,
                crossings64: crossings,
                mems: &[],
            };
            let mut stepped = CpuModel::new(cfg.clone());
            for &(addr, len) in &fetches {
                stepped.on_inst(addr, len);
            }
            let mut batched = CpuModel::new(cfg.clone());
            batched.on_block(ev);
            assert_eq!(
                stepped.counters(),
                batched.counters(),
                "entry {entry:#x} lens {lens:?}"
            );
            // Internal access counts match too — including the iTLB's,
            // which `Counters` does not (yet) report.
            assert_eq!(
                stepped.itlb.accesses, batched.itlb.accesses,
                "entry {entry:#x}: iTLB accesses bulk-counted"
            );
            assert_eq!(stepped.l1i.accesses, batched.l1i.accesses);
            // And the cache state evolved identically: a follow-up run
            // over the same block stays identical too.
            for &(addr, len) in &fetches {
                stepped.on_inst(addr, len);
            }
            batched.on_block(ev);
            assert_eq!(stepped.counters(), batched.counters());
        }
    }

    /// The superblock path — interleaved fetch + memory records — must
    /// charge byte-identically to replaying the interleaved
    /// `on_inst`/`on_mem` sequence, across same-line D-side runs (the
    /// bulk memo), line-crossing accesses, page boundaries, and
    /// repeated executions of the same block (identical cache-state
    /// evolution).
    #[test]
    fn batched_superblock_equals_interleaved_charging() {
        use bolt_emu::MemRecord;
        let cfg = SimConfig::small();
        let rec = |inst: u32, addr: u64, len: u8, write: bool| MemRecord {
            inst,
            addr,
            len,
            write,
        };
        let cases: Vec<(u64, Vec<u8>, Vec<MemRecord>)> = vec![
            // Same-line D-side run (push/pop pattern): bulk memo path.
            (
                0x400000,
                vec![4u8; 8],
                vec![
                    rec(1, 0x7FFF_0000, 8, true),
                    rec(2, 0x7FFF_0008, 8, false),
                    rec(3, 0x7FFF_0010, 8, true),
                    rec(6, 0x7FFF_0010, 8, false),
                ],
            ),
            // Crossing D access mid-run, then a same-line repeat whose
            // memo must have been invalidated by the crossing.
            (
                0x40003D,
                vec![7, 7, 7, 2, 3],
                vec![
                    rec(0, 0x50003C, 8, false),
                    rec(1, 0x500038, 8, true),
                    rec(4, 0x500038, 8, false),
                ],
            ),
            // Page-straddling fetches with interleaved scattered mems.
            (
                0x400FF0,
                vec![4; 16],
                vec![
                    rec(0, 0x600000, 8, false),
                    rec(5, 0x600FFC, 8, true), // crosses line and page
                    rec(5, 0x600FFC, 8, false),
                    rec(15, 0x600000, 8, true),
                ],
            ),
            // Every instruction touches memory (worst case).
            (
                0x400100,
                vec![7; 6],
                (0..6)
                    .map(|i| rec(i, 0x500000 + (i as u64 % 2) * 8, 8, i % 2 == 0))
                    .collect(),
            ),
        ];
        // Alternating-line patterns exercising the two-slot D-side
        // memo: stack-vs-data in distinct sets (bulked) and an
        // adversarial pair mapping to the same L1D set (must charge).
        let l1d_sets = CpuModel::new(cfg.clone()).l1d.sets() as u64;
        let mut cases = cases;
        for stride in [0x100, l1d_sets * 64, l1d_sets * 64 + 64] {
            cases.push((
                0x400200,
                vec![4u8; 10],
                (0..10)
                    .map(|i| rec(i, 0x600000 + (i as u64 % 2) * stride, 8, i % 3 == 0))
                    .collect(),
            ));
        }
        for (entry, lens, mems) in cases {
            let (fetches, lines, crossings) = block_parts(entry, &lens);
            let byte_len: u32 = lens.iter().map(|&l| l as u32).sum();
            let ev = bolt_emu::BlockEvent {
                entry,
                inst_count: lens.len() as u32,
                byte_len,
                fetches: &fetches,
                lines64: &lines,
                crossings64: crossings,
                mems: &mems,
            };
            let mut stepped = CpuModel::new(cfg.clone());
            let mut batched = CpuModel::new(cfg.clone());
            for round in 0..3 {
                let mut mi = 0usize;
                for (i, &(addr, len)) in fetches.iter().enumerate() {
                    stepped.on_inst(addr, len);
                    while mi < mems.len() && mems[mi].inst as usize == i {
                        let m = mems[mi];
                        stepped.on_mem(m.addr, m.len, m.write);
                        mi += 1;
                    }
                }
                batched.on_block(ev);
                assert_eq!(
                    stepped.counters(),
                    batched.counters(),
                    "entry {entry:#x} round {round}"
                );
                assert_eq!(stepped.itlb.accesses, batched.itlb.accesses);
                assert_eq!(stepped.l1i.accesses, batched.l1i.accesses);
                assert_eq!(stepped.dtlb.accesses, batched.dtlb.accesses);
                assert_eq!(stepped.l1d.accesses, batched.l1d.accesses);
            }
        }
    }

    #[test]
    fn counters_merge_sums_fields() {
        let cfg = SimConfig::small();
        let mut a = CpuModel::new(cfg.clone());
        for i in 0..100u64 {
            a.on_inst(0x400000 + i * 64, 4);
        }
        a.on_mem(0x500000, 8, false);
        let mut b = CpuModel::new(cfg);
        for i in 0..50u64 {
            b.on_inst(0x700000 + i * 64, 4);
        }
        let (ca, cb) = (a.counters(), b.counters());
        let mut m = ca;
        m.merge(&cb);
        assert_eq!(m.instructions, 150);
        assert_eq!(m.l1i_misses, ca.l1i_misses + cb.l1i_misses);
        assert_eq!(m.l1d_accesses, ca.l1d_accesses);
        assert!((m.cycles - (ca.cycles + cb.cycles)).abs() < 1e-9);
        // Sum over an iterator agrees, and order does not matter.
        let s1: Counters = [ca, cb].iter().sum();
        let s2: Counters = [cb, ca].iter().sum();
        assert_eq!(s1, m);
        assert_eq!(s2, m);
        // Merging the default is the identity.
        let mut id = ca;
        id.merge(&Counters::default());
        assert_eq!(id, ca);
    }

    #[test]
    fn counters_artifact_round_trip_and_bit_flip_rejection() {
        let cfg = SimConfig::small();
        let mut model = CpuModel::new(cfg);
        for i in 0..200u64 {
            model.on_inst(0x400000 + i * 8, 4);
            if i % 3 == 0 {
                model.on_mem(0x500000 + i * 64, 8, i % 2 == 0);
            }
        }
        let c = model.counters();
        let bytes = c.to_artifact();
        let back = Counters::from_artifact(&bytes).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.to_artifact(), bytes, "canonical encoding");
        // Payload length is exact: slack and truncation both reject.
        let payload = c.to_bytes();
        assert!(Counters::from_bytes(&payload[..payload.len() - 1]).is_err());
        let mut slack = payload.clone();
        slack.push(0);
        assert!(Counters::from_bytes(&slack).is_err());
        // Any single bit flip in the framed artifact is rejected.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 1;
            assert!(Counters::from_artifact(&bad).is_err(), "flip byte {i}");
        }
    }

    #[test]
    fn counters_reduction_math() {
        assert!((Counters::reduction(100, 80) - 20.0).abs() < 1e-9);
        assert_eq!(Counters::reduction(0, 5), 0.0);
        let a = Counters {
            cycles: 120.0,
            ..Counters::default()
        };
        let b = Counters {
            cycles: 100.0,
            ..Counters::default()
        };
        assert!((a.speedup_over(&b) - 20.0).abs() < 1e-9);
    }
}
