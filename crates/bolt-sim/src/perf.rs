//! The CPU front-end performance model: the reproduction's substitute for
//! hardware performance counters (paper section 6 measures branch misses,
//! I-cache/D-cache misses, I-TLB/D-TLB misses, LLC misses, and CPU time).

use crate::{BranchPredictor, Cache, SimConfig};
use bolt_emu::{BranchEvent, TraceSink};

/// Counter snapshot reported by the model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Counters {
    pub instructions: u64,
    pub cycles: f64,
    pub cond_branches: u64,
    pub branch_mispredicts: u64,
    pub l1i_accesses: u64,
    pub l1i_misses: u64,
    pub l1d_accesses: u64,
    pub l1d_misses: u64,
    pub l2_misses: u64,
    pub llc_misses: u64,
    pub itlb_misses: u64,
    pub dtlb_misses: u64,
}

impl Counters {
    /// Adds `other`'s event counts into `self` — aggregation across
    /// independent runs (e.g. the shards of a batch). Every field is a
    /// sum, so merging is commutative and associative and a batch summed
    /// in shard-index order equals any other order.
    pub fn merge(&mut self, other: &Counters) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.cond_branches += other.cond_branches;
        self.branch_mispredicts += other.branch_mispredicts;
        self.l1i_accesses += other.l1i_accesses;
        self.l1i_misses += other.l1i_misses;
        self.l1d_accesses += other.l1d_accesses;
        self.l1d_misses += other.l1d_misses;
        self.l2_misses += other.l2_misses;
        self.llc_misses += other.llc_misses;
        self.itlb_misses += other.itlb_misses;
        self.dtlb_misses += other.dtlb_misses;
    }

    /// Percentage reduction of a metric from `self` (baseline) to `other`.
    pub fn reduction(base: u64, new: u64) -> f64 {
        if base == 0 {
            0.0
        } else {
            100.0 * (base as f64 - new as f64) / base as f64
        }
    }

    /// Speedup of `new` over `self` in percent (by cycle count).
    pub fn speedup_over(&self, new: &Counters) -> f64 {
        if new.cycles == 0.0 {
            0.0
        } else {
            100.0 * (self.cycles - new.cycles) / new.cycles
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles
        }
    }
}

impl std::ops::AddAssign<&Counters> for Counters {
    fn add_assign(&mut self, other: &Counters) {
        self.merge(other);
    }
}

impl std::ops::Add for Counters {
    type Output = Counters;

    fn add(mut self, other: Counters) -> Counters {
        self.merge(&other);
        self
    }
}

impl std::iter::Sum for Counters {
    fn sum<I: Iterator<Item = Counters>>(iter: I) -> Counters {
        iter.fold(Counters::default(), |mut acc, c| {
            acc.merge(&c);
            acc
        })
    }
}

impl<'a> std::iter::Sum<&'a Counters> for Counters {
    fn sum<I: Iterator<Item = &'a Counters>>(iter: I) -> Counters {
        iter.fold(Counters::default(), |mut acc, c| {
            acc.merge(c);
            acc
        })
    }
}

/// The microarchitectural model. Implements [`TraceSink`] so it can be
/// attached directly to the emulator.
///
/// The hierarchy is L1I + L1D → unified L2 → LLC → memory, with separate
/// I/D TLBs and a gshare + BTB + RAS branch predictor. The cycle cost model
/// is additive: a base CPI plus fixed penalties per miss event — crude, but
/// it preserves the *ordering* the paper's evaluation depends on (front-end
/// bound binaries are dominated by I-cache/iTLB misses and branch
/// mispredictions).
#[derive(Debug)]
pub struct CpuModel {
    pub cfg: SimConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    itlb: Cache,
    dtlb: Cache,
    pub predictor: BranchPredictor,
    instructions: u64,
    extra_cycles: f64,
}

impl CpuModel {
    pub fn new(cfg: SimConfig) -> CpuModel {
        CpuModel {
            l1i: Cache::new(cfg.l1i_bytes, cfg.l1i_ways, cfg.line_bytes),
            l1d: Cache::new(cfg.l1d_bytes, cfg.l1d_ways, cfg.line_bytes),
            l2: Cache::new(cfg.l2_bytes, cfg.l2_ways, cfg.line_bytes),
            llc: Cache::new(cfg.llc_bytes, cfg.llc_ways, cfg.line_bytes),
            itlb: Cache::new(
                cfg.itlb_entries * cfg.page_bytes,
                cfg.itlb_ways,
                cfg.page_bytes,
            ),
            dtlb: Cache::new(
                cfg.dtlb_entries * cfg.page_bytes,
                cfg.dtlb_ways,
                cfg.page_bytes,
            ),
            predictor: BranchPredictor::new(cfg.predictor_history_bits, cfg.btb_entries),
            instructions: 0,
            extra_cycles: 0.0,
            cfg,
        }
    }

    fn miss_path(&mut self, addr: u64, from_l1i: bool) -> f64 {
        // L1 missed; walk L2 -> LLC -> memory.
        let _ = from_l1i;
        if self.l2.access(addr) {
            self.cfg.l2_latency
        } else if self.llc.access(addr) {
            self.cfg.l2_latency + self.cfg.llc_latency
        } else {
            self.cfg.l2_latency + self.cfg.llc_latency + self.cfg.mem_latency
        }
    }

    /// Current counter snapshot.
    pub fn counters(&self) -> Counters {
        Counters {
            instructions: self.instructions,
            cycles: self.instructions as f64 * self.cfg.base_cpi + self.extra_cycles,
            cond_branches: self.predictor.cond_branches,
            branch_mispredicts: self.predictor.total_steering_misses(),
            l1i_accesses: self.l1i.accesses,
            l1i_misses: self.l1i.misses,
            l1d_accesses: self.l1d.accesses,
            l1d_misses: self.l1d.misses,
            l2_misses: self.l2.misses,
            llc_misses: self.llc.misses,
            itlb_misses: self.itlb.misses,
            dtlb_misses: self.dtlb.misses,
        }
    }
}

impl TraceSink for CpuModel {
    #[inline]
    fn on_inst(&mut self, addr: u64, len: u8) {
        self.instructions += 1;
        if !self.itlb.access(addr) {
            self.extra_cycles += self.cfg.tlb_miss_latency;
        }
        if !self.l1i.access(addr) {
            self.extra_cycles += self.miss_path(addr, true);
        }
        // A fetch crossing a line boundary touches the next line too.
        let end = addr + len as u64 - 1;
        if end >> self.cfg.line_bytes.trailing_zeros()
            != addr >> self.cfg.line_bytes.trailing_zeros()
        {
            if !self.l1i.access(end) {
                self.extra_cycles += self.miss_path(end, true);
            }
        }
    }

    #[inline]
    fn on_branch(&mut self, ev: BranchEvent) {
        let outcome = self.predictor.observe(ev);
        if outcome.mispredicted {
            self.extra_cycles += self.cfg.branch_miss_latency;
        } else if outcome.btb_fetch_miss {
            self.extra_cycles += self.cfg.btb_miss_latency;
        }
    }

    #[inline]
    fn on_mem(&mut self, addr: u64, len: u8, _write: bool) {
        if !self.dtlb.access(addr) {
            self.extra_cycles += self.cfg.tlb_miss_latency;
        }
        if !self.l1d.access(addr) {
            self.extra_cycles += self.miss_path(addr, false);
        }
        // An access crossing a line boundary touches the next line too,
        // exactly like the I-side check in `on_inst`.
        let end = addr + len.max(1) as u64 - 1;
        if end >> self.cfg.line_bytes.trailing_zeros()
            != addr >> self.cfg.line_bytes.trailing_zeros()
        {
            if !self.l1d.access(end) {
                self.extra_cycles += self.miss_path(end, false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_emu::BranchKind;

    #[test]
    fn tight_loop_is_fast_scattered_code_is_slow() {
        let cfg = SimConfig::small();
        // Tight loop: 1000 insts in 64 bytes.
        let mut hot = CpuModel::new(cfg.clone());
        for i in 0..1000u64 {
            hot.on_inst(0x400000 + (i % 16) * 4, 4);
        }
        // Scattered: 1000 insts spread over 4MB.
        let mut cold = CpuModel::new(cfg);
        for i in 0..1000u64 {
            cold.on_inst(0x400000 + (i * 4099) % (4 << 20), 4);
        }
        let h = hot.counters();
        let c = cold.counters();
        assert!(h.cycles < c.cycles, "locality must be rewarded");
        assert!(h.l1i_misses < c.l1i_misses);
        assert!(h.itlb_misses < c.itlb_misses);
        assert!(c.llc_misses > 0, "scattered code spills past LLC");
    }

    #[test]
    fn branch_penalty_counted() {
        let cfg = SimConfig::small();
        let mut m = CpuModel::new(cfg);
        let base = m.counters().cycles;
        for i in 0..64u64 {
            m.on_branch(BranchEvent {
                from: 0x400000,
                to: 0x400100,
                taken: i % 2 == 0, // alternation takes time to learn
                kind: BranchKind::Cond,
            });
        }
        let c = m.counters();
        assert!(c.branch_mispredicts > 0);
        assert!(c.cycles > base);
    }

    #[test]
    fn line_straddling_data_access_touches_both_lines() {
        let cfg = SimConfig::small();
        let line = cfg.line_bytes;
        // 8-byte access entirely inside one line: one D-side access.
        let mut within = CpuModel::new(cfg.clone());
        within.on_mem(0x500000, 8, false);
        assert_eq!(within.counters().l1d_accesses, 1);

        // 8-byte access straddling a line boundary: both lines touched.
        let mut straddle = CpuModel::new(cfg.clone());
        straddle.on_mem(0x500000 + line - 4, 8, false);
        let c = straddle.counters();
        assert_eq!(c.l1d_accesses, 2, "second line accessed");
        assert_eq!(c.l1d_misses, 2, "both lines cold-miss");
        assert!(
            c.cycles > within.counters().cycles,
            "the extra line costs cycles"
        );

        // The straddling access warms *both* lines: repeating it hits.
        straddle.on_mem(0x500000 + line - 4, 8, false);
        assert_eq!(straddle.counters().l1d_misses, 2, "no new misses");

        // Writes take the same path.
        let mut w = CpuModel::new(cfg);
        w.on_mem(0x600000 + line - 1, 2, true);
        assert_eq!(w.counters().l1d_accesses, 2);
    }

    #[test]
    fn counters_merge_sums_fields() {
        let cfg = SimConfig::small();
        let mut a = CpuModel::new(cfg.clone());
        for i in 0..100u64 {
            a.on_inst(0x400000 + i * 64, 4);
        }
        a.on_mem(0x500000, 8, false);
        let mut b = CpuModel::new(cfg);
        for i in 0..50u64 {
            b.on_inst(0x700000 + i * 64, 4);
        }
        let (ca, cb) = (a.counters(), b.counters());
        let mut m = ca;
        m.merge(&cb);
        assert_eq!(m.instructions, 150);
        assert_eq!(m.l1i_misses, ca.l1i_misses + cb.l1i_misses);
        assert_eq!(m.l1d_accesses, ca.l1d_accesses);
        assert!((m.cycles - (ca.cycles + cb.cycles)).abs() < 1e-9);
        // Sum over an iterator agrees, and order does not matter.
        let s1: Counters = [ca, cb].iter().sum();
        let s2: Counters = [cb, ca].iter().sum();
        assert_eq!(s1, m);
        assert_eq!(s2, m);
        // Merging the default is the identity.
        let mut id = ca;
        id.merge(&Counters::default());
        assert_eq!(id, ca);
    }

    #[test]
    fn counters_reduction_math() {
        assert!((Counters::reduction(100, 80) - 20.0).abs() < 1e-9);
        assert_eq!(Counters::reduction(0, 5), 0.0);
        let a = Counters {
            cycles: 120.0,
            ..Counters::default()
        };
        let b = Counters {
            cycles: 100.0,
            ..Counters::default()
        };
        assert!((a.speedup_over(&b) - 20.0).abs() < 1e-9);
    }
}
