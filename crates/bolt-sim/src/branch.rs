//! Branch prediction: gshare direction predictor + BTB + return-address
//! stack.

use bolt_emu::{BranchEvent, BranchKind};

/// The outcome of observing one branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchOutcome {
    /// The direction or target was predicted wrong (full pipeline flush).
    pub mispredicted: bool,
    /// The direction was right but the taken target was absent from the
    /// BTB (front-end fetch redirect — cheaper than a flush, and the
    /// mechanism that ties branch cost to code layout: fall-throughs never
    /// need the BTB).
    pub btb_fetch_miss: bool,
}

impl BranchOutcome {
    /// Whether anything went wrong at all.
    pub fn missed(self) -> bool {
        self.mispredicted || self.btb_fetch_miss
    }
}

/// A gshare conditional-branch direction predictor with a branch target
/// buffer for indirect targets and a return-address stack.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    /// 2-bit saturating counters.
    pht: Vec<u8>,
    history: u64,
    history_bits: u32,
    /// BTB: (tag, target) per entry, direct-mapped.
    btb: Vec<(u64, u64)>,
    ras: Vec<u64>,
    ras_max: usize,
    pub cond_branches: u64,
    pub cond_mispredicts: u64,
    pub btb_fetch_misses: u64,
    pub ind_branches: u64,
    pub ind_mispredicts: u64,
    pub returns: u64,
    pub return_mispredicts: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `2^history_bits` PHT entries and
    /// `btb_entries` BTB slots.
    pub fn new(history_bits: u32, btb_entries: usize) -> BranchPredictor {
        assert!(btb_entries.is_power_of_two());
        BranchPredictor {
            pht: vec![1; 1 << history_bits], // weakly not-taken
            history: 0,
            history_bits,
            btb: vec![(u64::MAX, 0); btb_entries],
            ras: Vec::new(),
            ras_max: 32,
            cond_branches: 0,
            cond_mispredicts: 0,
            btb_fetch_misses: 0,
            ind_branches: 0,
            ind_mispredicts: 0,
            returns: 0,
            return_mispredicts: 0,
        }
    }

    fn pht_index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.history_bits) - 1;
        (((pc >> 1) ^ self.history) & mask) as usize
    }

    fn btb_index(&self, pc: u64) -> usize {
        (pc as usize >> 1) & (self.btb.len() - 1)
    }

    /// Consumes one branch event, updating state and counters.
    pub fn observe(&mut self, ev: BranchEvent) -> BranchOutcome {
        match ev.kind {
            BranchKind::Cond => {
                self.cond_branches += 1;
                let idx = self.pht_index(ev.from);
                let predict_taken = self.pht[idx] >= 2;
                let mispredicted = predict_taken != ev.taken;
                // A correctly predicted *taken* branch still needs its
                // target from the BTB; a cold BTB entry costs a fetch
                // redirect. Fall-throughs never touch the BTB — this is
                // what ties branch cost to code layout.
                let btb_fetch_miss =
                    ev.taken && !mispredicted && !self.btb_probe_update(ev.from, ev.to);
                if ev.taken {
                    self.pht[idx] = (self.pht[idx] + 1).min(3);
                    if mispredicted {
                        self.btb_probe_update(ev.from, ev.to);
                    }
                } else {
                    self.pht[idx] = self.pht[idx].saturating_sub(1);
                }
                self.history =
                    ((self.history << 1) | u64::from(ev.taken)) & ((1 << self.history_bits) - 1);
                if mispredicted {
                    self.cond_mispredicts += 1;
                }
                if btb_fetch_miss {
                    self.btb_fetch_misses += 1;
                }
                BranchOutcome {
                    mispredicted,
                    btb_fetch_miss,
                }
            }
            BranchKind::Uncond => {
                // Unconditional direct jumps also occupy BTB entries.
                let miss = !self.btb_probe_update(ev.from, ev.to);
                if miss {
                    self.btb_fetch_misses += 1;
                }
                BranchOutcome {
                    mispredicted: false,
                    btb_fetch_miss: miss,
                }
            }
            BranchKind::IndirectJump | BranchKind::IndirectCall => {
                self.ind_branches += 1;
                let idx = self.btb_index(ev.from);
                let (tag, target) = self.btb[idx];
                let mispredicted = tag != ev.from || target != ev.to;
                self.btb[idx] = (ev.from, ev.to);
                if ev.kind == BranchKind::IndirectCall {
                    self.push_ras(ev.from);
                }
                if mispredicted {
                    self.ind_mispredicts += 1;
                }
                BranchOutcome {
                    mispredicted,
                    btb_fetch_miss: false,
                }
            }
            BranchKind::Call => {
                self.push_ras(ev.from);
                BranchOutcome::default()
            }
            BranchKind::Return => {
                self.returns += 1;
                // A return is predicted correctly iff the RAS top matches
                // the call site it returns past.
                let predicted = self.ras.pop();
                // `ev.to` is the return address = call site + call length;
                // accept any target within 16 bytes of the recorded call.
                let ok = predicted
                    .map(|call_pc| ev.to.wrapping_sub(call_pc) <= 16)
                    .unwrap_or(false);
                if !ok {
                    self.return_mispredicts += 1;
                }
                BranchOutcome {
                    mispredicted: !ok,
                    btb_fetch_miss: false,
                }
            }
        }
    }

    /// Probes and updates the BTB; returns `true` on hit.
    fn btb_probe_update(&mut self, pc: u64, target: u64) -> bool {
        let idx = self.btb_index(pc);
        let hit = self.btb[idx] == (pc, target);
        self.btb[idx] = (pc, target);
        hit
    }

    fn push_ras(&mut self, call_pc: u64) {
        if self.ras.len() == self.ras_max {
            self.ras.remove(0);
        }
        self.ras.push(call_pc);
    }

    /// Total mispredictions across branch classes (flushes only, not BTB
    /// fetch redirects).
    pub fn total_mispredicts(&self) -> u64 {
        self.cond_mispredicts + self.ind_mispredicts + self.return_mispredicts
    }

    /// All branch-steering misses: flushes plus BTB fetch redirects (the
    /// "branch miss" metric of paper Figure 6).
    pub fn total_steering_misses(&self) -> u64 {
        self.total_mispredicts() + self.btb_fetch_misses
    }

    /// Conditional-branch misprediction rate.
    pub fn cond_miss_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.cond_mispredicts as f64 / self.cond_branches as f64
        }
    }
}

impl Default for BranchPredictor {
    fn default() -> BranchPredictor {
        BranchPredictor::new(14, 4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(from: u64, taken: bool) -> BranchEvent {
        BranchEvent {
            from,
            to: if taken { from + 100 } else { from + 2 },
            taken,
            kind: BranchKind::Cond,
        }
    }

    #[test]
    fn learns_a_biased_branch() {
        let mut p = BranchPredictor::default();
        for _ in 0..100 {
            p.observe(cond(0x400000, true));
        }
        // Each distinct history pattern during warm-up costs one miss;
        // with 14 history bits that is at most ~15 before saturation.
        assert!(
            p.cond_mispredicts <= 16,
            "biased branch learned after warm-up ({} misses)",
            p.cond_mispredicts
        );
        // And the steady state is perfect: run another 100.
        let warm = p.cond_mispredicts;
        for _ in 0..100 {
            p.observe(cond(0x400000, true));
        }
        assert_eq!(p.cond_mispredicts, warm, "steady state never mispredicts");
    }

    #[test]
    fn alternating_pattern_learned_via_history() {
        let mut p = BranchPredictor::default();
        for i in 0..200 {
            p.observe(cond(0x400000, i % 2 == 0));
        }
        // gshare encodes the alternation in the history; late mispredicts
        // should be rare.
        assert!(
            p.cond_mispredicts < 40,
            "history-based learning ({} misses)",
            p.cond_mispredicts
        );
    }

    #[test]
    fn btb_catches_stable_indirect_targets() {
        let mut p = BranchPredictor::default();
        let ev = BranchEvent {
            from: 0x400100,
            to: 0x400800,
            taken: true,
            kind: BranchKind::IndirectJump,
        };
        p.observe(ev); // cold miss
        for _ in 0..10 {
            assert!(!p.observe(ev).mispredicted, "stable target predicted");
        }
        // Changing target mispredicts once.
        let ev2 = BranchEvent { to: 0x400900, ..ev };
        assert!(p.observe(ev2).mispredicted);
        assert_eq!(p.ind_mispredicts, 2);
    }

    #[test]
    fn ras_pairs_calls_and_returns() {
        let mut p = BranchPredictor::default();
        p.observe(BranchEvent {
            from: 0x400000,
            to: 0x400500,
            taken: true,
            kind: BranchKind::Call,
        });
        let mis = p.observe(BranchEvent {
            from: 0x400510,
            to: 0x400005, // returns right after the call
            taken: true,
            kind: BranchKind::Return,
        });
        assert!(!mis.mispredicted, "matched return predicted");
        // Unbalanced return mispredicts.
        let mis = p.observe(BranchEvent {
            from: 0x400520,
            to: 0x400005,
            taken: true,
            kind: BranchKind::Return,
        });
        assert!(mis.mispredicted);
    }
}
