//! The mid-level IR (MIR) of the compiler substrate.
//!
//! Programs are collections of modules; each function belongs to a module
//! (cross-module inlining requires LTO, which is how the reproduction gets
//! the paper's LTO-vs-non-LTO distinction). Every statement carries a
//! source line so profile data can be mapped *back* to source the way
//! AutoFDO does — including the precision loss of paper Figure 2 when a
//! function is inlined into several callers.

use std::collections::HashMap;
use std::fmt;

/// A virtual register / stack slot within a function.
pub type LocalId = u32;

/// A block index within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MirBlockId(pub u32);

impl MirBlockId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MirBlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// An operand: a local or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    Local(LocalId),
    Const(i64),
}

/// Two-operand arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
}

/// Constant-amount shifts (the ISA subset has no variable shifts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftKind {
    Shl,
    Shr,
    Sar,
}

/// Signed comparisons producing 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// Right-hand sides of assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rvalue {
    Use(Operand),
    BinOp(BinOp, Operand, Operand),
    Shift(ShiftKind, Operand, u8),
    Cmp(CmpOp, Operand, Operand),
    /// Loads the 64-bit word `global[index]`.
    LoadGlobal {
        global: String,
        index: Operand,
    },
    /// The address of a function (for indirect calls).
    FuncAddr(String),
}

/// Call targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    Direct(String),
    /// Indirect through a function pointer value.
    Indirect(Operand),
}

/// A statement. Every statement carries its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    Assign {
        dst: LocalId,
        rv: Rvalue,
        line: u32,
    },
    StoreGlobal {
        global: String,
        index: Operand,
        value: Operand,
        line: u32,
    },
    Call {
        dst: Option<LocalId>,
        callee: Callee,
        args: Vec<Operand>,
        /// Landing-pad block if this call can throw.
        landing_pad: Option<MirBlockId>,
        line: u32,
    },
    /// Writes a value to the program's output stream (lowered to a runtime
    /// call through the PLT).
    Emit {
        value: Operand,
        line: u32,
    },
}

impl Stmt {
    pub fn line(&self) -> u32 {
        match self {
            Stmt::Assign { line, .. }
            | Stmt::StoreGlobal { line, .. }
            | Stmt::Call { line, .. }
            | Stmt::Emit { line, .. } => *line,
        }
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    Goto(MirBlockId),
    /// Two-way branch on a 0/1 operand.
    Branch {
        cond: Operand,
        then_bb: MirBlockId,
        else_bb: MirBlockId,
    },
    /// Multi-way dispatch: `scrut` in `0..targets.len()` selects a target,
    /// anything else goes to `default`. Lowered to a jump table.
    Switch {
        scrut: Operand,
        targets: Vec<MirBlockId>,
        default: MirBlockId,
    },
    Return(Operand),
    Unreachable,
}

impl Terminator {
    /// All successor blocks.
    pub fn successors(&self) -> Vec<MirBlockId> {
        match self {
            Terminator::Goto(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Switch {
                targets, default, ..
            } => {
                let mut v = targets.clone();
                v.push(*default);
                v
            }
            Terminator::Return(_) | Terminator::Unreachable => vec![],
        }
    }

    /// Remaps successor block ids.
    pub fn remap(&mut self, f: impl Fn(MirBlockId) -> MirBlockId) {
        match self {
            Terminator::Goto(b) => *b = f(*b),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            Terminator::Switch {
                targets, default, ..
            } => {
                for t in targets.iter_mut() {
                    *t = f(*t);
                }
                *default = f(*default);
            }
            Terminator::Return(_) | Terminator::Unreachable => {}
        }
    }
}

/// A MIR basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MirBlock {
    pub stmts: Vec<Stmt>,
    pub term: Terminator,
    pub term_line: u32,
}

/// A MIR function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MirFunction {
    pub name: String,
    /// Owning module: inlining across modules requires LTO.
    pub module: u32,
    /// Source file name (interned into the line table at link time).
    pub file: String,
    /// Number of parameters (occupying locals `0..params`).
    pub params: u32,
    /// Total locals, including parameters.
    pub locals: u32,
    pub blocks: Vec<MirBlock>,
    /// Block emission order (entry first). Reordered by PGO layout.
    pub layout: Vec<MirBlockId>,
    /// Small-function hint (like `inline` in C).
    pub inline_hint: bool,
}

impl MirFunction {
    pub fn block(&self, id: MirBlockId) -> &MirBlock {
        &self.blocks[id.index()]
    }

    pub fn entry(&self) -> MirBlockId {
        self.layout.first().copied().unwrap_or(MirBlockId(0))
    }

    /// Fresh local allocation.
    pub fn new_local(&mut self) -> LocalId {
        let l = self.locals;
        self.locals += 1;
        l
    }

    /// Structural validation.
    pub fn validate(&self, program: &MirProgram) -> Result<(), String> {
        let err = |m: String| Err(format!("{}: {m}", self.name));
        if self.layout.is_empty() {
            return err("empty layout".into());
        }
        let mut seen = vec![false; self.blocks.len()];
        for id in &self.layout {
            if id.index() >= self.blocks.len() {
                return err(format!("layout references missing block {id}"));
            }
            if seen[id.index()] {
                return err(format!("block {id} appears twice in layout"));
            }
            seen[id.index()] = true;
        }
        let check_op = |op: &Operand| -> Result<(), String> {
            if let Operand::Local(l) = op {
                if *l >= self.locals {
                    return Err(format!("{}: local {l} out of range", self.name));
                }
            }
            Ok(())
        };
        for (bi, b) in self.blocks.iter().enumerate() {
            for s in &b.stmts {
                match s {
                    Stmt::Assign { dst, rv, .. } => {
                        if *dst >= self.locals {
                            return err(format!("local {dst} out of range"));
                        }
                        match rv {
                            Rvalue::Use(a) => check_op(a)?,
                            Rvalue::BinOp(_, a, b) | Rvalue::Cmp(_, a, b) => {
                                check_op(a)?;
                                check_op(b)?;
                            }
                            Rvalue::Shift(_, a, amt) => {
                                check_op(a)?;
                                if *amt >= 64 {
                                    return err(format!("shift amount {amt} out of range"));
                                }
                            }
                            Rvalue::LoadGlobal { global, index } => {
                                check_op(index)?;
                                if program.global(global).is_none() {
                                    return err(format!("unknown global {global}"));
                                }
                            }
                            Rvalue::FuncAddr(f) => {
                                if program.function(f).is_none() {
                                    return err(format!("address of unknown function {f}"));
                                }
                            }
                        }
                    }
                    Stmt::StoreGlobal {
                        global,
                        index,
                        value,
                        ..
                    } => {
                        check_op(index)?;
                        check_op(value)?;
                        match program.global(global) {
                            None => return err(format!("unknown global {global}")),
                            Some(g) if !g.mutable => {
                                return err(format!("store to read-only global {global}"))
                            }
                            _ => {}
                        }
                    }
                    Stmt::Call {
                        dst,
                        callee,
                        args,
                        landing_pad,
                        ..
                    } => {
                        if let Some(d) = dst {
                            if *d >= self.locals {
                                return err(format!("local {d} out of range"));
                            }
                        }
                        for a in args {
                            check_op(a)?;
                        }
                        if args.len() > 6 {
                            return err("more than six call arguments".into());
                        }
                        if let Callee::Direct(name) = callee {
                            if program.function(name).is_none() {
                                return err(format!("call to unknown function {name}"));
                            }
                        }
                        if let Callee::Indirect(p) = callee {
                            check_op(p)?;
                        }
                        if let Some(lp) = landing_pad {
                            if lp.index() >= self.blocks.len() {
                                return err(format!("landing pad {lp} out of range"));
                            }
                        }
                    }
                    Stmt::Emit { value, .. } => check_op(value)?,
                }
            }
            for succ in b.term.successors() {
                if succ.index() >= self.blocks.len() {
                    return err(format!("bb{bi} branches to missing block {succ}"));
                }
            }
            if let Terminator::Branch { cond, .. } = &b.term {
                check_op(cond)?;
            }
            if let Terminator::Switch { scrut, .. } = &b.term {
                check_op(scrut)?;
            }
            if let Terminator::Return(v) = &b.term {
                check_op(v)?;
            }
        }
        Ok(())
    }
}

/// A global array of 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    pub name: String,
    pub words: Vec<i64>,
    /// Mutable globals go to `.data`; immutable to `.rodata`.
    pub mutable: bool,
}

/// A whole MIR program.
///
/// Source lines are *globally unique* across the program (each function
/// occupies a disjoint line range of its file); `line_ranges` maps lines
/// back to files so that statements keep correct file attribution even
/// after inlining — the property that makes paper Figure 10's
/// "blocks from three different source files" reproducible.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MirProgram {
    pub functions: Vec<MirFunction>,
    pub globals: Vec<Global>,
    /// Name of the entry function (conventionally `main`).
    pub entry: String,
    /// Source file names.
    pub files: Vec<String>,
    /// Sorted `(first_line, file_index)` ranges.
    pub line_ranges: Vec<(u32, u32)>,
    /// Next free global line number.
    next_line: u32,
}

impl MirProgram {
    /// Creates an empty program with the given entry-function name.
    pub fn with_entry(entry: &str) -> MirProgram {
        MirProgram {
            entry: entry.to_string(),
            ..MirProgram::default()
        }
    }

    pub fn function(&self, name: &str) -> Option<&MirFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Interns a file name.
    pub fn intern_file(&mut self, name: &str) -> u32 {
        if let Some(i) = self.files.iter().position(|f| f == name) {
            return i as u32;
        }
        self.files.push(name.to_string());
        (self.files.len() - 1) as u32
    }

    /// The file containing a global line number.
    pub fn file_of_line(&self, line: u32) -> u32 {
        let i = self.line_ranges.partition_point(|r| r.0 <= line);
        if i == 0 {
            0
        } else {
            self.line_ranges[i - 1].1
        }
    }

    /// Adds a function whose lines were assigned locally (starting at 1 by
    /// [`crate::builder::FunctionBuilder`]), rebasing them into the global
    /// line space and recording the line→file range.
    pub fn add_function(&mut self, mut func: MirFunction) {
        let file_id = self.intern_file(&func.file);
        let base = self.next_line;
        let mut max_line = 0u32;
        for b in &mut func.blocks {
            for s in &mut b.stmts {
                let l = match s {
                    Stmt::Assign { line, .. }
                    | Stmt::StoreGlobal { line, .. }
                    | Stmt::Call { line, .. }
                    | Stmt::Emit { line, .. } => line,
                };
                *l += base;
                max_line = max_line.max(*l);
            }
            b.term_line += base;
            max_line = max_line.max(b.term_line);
        }
        self.line_ranges.push((base, file_id));
        self.next_line = max_line.max(base) + 2;
        self.functions.push(func);
    }

    pub fn function_mut(&mut self, name: &str) -> Option<&mut MirFunction> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Validates every function.
    pub fn validate(&self) -> Result<(), String> {
        if self.function(&self.entry).is_none() {
            return Err(format!("entry function {} not found", self.entry));
        }
        for f in &self.functions {
            f.validate(self)?;
        }
        Ok(())
    }
}

/// Why MIR interpretation stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    UnknownFunction(String),
    BadFunctionPointer(i64),
    StackOverflow,
    StepBudgetExhausted,
    UnreachableExecuted {
        function: String,
    },
    /// A global was indexed outside its bounds (generators must produce
    /// in-range indices so machine semantics and MIR semantics agree).
    GlobalIndexOutOfBounds {
        global: String,
        index: i64,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::UnknownFunction(n) => write!(f, "unknown function {n}"),
            InterpError::BadFunctionPointer(p) => write!(f, "bad function pointer {p}"),
            InterpError::StackOverflow => write!(f, "call depth limit exceeded"),
            InterpError::StepBudgetExhausted => write!(f, "step budget exhausted"),
            InterpError::UnreachableExecuted { function } => {
                write!(f, "unreachable executed in {function}")
            }
            InterpError::GlobalIndexOutOfBounds { global, index } => {
                write!(f, "global {global} indexed out of bounds at {index}")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Reference MIR interpreter.
///
/// The interpreter is the semantic oracle for the code generator: for any
/// valid program, `interpret(p, args) == emulate(compile(p), args)` (output
/// and exit code). Function pointers are modeled as `i64` handles
/// (`FUNC_HANDLE_BASE + function index`).
pub struct Interp<'p> {
    program: &'p MirProgram,
    /// Mutable global state.
    globals: HashMap<String, Vec<i64>>,
    pub output: Vec<i64>,
    steps: u64,
    max_steps: u64,
}

/// Base value for function-pointer handles in the interpreter.
pub const FUNC_HANDLE_BASE: i64 = 0x4_0000_0000;

impl<'p> Interp<'p> {
    pub fn new(program: &'p MirProgram, max_steps: u64) -> Interp<'p> {
        let globals = program
            .globals
            .iter()
            .map(|g| (g.name.clone(), g.words.clone()))
            .collect();
        Interp {
            program,
            globals,
            output: Vec::new(),
            steps: 0,
            max_steps,
        }
    }

    /// Runs the entry function with the given arguments; returns its return
    /// value.
    ///
    /// # Errors
    ///
    /// See [`InterpError`].
    pub fn run(&mut self, args: &[i64]) -> Result<i64, InterpError> {
        let entry = self.program.entry.clone();
        self.call(&entry, args, 0)
    }

    /// Calls an arbitrary function by name (useful in tests).
    ///
    /// # Errors
    ///
    /// See [`InterpError`].
    pub fn call_function(&mut self, name: &str, args: &[i64]) -> Result<i64, InterpError> {
        self.call(name, args, 0)
    }

    fn func_index(&self, name: &str) -> Option<usize> {
        self.program.functions.iter().position(|f| f.name == name)
    }

    fn call(&mut self, name: &str, args: &[i64], depth: u32) -> Result<i64, InterpError> {
        if depth > 256 {
            return Err(InterpError::StackOverflow);
        }
        let fidx = self
            .func_index(name)
            .ok_or_else(|| InterpError::UnknownFunction(name.to_string()))?;
        let func = &self.program.functions[fidx];
        let mut locals = vec![0i64; func.locals as usize];
        for (i, a) in args.iter().take(func.params as usize).enumerate() {
            locals[i] = *a;
        }
        let mut bb = func.entry();
        loop {
            self.steps += 1;
            if self.steps > self.max_steps {
                return Err(InterpError::StepBudgetExhausted);
            }
            let block = func.block(bb);
            // Collect calls to perform (to satisfy the borrow checker we
            // execute statements with an explicit program reference).
            for si in 0..block.stmts.len() {
                let stmt = &func.block(bb).stmts[si];
                match stmt {
                    Stmt::Assign { dst, rv, .. } => {
                        let v = self.eval_rvalue(rv, &locals)?;
                        locals[*dst as usize] = v;
                    }
                    Stmt::StoreGlobal {
                        global,
                        index,
                        value,
                        ..
                    } => {
                        let idx = self.eval_operand(index, &locals);
                        let val = self.eval_operand(value, &locals);
                        let words = self.globals.get_mut(global).expect("validated global name");
                        if idx < 0 || idx as usize >= words.len() {
                            return Err(InterpError::GlobalIndexOutOfBounds {
                                global: global.clone(),
                                index: idx,
                            });
                        }
                        words[idx as usize] = val;
                    }
                    Stmt::Call {
                        dst, callee, args, ..
                    } => {
                        let argv: Vec<i64> =
                            args.iter().map(|a| self.eval_operand(a, &locals)).collect();
                        let callee_name = match callee {
                            Callee::Direct(n) => n.clone(),
                            Callee::Indirect(p) => {
                                let h = self.eval_operand(p, &locals);
                                let idx = h - FUNC_HANDLE_BASE;
                                if idx < 0 || idx as usize >= self.program.functions.len() {
                                    return Err(InterpError::BadFunctionPointer(h));
                                }
                                self.program.functions[idx as usize].name.clone()
                            }
                        };
                        let r = self.call(&callee_name, &argv, depth + 1)?;
                        if let Some(d) = dst {
                            locals[*d as usize] = r;
                        }
                    }
                    Stmt::Emit { value, .. } => {
                        let v = self.eval_operand(value, &locals);
                        self.output.push(v);
                    }
                }
            }
            match &func.block(bb).term {
                Terminator::Goto(b) => bb = *b,
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    bb = if self.eval_operand(cond, &locals) != 0 {
                        *then_bb
                    } else {
                        *else_bb
                    };
                }
                Terminator::Switch {
                    scrut,
                    targets,
                    default,
                } => {
                    let v = self.eval_operand(scrut, &locals);
                    bb = if v >= 0 && (v as usize) < targets.len() {
                        targets[v as usize]
                    } else {
                        *default
                    };
                }
                Terminator::Return(v) => return Ok(self.eval_operand(v, &locals)),
                Terminator::Unreachable => {
                    return Err(InterpError::UnreachableExecuted {
                        function: func.name.clone(),
                    })
                }
            }
        }
    }

    fn eval_operand(&self, op: &Operand, locals: &[i64]) -> i64 {
        match op {
            Operand::Local(l) => locals[*l as usize],
            Operand::Const(c) => *c,
        }
    }

    fn eval_rvalue(&self, rv: &Rvalue, locals: &[i64]) -> Result<i64, InterpError> {
        Ok(match rv {
            Rvalue::Use(op) => self.eval_operand(op, locals),
            Rvalue::BinOp(op, a, b) => {
                let a = self.eval_operand(a, locals);
                let b = self.eval_operand(b, locals);
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                }
            }
            Rvalue::Shift(kind, a, amt) => {
                let a = self.eval_operand(a, locals);
                match kind {
                    ShiftKind::Shl => ((a as u64) << amt) as i64,
                    ShiftKind::Shr => ((a as u64) >> amt) as i64,
                    ShiftKind::Sar => a >> amt,
                }
            }
            Rvalue::Cmp(op, a, b) => {
                let a = self.eval_operand(a, locals);
                let b = self.eval_operand(b, locals);
                i64::from(match op {
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                })
            }
            Rvalue::LoadGlobal { global, index } => {
                let idx = self.eval_operand(index, locals);
                let words = &self.globals[global];
                if idx < 0 || idx as usize >= words.len() {
                    return Err(InterpError::GlobalIndexOutOfBounds {
                        global: global.clone(),
                        index: idx,
                    });
                }
                words[idx as usize]
            }
            Rvalue::FuncAddr(name) => {
                let idx = self
                    .func_index(name)
                    .ok_or_else(|| InterpError::UnknownFunction(name.clone()))?;
                FUNC_HANDLE_BASE + idx as i64
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    /// max(a, b) as MIR via the builder.
    fn max_program() -> MirProgram {
        let mut p = MirProgram {
            entry: "max".into(),
            ..MirProgram::default()
        };
        let mut b = FunctionBuilder::new("max", 0, "max.c", 2);
        let cond = b.assign_cmp(CmpOp::Gt, Operand::Local(0), Operand::Local(1));
        let (then_bb, else_bb) = b.branch(Operand::Local(cond));
        b.switch_to(then_bb);
        b.ret(Operand::Local(0));
        b.switch_to(else_bb);
        b.ret(Operand::Local(1));
        p.functions.push(b.finish());
        p.validate().unwrap();
        p
    }

    #[test]
    fn interp_max() {
        let p = max_program();
        assert_eq!(Interp::new(&p, 1000).run(&[3, 9]).unwrap(), 9);
        assert_eq!(Interp::new(&p, 1000).run(&[12, 9]).unwrap(), 12);
        assert_eq!(Interp::new(&p, 1000).run(&[-5, -9]).unwrap(), -5);
    }

    #[test]
    fn validation_catches_bad_references() {
        let mut p = max_program();
        p.functions[0].blocks[0].stmts.push(Stmt::Call {
            dst: None,
            callee: Callee::Direct("missing".into()),
            args: vec![],
            landing_pad: None,
            line: 1,
        });
        assert!(p.validate().unwrap_err().contains("unknown function"));
    }

    #[test]
    fn interp_globals_and_emit() {
        let mut p = MirProgram {
            entry: "main".into(),
            ..MirProgram::default()
        };
        p.globals.push(Global {
            name: "tbl".into(),
            words: vec![10, 20, 30],
            mutable: true,
        });
        let mut b = FunctionBuilder::new("main", 0, "main.c", 0);
        let v = b.assign(Rvalue::LoadGlobal {
            global: "tbl".into(),
            index: Operand::Const(2),
        });
        b.push_stmt(Stmt::StoreGlobal {
            global: "tbl".into(),
            index: Operand::Const(0),
            value: Operand::Local(v),
            line: 1,
        });
        let w = b.assign(Rvalue::LoadGlobal {
            global: "tbl".into(),
            index: Operand::Const(0),
        });
        b.emit(Operand::Local(w));
        b.ret(Operand::Const(0));
        p.functions.push(b.finish());
        p.validate().unwrap();
        let mut i = Interp::new(&p, 1000);
        i.run(&[]).unwrap();
        assert_eq!(i.output, vec![30]);
    }

    #[test]
    fn interp_function_pointers() {
        let mut p = MirProgram {
            entry: "main".into(),
            ..MirProgram::default()
        };
        let mut f = FunctionBuilder::new("forty_two", 0, "lib.c", 0);
        f.ret(Operand::Const(42));
        p.functions.push(f.finish());
        let mut b = FunctionBuilder::new("main", 0, "main.c", 0);
        let ptr = b.assign(Rvalue::FuncAddr("forty_two".into()));
        let r = b.call_indirect(Operand::Local(ptr), vec![]);
        b.ret(Operand::Local(r));
        p.functions.push(b.finish());
        p.validate().unwrap();
        assert_eq!(Interp::new(&p, 1000).run(&[]).unwrap(), 42);
    }

    #[test]
    fn switch_dispatch() {
        let mut p = MirProgram {
            entry: "main".into(),
            ..MirProgram::default()
        };
        let mut b = FunctionBuilder::new("main", 0, "main.c", 1);
        let arms = b.switch(Operand::Local(0), 3);
        for (i, arm) in arms.targets.iter().enumerate() {
            b.switch_to(*arm);
            b.ret(Operand::Const(100 + i as i64));
        }
        b.switch_to(arms.default);
        b.ret(Operand::Const(-1));
        p.functions.push(b.finish());
        p.validate().unwrap();
        assert_eq!(Interp::new(&p, 100).run(&[0]).unwrap(), 100);
        assert_eq!(Interp::new(&p, 100).run(&[2]).unwrap(), 102);
        assert_eq!(Interp::new(&p, 100).run(&[7]).unwrap(), -1);
        assert_eq!(Interp::new(&p, 100).run(&[-1]).unwrap(), -1);
    }
}
