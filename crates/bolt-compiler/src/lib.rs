//! # bolt-compiler — the compiler substrate
//!
//! A miniature optimizing compiler and linker: MIR programs (built by the
//! workload generators) are lowered to the x86-64 subset and linked into
//! ELF executables that the emulator can run and BOLT can rewrite. It
//! supports the build configurations the paper's evaluation compares
//! (section 6.2): plain `-O2`, PGO (AutoFDO-style source-level profiles),
//! LTO (cross-module inlining), `--emit-relocs`, PLT indirection, alignment
//! NOPs, and `repz ret` emission.

pub mod builder;
pub mod codegen;
pub mod inline;
pub mod link;
pub mod mir;
pub mod options;
pub mod pgo;

pub use builder::FunctionBuilder;
pub use codegen::{codegen_function, GenFunction, JumpTableReq, Labels, RT_EMIT, RT_EXIT};
pub use link::{compile_and_link, CompileError, CompiledBinary};
pub use mir::{
    BinOp, Callee, CmpOp, Global, Interp, InterpError, LocalId, MirBlock, MirBlockId, MirFunction,
    MirProgram, Operand, Rvalue, ShiftKind, Stmt, Terminator,
};
pub use options::CompileOptions;
pub use pgo::{pgo_layout, SourceProfile};
