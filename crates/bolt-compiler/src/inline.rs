//! MIR inlining: compiler inlining at `-O1`/`-O2` plus PGO-driven hot-call
//! inlining, with LTO gating cross-module sites.
//!
//! Inlined statements keep their original global line numbers, so two
//! inlined copies of a callee share profile counters — reproducing the
//! Figure 2 aggregation problem that motivates post-link optimization.

use crate::mir::{
    Callee, MirBlock, MirBlockId, MirFunction, MirProgram, Operand, Rvalue, Stmt, Terminator,
};
use crate::options::CompileOptions;
use std::collections::HashMap;

/// Maximum callee size (blocks / statements) for hint-driven inlining.
const MAX_INLINE_BLOCKS: usize = 8;
const MAX_INLINE_STMTS: usize = 24;
/// Tiny callees inlined unconditionally at `-O2`.
const TINY_STMTS: usize = 4;
/// A call site is "hot" for PGO inlining if it gets at least this fraction
/// of the hottest line's samples.
const PGO_HOT_FRACTION: f64 = 0.05;
/// Fixpoint rounds (bounds nested inlining depth).
const MAX_ROUNDS: usize = 3;

/// Whether `callee` may be inlined at all.
fn inlinable(callee: &MirFunction) -> bool {
    let stmts: usize = callee.blocks.iter().map(|b| b.stmts.len()).sum();
    if callee.blocks.len() > MAX_INLINE_BLOCKS || stmts > MAX_INLINE_STMTS {
        return false;
    }
    // No recursion.
    let self_call = callee.blocks.iter().any(|b| {
        b.stmts
            .iter()
            .any(|s| matches!(s, Stmt::Call { callee: Callee::Direct(n), .. } if *n == callee.name))
    });
    !self_call
}

/// Whether this specific call site should be inlined under `opts`.
fn should_inline(
    caller: &MirFunction,
    callee: &MirFunction,
    line: u32,
    opts: &CompileOptions,
) -> bool {
    if opts.opt_level == 0 {
        return false;
    }
    if caller.module != callee.module && !opts.lto {
        return false;
    }
    let stmts: usize = callee.blocks.iter().map(|b| b.stmts.len()).sum();
    if callee.inline_hint {
        return true;
    }
    if opts.opt_level >= 2 && stmts <= TINY_STMTS {
        return true;
    }
    if let Some(profile) = &opts.pgo {
        let hot = (profile.max_line() as f64 * PGO_HOT_FRACTION) as u64;
        let count = profile.calls_at(line, &callee.name).max(profile.line(line));
        if count > 0 && count >= hot.max(1) {
            return true;
        }
    }
    false
}

/// One inlining transformation: splices `callee` into `caller` at
/// (`block`, `stmt_idx`). The call must be a direct call without a landing
/// pad.
fn inline_at(caller: &mut MirFunction, block: MirBlockId, stmt_idx: usize, callee: &MirFunction) {
    let call = caller.blocks[block.index()].stmts[stmt_idx].clone();
    let Stmt::Call {
        dst,
        callee: Callee::Direct(_),
        args,
        landing_pad: None,
        line: call_line,
    } = call
    else {
        panic!("inline_at target is not a plain direct call");
    };

    // Local remapping: callee local l -> caller local (base + l).
    let local_base = caller.locals;
    caller.locals += callee.locals;
    // Block remapping: callee block b -> caller block (block_base + b).
    let block_base = caller.blocks.len() as u32;

    // Split the call block: statements after the call move to a fresh
    // continuation block owning the original terminator.
    let cont_id = MirBlockId(block_base + callee.blocks.len() as u32);
    let orig = &mut caller.blocks[block.index()];
    let after: Vec<Stmt> = orig.stmts.split_off(stmt_idx + 1);
    orig.stmts.pop(); // remove the call itself
    let cont = MirBlock {
        stmts: after,
        term: std::mem::replace(&mut orig.term, Terminator::Unreachable),
        term_line: orig.term_line,
    };

    // Argument binding, attributed to the call site's line.
    for (i, a) in args.iter().enumerate() {
        orig.stmts.push(Stmt::Assign {
            dst: local_base + i as u32,
            rv: Rvalue::Use(*a),
            line: call_line,
        });
    }
    let callee_entry = MirBlockId(block_base + callee.entry().0);
    orig.term = Terminator::Goto(callee_entry);
    orig.term_line = call_line;

    // Copy callee blocks, remapping locals and block ids; returns become
    // assignments + gotos to the continuation. Lines are kept verbatim:
    // that is the Figure 2 mechanism.
    let remap_block = |b: MirBlockId| MirBlockId(block_base + b.0);
    let remap_op = |op: &Operand| match op {
        Operand::Local(l) => Operand::Local(local_base + l),
        Operand::Const(c) => Operand::Const(*c),
    };
    for cb in &callee.blocks {
        let mut stmts = Vec::with_capacity(cb.stmts.len());
        for s in &cb.stmts {
            stmts.push(match s {
                Stmt::Assign { dst, rv, line } => Stmt::Assign {
                    dst: local_base + dst,
                    rv: match rv {
                        Rvalue::Use(a) => Rvalue::Use(remap_op(a)),
                        Rvalue::BinOp(op, a, b) => Rvalue::BinOp(*op, remap_op(a), remap_op(b)),
                        Rvalue::Shift(k, a, amt) => Rvalue::Shift(*k, remap_op(a), *amt),
                        Rvalue::Cmp(op, a, b) => Rvalue::Cmp(*op, remap_op(a), remap_op(b)),
                        Rvalue::LoadGlobal { global, index } => Rvalue::LoadGlobal {
                            global: global.clone(),
                            index: remap_op(index),
                        },
                        Rvalue::FuncAddr(n) => Rvalue::FuncAddr(n.clone()),
                    },
                    line: *line,
                },
                Stmt::StoreGlobal {
                    global,
                    index,
                    value,
                    line,
                } => Stmt::StoreGlobal {
                    global: global.clone(),
                    index: remap_op(index),
                    value: remap_op(value),
                    line: *line,
                },
                Stmt::Call {
                    dst,
                    callee,
                    args,
                    landing_pad,
                    line,
                } => Stmt::Call {
                    dst: dst.map(|d| local_base + d),
                    callee: match callee {
                        Callee::Direct(n) => Callee::Direct(n.clone()),
                        Callee::Indirect(p) => Callee::Indirect(remap_op(p)),
                    },
                    args: args.iter().map(&remap_op).collect(),
                    landing_pad: landing_pad.map(remap_block),
                    line: *line,
                },
                Stmt::Emit { value, line } => Stmt::Emit {
                    value: remap_op(value),
                    line: *line,
                },
            });
        }
        let (term, term_line) = match &cb.term {
            Terminator::Return(v) => {
                let mut ret_stmts = Vec::new();
                if let Some(d) = dst {
                    ret_stmts.push(Stmt::Assign {
                        dst: d,
                        rv: Rvalue::Use(remap_op(v)),
                        line: cb.term_line,
                    });
                }
                stmts.extend(ret_stmts);
                (Terminator::Goto(cont_id), cb.term_line)
            }
            other => {
                let mut t = other.clone();
                t.remap(remap_block);
                // Remap terminator operands into the caller's local space.
                match &mut t {
                    Terminator::Branch { cond, .. } => *cond = remap_op(cond),
                    Terminator::Switch { scrut, .. } => *scrut = remap_op(scrut),
                    _ => {}
                }
                (t, cb.term_line)
            }
        };
        caller.blocks.push(MirBlock {
            stmts,
            term,
            term_line,
        });
    }
    caller.blocks.push(cont);

    // Layout: insert the inlined blocks then the continuation right after
    // the call block.
    let pos = caller
        .layout
        .iter()
        .position(|b| *b == block)
        .expect("call block is live");
    let mut insert: Vec<MirBlockId> = callee
        .layout
        .iter()
        .map(|b| MirBlockId(block_base + b.0))
        .collect();
    insert.push(cont_id);
    caller.layout.splice(pos + 1..pos + 1, insert);
}

/// Statistics from an inlining run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InlineStats {
    pub sites_inlined: usize,
    pub rounds: usize,
}

/// Runs the inliner over the whole program.
pub fn run_inlining(program: &mut MirProgram, opts: &CompileOptions) -> InlineStats {
    let mut stats = InlineStats::default();
    if opts.opt_level == 0 {
        return stats;
    }
    for round in 0..MAX_ROUNDS {
        let snapshot: HashMap<String, MirFunction> = program
            .functions
            .iter()
            .map(|f| (f.name.clone(), f.clone()))
            .collect();
        let mut any = false;
        for func in &mut program.functions {
            // Find one inlinable site at a time (indices shift after each
            // splice).
            loop {
                let mut site = None;
                'scan: for &bb in &func.layout {
                    for (si, s) in func.blocks[bb.index()].stmts.iter().enumerate() {
                        if let Stmt::Call {
                            callee: Callee::Direct(name),
                            landing_pad: None,
                            line,
                            ..
                        } = s
                        {
                            if *name == func.name {
                                continue;
                            }
                            let Some(callee) = snapshot.get(name) else {
                                continue;
                            };
                            if inlinable(callee) && should_inline(func, callee, *line, opts) {
                                site = Some((bb, si, name.clone()));
                                break 'scan;
                            }
                        }
                    }
                }
                let Some((bb, si, name)) = site else { break };
                inline_at(func, bb, si, &snapshot[&name]);
                stats.sites_inlined += 1;
                any = true;
            }
        }
        stats.rounds = round + 1;
        if !any {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::mir::{BinOp, CmpOp, Interp};

    /// foo(x) = x>0 ? 1 : 2, inline-hinted; bar() = foo(5); baz() = foo(-5).
    fn figure2_program() -> MirProgram {
        let mut p = MirProgram::with_entry("main");
        let mut foo = FunctionBuilder::new("foo", 0, "foo.c", 1);
        foo.inline_hint();
        let c = foo.assign_cmp(CmpOp::Gt, Operand::Local(0), Operand::Const(0));
        let (t, e) = foo.branch(Operand::Local(c));
        foo.switch_to(t);
        foo.ret(Operand::Const(1));
        foo.switch_to(e);
        foo.ret(Operand::Const(2));
        p.add_function(foo.finish());

        let mut bar = FunctionBuilder::new("bar", 1, "bar.c", 0);
        let r = bar.call("foo", vec![Operand::Const(5)]);
        bar.ret(Operand::Local(r));
        p.add_function(bar.finish());

        let mut baz = FunctionBuilder::new("baz", 2, "baz.c", 0);
        let r = baz.call("foo", vec![Operand::Const(-5)]);
        baz.ret(Operand::Local(r));
        p.add_function(baz.finish());

        let mut main = FunctionBuilder::new("main", 3, "main.c", 0);
        let a = main.call("bar", vec![]);
        let b = main.call("baz", vec![]);
        let s = main.assign(Rvalue::BinOp(
            BinOp::Add,
            Operand::Local(a),
            Operand::Local(b),
        ));
        main.emit(Operand::Local(s));
        main.ret(Operand::Local(s));
        p.add_function(main.finish());
        p.validate().unwrap();
        p
    }

    #[test]
    fn inlining_preserves_semantics() {
        let mut p = figure2_program();
        let (r_before, out_before) = {
            let mut before = Interp::new(&p, 100_000);
            let r = before.run(&[]).unwrap();
            (r, before.output.clone())
        };

        let opts = CompileOptions {
            lto: true,
            ..CompileOptions::default()
        };
        let stats = run_inlining(&mut p, &opts);
        assert!(stats.sites_inlined >= 2, "foo inlined into bar and baz");
        p.validate().unwrap();

        let mut after = Interp::new(&p, 100_000);
        let r_after = after.run(&[]).unwrap();
        assert_eq!(r_before, r_after);
        assert_eq!(out_before, after.output);
        assert_eq!(r_after, 3);
    }

    #[test]
    fn inlined_copies_share_lines() {
        let mut p = figure2_program();
        let opts = CompileOptions {
            lto: true,
            ..CompileOptions::default()
        };
        run_inlining(&mut p, &opts);
        // The branch line of foo must now appear in both bar and baz.
        let foo_branch_line = p.function("foo").unwrap().blocks[0].term_line;
        for name in ["bar", "baz"] {
            let f = p.function(name).unwrap();
            let has_line = f.blocks.iter().any(|b| b.term_line == foo_branch_line);
            assert!(has_line, "{name} contains foo's branch line (Figure 2)");
        }
    }

    #[test]
    fn lto_gates_cross_module_inlining() {
        let mut p = figure2_program();
        let no_lto = CompileOptions {
            lto: false,
            ..CompileOptions::default()
        };
        // foo is in module 0; bar/baz in modules 1/2: nothing to inline
        // without LTO (bar/baz calls are cross-module; main's calls target
        // non-tiny, non-hinted functions).
        let stats = run_inlining(&mut p, &no_lto);
        assert_eq!(stats.sites_inlined, 0);
    }

    #[test]
    fn recursive_functions_not_inlined() {
        let mut p = MirProgram::with_entry("rec");
        let mut rec = FunctionBuilder::new("rec", 0, "r.c", 1);
        rec.inline_hint();
        let c = rec.assign_cmp(CmpOp::Le, Operand::Local(0), Operand::Const(0));
        let (base, go) = rec.branch(Operand::Local(c));
        rec.switch_to(base);
        rec.ret(Operand::Const(0));
        rec.switch_to(go);
        let n1 = rec.assign(Rvalue::BinOp(
            BinOp::Sub,
            Operand::Local(0),
            Operand::Const(1),
        ));
        let r = rec.call("rec", vec![Operand::Local(n1)]);
        rec.ret(Operand::Local(r));
        p.add_function(rec.finish());

        let mut main = FunctionBuilder::new("main", 0, "m.c", 0);
        let r = main.call("rec", vec![Operand::Const(3)]);
        main.ret(Operand::Local(r));
        p.add_function(main.finish());
        p.entry = "main".into();
        p.validate().unwrap();

        let mut q = p.clone();
        let stats = run_inlining(&mut q, &CompileOptions::default());
        assert_eq!(stats.sites_inlined, 0, "recursive callee skipped");
    }
}
