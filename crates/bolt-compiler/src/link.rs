//! The linker: lowers every function, lays out data, synthesizes the
//! runtime (`_start`, `__bolt_emit`, `__bolt_exit`) and PLT/GOT, emits the
//! code with relaxation, and produces a loadable ELF executable.

use crate::codegen::{codegen_function, is_external, JumpTableReq, Labels, RT_EMIT, RT_EXIT};
use crate::inline::run_inlining;
use crate::mir::MirProgram;
use crate::options::CompileOptions;
use crate::pgo::pgo_layout;
use bolt_elf::{reloc, Elf, Rela, Section, SymBind, SymKind, SymSection, Symbol};
use bolt_ir::{emit_units, EmitBlock, EmitError, EmitInst, EmitUnit, ExceptionTable, LineTable};
use bolt_isa::{AluOp, FixupKind, Inst, JumpWidth, Label, Mem, Reg, Rm, Target};
use std::collections::HashMap;
use std::fmt;

/// Link-time virtual address bases.
pub const TEXT_BASE: u64 = 0x40_0000;
/// Cold-code base (used by BOLT's split functions; empty in compiler
/// output).
pub const COLD_BASE: u64 = 0x200_0000;
pub const RODATA_BASE: u64 = 0x400_0000;
pub const DATA_BASE: u64 = 0x500_0000;
pub const GOT_BASE: u64 = 0x5F0_0000;

/// Errors from compilation/linking.
#[derive(Debug)]
pub enum CompileError {
    /// The MIR failed validation.
    InvalidMir(String),
    /// Emission failed.
    Emit(EmitError),
    /// ELF serialization failed.
    Elf(bolt_elf::ElfError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidMir(m) => write!(f, "invalid MIR: {m}"),
            CompileError::Emit(e) => write!(f, "emit error: {e}"),
            CompileError::Elf(e) => write!(f, "elf error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<EmitError> for CompileError {
    fn from(e: EmitError) -> CompileError {
        CompileError::Emit(e)
    }
}

impl From<bolt_elf::ElfError> for CompileError {
    fn from(e: bolt_elf::ElfError) -> CompileError {
        CompileError::Elf(e)
    }
}

/// The product of [`compile_and_link`].
#[derive(Debug)]
pub struct CompiledBinary {
    pub elf: Elf,
    /// Resolved code-label addresses (for tests and the profiler).
    pub label_addrs: HashMap<Label, u64>,
    /// The MIR program after compiler transformations (inlining, layout) —
    /// what debug info describes.
    pub transformed: MirProgram,
}

/// Builds the `_start` unit: calls `main`, passes its result to the exit
/// runtime call.
fn make_start(labels: &mut Labels, opts: &CompileOptions, entry_fn: &str) -> EmitUnit {
    let start_label = labels.func("_start");
    let main_label = labels.func(entry_fn);
    let exit_target = if opts.plt {
        labels.plt(RT_EXIT)
    } else {
        labels.func(RT_EXIT)
    };
    let mut b = EmitBlock::new(start_label);
    b.insts.push(EmitInst::new(Inst::Call {
        target: Target::Label(main_label),
    }));
    b.insts.push(EmitInst::new(Inst::MovRR {
        dst: Reg::Rdi,
        src: Reg::Rax,
    }));
    b.insts.push(EmitInst::new(Inst::Call {
        target: Target::Label(exit_target),
    }));
    b.insts.push(EmitInst::new(Inst::Ud2));
    let mut u = EmitUnit::new("_start");
    u.blocks = vec![b];
    u
}

/// Builds the runtime functions.
fn make_runtime(labels: &mut Labels) -> Vec<EmitUnit> {
    // __bolt_emit(rdi): syscall 1, returns.
    let emit_label = labels.func(RT_EMIT);
    let mut b = EmitBlock::new(emit_label);
    b.insts.push(EmitInst::new(Inst::MovRI {
        dst: Reg::Rax,
        imm: 1,
    }));
    b.insts.push(EmitInst::new(Inst::Syscall));
    b.insts.push(EmitInst::new(Inst::Ret));
    let mut emit_unit = EmitUnit::new(RT_EMIT);
    emit_unit.blocks = vec![b];

    // __bolt_exit(rdi): syscall 60, never returns.
    let exit_label = labels.func(RT_EXIT);
    let mut b = EmitBlock::new(exit_label);
    b.insts.push(EmitInst::new(Inst::MovRI {
        dst: Reg::Rax,
        imm: 60,
    }));
    b.insts.push(EmitInst::new(Inst::Syscall));
    b.insts.push(EmitInst::new(Inst::Ud2));
    let mut exit_unit = EmitUnit::new(RT_EXIT);
    exit_unit.blocks = vec![b];

    vec![emit_unit, exit_unit]
}

/// Builds one PLT stub: `jmp *got_slot(%rip)`.
fn make_plt_stub(name: &str, stub: Label, got: Label) -> EmitUnit {
    let mut b = EmitBlock::new(stub);
    b.insts.push(EmitInst::new(Inst::JmpInd {
        rm: Rm::Mem(Mem::rip(got)),
    }));
    let mut u = EmitUnit::new(format!("__plt_{name}"));
    u.align = 16;
    u.blocks = vec![b];
    u
}

/// Compiles a MIR program into an ELF executable.
///
/// # Errors
///
/// Returns an error when the program fails validation or when emission
/// produces inconsistent references (both indicate bugs in the caller).
pub fn compile_and_link(
    program: &MirProgram,
    opts: &CompileOptions,
) -> Result<CompiledBinary, CompileError> {
    program.validate().map_err(CompileError::InvalidMir)?;
    let mut program = program.clone();

    // Compiler optimizations: inlining then PGO block layout.
    run_inlining(&mut program, opts);
    if let Some(profile) = &opts.pgo {
        for f in &mut program.functions {
            pgo_layout(f, profile);
        }
    }
    program.validate().map_err(CompileError::InvalidMir)?;

    let mut labels = Labels::new();

    // Lower program functions in the requested order. Under PGO without
    // an explicit order, model -freorder-functions: hot functions first by
    // aggregated line heat (the compile-time analogue of HFSort's goal).
    let pgo_order: Option<Vec<String>> = match (&opts.function_order, &opts.pgo) {
        (None, Some(profile)) => {
            let mut scored: Vec<(u64, usize)> = program
                .functions
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    let heat = f
                        .blocks
                        .iter()
                        .flat_map(|b| b.stmts.iter().map(|s| s.line()).chain([b.term_line]))
                        .map(|l| profile.line(l))
                        .max()
                        .unwrap_or(0);
                    (heat, i)
                })
                .collect();
            scored.sort_by_key(|&(heat, i)| (std::cmp::Reverse(heat), i));
            Some(
                scored
                    .into_iter()
                    .map(|(_, i)| program.functions[i].name.clone())
                    .collect(),
            )
        }
        _ => None,
    };
    let explicit_order = opts.function_order.clone().or(pgo_order);
    let order: Vec<String> = match &explicit_order {
        Some(order) => {
            let mut o: Vec<String> = order
                .iter()
                .filter(|n| program.function(n).is_some())
                .cloned()
                .collect();
            for f in &program.functions {
                if !o.contains(&f.name) {
                    o.push(f.name.clone());
                }
            }
            o
        }
        None => program.functions.iter().map(|f| f.name.clone()).collect(),
    };

    let mut units: Vec<EmitUnit> = Vec::new();
    let mut jump_tables: Vec<JumpTableReq> = Vec::new();
    let mut gen_units: Vec<EmitUnit> = Vec::new();
    for name in &order {
        let func = program.function(name).expect("ordered name exists");
        let gen = codegen_function(func, &program, &mut labels, opts);
        gen_units.push(gen.unit);
        jump_tables.extend(gen.jump_tables);
    }

    // Runtime + _start (synthesized after program codegen so PLT demand is
    // known).
    let start_unit = make_start(&mut labels, &Default::default(), &program.entry);
    let _ = &start_unit;
    // NOTE: make_start takes options for PLT routing; pass the real ones.
    let start_unit = {
        let mut l = EmitUnit::new("_start");
        l.blocks = make_start_blocks(&mut labels, opts, &program.entry);
        l
    };
    let runtime_units = make_runtime(&mut labels);

    // PLT stubs for every external referenced through the PLT.
    let plt_pairs: Vec<(String, Label)> = labels.iter_plt().map(|(n, l)| (n.clone(), l)).collect();
    let mut plt_units = Vec::new();
    for (name, stub) in &plt_pairs {
        let got = labels.got(name);
        plt_units.push(make_plt_stub(name, *stub, got));
    }

    units.push(start_unit);
    units.extend(plt_units);
    units.extend(runtime_units);
    units.extend(gen_units);

    // ---- Data layout ----
    let mut rodata = Vec::new();
    let mut data = Vec::new();
    let mut data_symbols: Vec<(String, u64, u64)> = Vec::new(); // (name, addr, size)
    let mut extern_labels: HashMap<Label, u64> = HashMap::new();
    let mut global_addrs: HashMap<String, u64> = HashMap::new();

    for g in &program.globals {
        let (buf, base) = if g.mutable {
            (&mut data, DATA_BASE)
        } else {
            (&mut rodata, RODATA_BASE)
        };
        // Align to 16.
        while buf.len() % 16 != 0 {
            buf.push(0);
        }
        let addr = base + buf.len() as u64;
        for w in &g.words {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        global_addrs.insert(g.name.clone(), addr);
        data_symbols.push((g.name.clone(), addr, 8 * g.words.len() as u64));
    }
    // Jump tables go to rodata after the globals.
    let mut jt_offsets: Vec<(usize, u64)> = Vec::new(); // (jt index, addr)
    for (i, jt) in jump_tables.iter().enumerate() {
        while rodata.len() % 8 != 0 {
            rodata.push(0);
        }
        let addr = RODATA_BASE + rodata.len() as u64;
        rodata.extend(std::iter::repeat_n(0u8, 8 * jt.targets.len()));
        extern_labels.insert(jt.table, addr);
        jt_offsets.push((i, addr));
        data_symbols.push((jt.name.clone(), addr, 8 * jt.targets.len() as u64));
    }
    // GOT: one slot per external.
    let mut got = Vec::new();
    let got_pairs: Vec<(String, Label)> = labels.iter_got().map(|(n, l)| (n.clone(), l)).collect();
    let mut got_slots: Vec<(String, u64)> = Vec::new();
    for (name, label) in &got_pairs {
        let addr = GOT_BASE + got.len() as u64;
        got.extend_from_slice(&0u64.to_le_bytes());
        extern_labels.insert(*label, addr);
        got_slots.push((name.clone(), addr));
    }

    // Resolve global labels.
    for (name, label) in labels.iter_globals() {
        extern_labels.insert(label, global_addrs[name]);
    }
    for ((name, idx), label) in labels.iter_global_words() {
        extern_labels.insert(label, global_addrs[name] + 8 * idx);
    }

    // ---- Emit code ----
    let result = emit_units(&units, TEXT_BASE, COLD_BASE, &extern_labels)?;

    // Patch jump tables with resolved block addresses.
    for (jti, addr) in &jt_offsets {
        let jt = &jump_tables[*jti];
        for (k, target) in jt.targets.iter().enumerate() {
            let a = result.label_addrs[target];
            let off = (*addr - RODATA_BASE) as usize + 8 * k;
            rodata[off..off + 8].copy_from_slice(&a.to_le_bytes());
        }
    }
    // Patch GOT slots with resolved function addresses.
    for (i, (name, _)) in got_slots.iter().enumerate() {
        let fl = labels.func(name);
        let a = result.label_addrs[&fl];
        got[8 * i..8 * i + 8].copy_from_slice(&a.to_le_bytes());
    }

    // ---- Metadata tables ----
    let mut lines = LineTable::new();
    for f in &program.files {
        lines.intern_file(f);
    }
    for (addr, li) in &result.line_entries {
        lines.push(*addr, li.file, li.line);
    }
    lines.normalize();

    let mut eh = ExceptionTable::new();
    for (call_addr, pad_label) in &result.eh_entries {
        eh.add(*call_addr, result.label_addrs[pad_label]);
    }

    // ---- Assemble the ELF ----
    let entry = result.label_addrs[&labels.func("_start")];
    let mut elf = Elf::new(entry);
    elf.sections
        .push(Section::code(".text", TEXT_BASE, result.text.clone()));
    let text_idx = 0usize;
    if !result.cold.is_empty() {
        elf.sections
            .push(Section::code(".text.cold", COLD_BASE, result.cold.clone()));
    }
    let rodata_idx = elf.sections.len();
    elf.sections
        .push(Section::rodata(".rodata", RODATA_BASE, rodata));
    let data_idx = elf.sections.len();
    elf.sections.push(Section::data(".data", DATA_BASE, data));
    let got_idx = elf.sections.len();
    elf.sections.push(Section::data(".got", GOT_BASE, got));
    elf.sections
        .push(Section::metadata(".bolt.lines", lines.to_bytes()));
    elf.sections
        .push(Section::metadata(".bolt.eh", eh.to_bytes()));

    // Symbols: functions (from emission), then data objects.
    for s in &result.symbols {
        elf.symbols.push(Symbol {
            name: s.name.clone(),
            value: s.addr,
            size: s.size,
            kind: SymKind::Func,
            bind: SymBind::Global,
            section: SymSection::Section(text_idx),
        });
    }
    for (name, addr, size) in &data_symbols {
        let (kind_idx, _) = if *addr >= DATA_BASE {
            (data_idx, ())
        } else {
            (rodata_idx, ())
        };
        elf.symbols.push(Symbol {
            name: name.clone(),
            value: *addr,
            size: *size,
            kind: SymKind::Object,
            bind: SymBind::Global,
            section: SymSection::Section(kind_idx),
        });
    }
    for (name, addr) in &got_slots {
        elf.symbols.push(Symbol {
            name: format!("__got_{name}"),
            value: *addr,
            size: 8,
            kind: SymKind::Object,
            bind: SymBind::Global,
            section: SymSection::Section(got_idx),
        });
    }

    // Relocations (--emit-relocs): map each applied fixup back to a
    // symbol + addend.
    if opts.emit_relocs {
        // Sorted symbol spans for address->symbol search.
        let mut spans: Vec<(u64, u64, u32)> = elf
            .symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (s.value, s.size.max(1), i as u32))
            .collect();
        spans.sort_unstable();
        let find = |addr: u64| -> Option<(u32, i64)> {
            let i = spans.partition_point(|(start, _, _)| *start <= addr);
            if i == 0 {
                return None;
            }
            let (start, size, idx) = spans[i - 1];
            if addr < start + size {
                Some((idx, (addr - start) as i64))
            } else {
                None
            }
        };
        for r in &result.relocs {
            let target_addr = result
                .label_addrs
                .get(&r.label)
                .or_else(|| extern_labels.get(&r.label));
            let Some(&target_addr) = target_addr else {
                continue;
            };
            let Some((sym_index, addend)) = find(target_addr) else {
                continue;
            };
            let rtype = match r.kind {
                FixupKind::Abs64 => reloc::R_X86_64_64,
                FixupKind::Rel32 | FixupKind::Rel8 => reloc::R_X86_64_PC32,
            };
            elf.relocations.push(Rela {
                offset: r.at,
                sym_index,
                rtype,
                addend,
            });
        }
    }

    Ok(CompiledBinary {
        elf,
        label_addrs: result.label_addrs,
        transformed: program,
    })
}

/// Blocks of the `_start` unit (see [`make_start`]); split out so option
/// routing is testable.
fn make_start_blocks(labels: &mut Labels, opts: &CompileOptions, entry_fn: &str) -> Vec<EmitBlock> {
    let start_label = labels.func("_start");
    let main_label = labels.func(entry_fn);
    let exit_target = if opts.plt {
        labels.plt(RT_EXIT)
    } else {
        labels.func(RT_EXIT)
    };
    let mut b = EmitBlock::new(start_label);
    // Align the stack and call main.
    b.insts.push(EmitInst::new(Inst::AluI {
        op: AluOp::Sub,
        dst: Reg::Rsp,
        imm: 8,
    }));
    b.insts.push(EmitInst::new(Inst::Call {
        target: Target::Label(main_label),
    }));
    b.insts.push(EmitInst::new(Inst::MovRR {
        dst: Reg::Rdi,
        src: Reg::Rax,
    }));
    b.insts.push(EmitInst::new(Inst::Call {
        target: Target::Label(exit_target),
    }));
    b.insts.push(EmitInst::new(Inst::Ud2));
    vec![b]
}

// Keep `is_external` and JumpWidth referenced (used by BOLT-side crates
// through this module's re-exports in integration scenarios).
const _: fn(&str) -> bool = is_external;
const _: JumpWidth = JumpWidth::Near;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::mir::{BinOp, CmpOp, Interp, Operand, Rvalue};
    use bolt_emu::{Exit, Machine, NullSink};

    /// Builds a program exercising branches, loops, calls, globals, jump
    /// tables, and output.
    fn kitchen_sink() -> MirProgram {
        let mut p = MirProgram::with_entry("main");
        p.globals.push(crate::mir::Global {
            name: "weights".into(),
            words: vec![3, 1, 4, 1, 5, 9, 2, 6],
            mutable: false,
        });
        p.globals.push(crate::mir::Global {
            name: "state".into(),
            words: vec![0; 4],
            mutable: true,
        });

        // classify(x) = switch(x & 3): 0->10, 1->11, 2->12, default->-1
        let mut cl = FunctionBuilder::new("classify", 0, "classify.c", 1);
        let masked = cl.assign(Rvalue::BinOp(
            BinOp::And,
            Operand::Local(0),
            Operand::Const(3),
        ));
        let arms = cl.switch(Operand::Local(masked), 3);
        for (i, arm) in arms.targets.clone().iter().enumerate() {
            cl.switch_to(*arm);
            cl.ret(Operand::Const(10 + i as i64));
        }
        cl.switch_to(arms.default);
        cl.ret(Operand::Const(-1));
        p.add_function(cl.finish());

        // weigh(i) = weights[i & 7]
        let mut w = FunctionBuilder::new("weigh", 0, "weigh.c", 1);
        let idx = w.assign(Rvalue::BinOp(
            BinOp::And,
            Operand::Local(0),
            Operand::Const(7),
        ));
        let v = w.assign(Rvalue::LoadGlobal {
            global: "weights".into(),
            index: Operand::Local(idx),
        });
        w.ret(Operand::Local(v));
        p.add_function(w.finish());

        // main: loop i in 0..20 { s += classify(i) * weigh(i) }, store to
        // state[0], emit, return s & 0xFF.
        let mut m = FunctionBuilder::new("main", 1, "main.c", 0);
        let s = m.new_local();
        let i = m.new_local();
        m.assign_to(s, Rvalue::Use(Operand::Const(0)));
        m.assign_to(i, Rvalue::Use(Operand::Const(0)));
        let head = m.goto_new();
        m.switch_to(head);
        let c = m.assign_cmp(CmpOp::Lt, Operand::Local(i), Operand::Const(20));
        let (body, done) = m.branch(Operand::Local(c));
        m.switch_to(body);
        let a = m.call("classify", vec![Operand::Local(i)]);
        let b = m.call("weigh", vec![Operand::Local(i)]);
        let prod = m.assign(Rvalue::BinOp(
            BinOp::Mul,
            Operand::Local(a),
            Operand::Local(b),
        ));
        m.assign_to(
            s,
            Rvalue::BinOp(BinOp::Add, Operand::Local(s), Operand::Local(prod)),
        );
        m.assign_to(
            i,
            Rvalue::BinOp(BinOp::Add, Operand::Local(i), Operand::Const(1)),
        );
        m.goto(head);
        m.switch_to(done);
        m.push_stmt(crate::mir::Stmt::StoreGlobal {
            global: "state".into(),
            index: Operand::Const(0),
            value: Operand::Local(s),
            line: 0,
        });
        let back = m.assign(Rvalue::LoadGlobal {
            global: "state".into(),
            index: Operand::Const(0),
        });
        m.emit(Operand::Local(back));
        let masked = m.assign(Rvalue::BinOp(
            BinOp::And,
            Operand::Local(back),
            Operand::Const(0xFF),
        ));
        m.ret(Operand::Local(masked));
        p.add_function(m.finish());
        p.validate().unwrap();
        p
    }

    fn run_compiled(p: &MirProgram, opts: &CompileOptions) -> (i64, Vec<i64>) {
        let bin = compile_and_link(p, opts).expect("compile");
        let mut m = Machine::new();
        m.load_elf(&bin.elf);
        let r = m.run(&mut NullSink, 10_000_000).expect("run");
        let Exit::Exited(code) = r.exit else {
            panic!("program did not exit: {:?}", r.exit);
        };
        (code, m.output)
    }

    #[test]
    fn compiled_binary_matches_interpreter() {
        let p = kitchen_sink();
        let mut interp = Interp::new(&p, 1_000_000);
        let expected = interp.run(&[]).unwrap();

        for opts in [
            CompileOptions::default(),
            CompileOptions {
                opt_level: 0,
                ..CompileOptions::default()
            },
            CompileOptions {
                opt_level: 1,
                ..CompileOptions::default()
            },
            CompileOptions {
                legacy_amd: true,
                ..CompileOptions::default()
            },
            CompileOptions {
                plt: false,
                ..CompileOptions::default()
            },
            CompileOptions {
                align_blocks: false,
                ..CompileOptions::default()
            },
            CompileOptions {
                lto: true,
                emit_relocs: true,
                ..CompileOptions::default()
            },
        ] {
            let (code, output) = run_compiled(&p, &opts);
            assert_eq!(code, expected, "exit code under {opts:?}");
            assert_eq!(output, interp.output, "output under {opts:?}");
        }
    }

    #[test]
    fn emit_relocs_produces_relocations() {
        let p = kitchen_sink();
        let opts = CompileOptions {
            emit_relocs: true,
            ..CompileOptions::default()
        };
        let bin = compile_and_link(&p, &opts).unwrap();
        assert!(
            !bin.elf.relocations.is_empty(),
            "--emit-relocs records relocations"
        );
        let no_relocs = compile_and_link(&p, &CompileOptions::default()).unwrap();
        assert!(no_relocs.elf.relocations.is_empty());
    }

    #[test]
    fn function_order_is_respected() {
        let p = kitchen_sink();
        let opts = CompileOptions {
            function_order: Some(vec!["main".into(), "weigh".into(), "classify".into()]),
            ..CompileOptions::default()
        };
        let bin = compile_and_link(&p, &opts).unwrap();
        let addr = |n: &str| bin.elf.symbol(n).unwrap().value;
        assert!(addr("main") < addr("weigh"));
        assert!(addr("weigh") < addr("classify"));
        // And execution still works.
        let mut m = Machine::new();
        m.load_elf(&bin.elf);
        let r = m.run(&mut NullSink, 10_000_000).unwrap();
        assert!(matches!(r.exit, Exit::Exited(_)));
    }

    #[test]
    fn metadata_sections_present_and_parse() {
        let p = kitchen_sink();
        let bin = compile_and_link(&p, &CompileOptions::default()).unwrap();
        let lines = LineTable::from_bytes(&bin.elf.section(".bolt.lines").unwrap().data).unwrap();
        assert!(!lines.entries.is_empty());
        assert!(lines.files.iter().any(|f| f == "main.c"));
        let eh = ExceptionTable::from_bytes(&bin.elf.section(".bolt.eh").unwrap().data).unwrap();
        // kitchen_sink has no landing pads.
        assert!(eh.entries.is_empty());
    }

    #[test]
    fn plt_stubs_and_got_exist() {
        let p = kitchen_sink();
        let bin = compile_and_link(&p, &CompileOptions::default()).unwrap();
        assert!(bin.elf.symbol("__plt___bolt_emit").is_some());
        assert!(bin.elf.symbol("__got___bolt_emit").is_some());
        // The GOT slot holds the runtime function's address.
        let got = bin.elf.symbol("__got___bolt_emit").unwrap().value;
        let target = bin.elf.read_u64(got).unwrap();
        assert_eq!(target, bin.elf.symbol(RT_EMIT).unwrap().value);
    }
}
