//! Compilation options: the knobs the paper's evaluation varies
//! (section 6.2: baseline, PGO, LTO, and combinations).

use crate::pgo::SourceProfile;

/// Options controlling the compiler substrate.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// 0 = naive, 1 = hint-driven inlining, 2 = aggressive inlining +
    /// tail calls + better scratch allocation.
    pub opt_level: u8,
    /// Allow cross-module inlining (link-time optimization).
    pub lto: bool,
    /// Profile-guided optimization: source-level profile used for hot-call
    /// inlining and block layout (the AutoFDO-style path whose inline-copy
    /// aggregation loss is paper Figure 2).
    pub pgo: Option<SourceProfile>,
    /// Route external (runtime) calls through PLT stubs.
    pub plt: bool,
    /// Record relocations in the output (`--emit-relocs`), enabling BOLT's
    /// relocations mode (paper section 3.2).
    pub emit_relocs: bool,
    /// Emit `repz ret` instead of `ret` (legacy-AMD workaround stripped by
    /// BOLT's `strip-rep-ret`, Table 1 pass 1).
    pub legacy_amd: bool,
    /// Align loop headers to 16 bytes with NOP padding (discarded by BOLT,
    /// paper section 4).
    pub align_blocks: bool,
    /// Explicit function order for the linker (e.g. produced by HFSort) —
    /// the link-time layout baseline of paper section 6.1.
    pub function_order: Option<Vec<String>>,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            opt_level: 2,
            lto: false,
            pgo: None,
            plt: true,
            emit_relocs: false,
            legacy_amd: false,
            align_blocks: true,
            function_order: None,
        }
    }
}

impl CompileOptions {
    /// The paper's baseline configuration (plain `-O2` build).
    pub fn baseline() -> CompileOptions {
        CompileOptions::default()
    }

    /// `-O2` + PGO.
    pub fn pgo(profile: SourceProfile) -> CompileOptions {
        CompileOptions {
            pgo: Some(profile),
            ..CompileOptions::default()
        }
    }

    /// `-O2` + PGO + LTO.
    pub fn pgo_lto(profile: SourceProfile) -> CompileOptions {
        CompileOptions {
            pgo: Some(profile),
            lto: true,
            ..CompileOptions::default()
        }
    }
}
