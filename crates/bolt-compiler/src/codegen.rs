//! MIR → machine-code lowering.
//!
//! The generated code is deliberately "honest compiler output": stack-slot
//! locals, alignment NOPs before loop headers, PLT indirection for runtime
//! calls, absolute-address jump tables in `.rodata`, and (optionally)
//! `repz ret` returns — i.e. all the artifacts the BOLT passes of paper
//! Table 1 exist to optimize.

use crate::mir::{
    BinOp, Callee, CmpOp, MirBlockId, MirFunction, MirProgram, Operand, Rvalue, ShiftKind, Stmt,
    Terminator,
};
use crate::options::CompileOptions;
use bolt_ir::{EmitBlock, EmitInst, EmitUnit, LineInfo};
use bolt_isa::{AluOp, Cond, Inst, JumpWidth, Label, Mem, Reg, Rm, ShiftOp, Target};
use std::collections::BTreeMap;

/// Global label allocator shared by code generation and linking.
///
/// Keeps deterministic (sorted) maps from symbol names to labels so builds
/// are bit-reproducible.
#[derive(Debug, Default)]
pub struct Labels {
    next: u32,
    funcs: BTreeMap<String, Label>,
    plt: BTreeMap<String, Label>,
    got: BTreeMap<String, Label>,
    globals: BTreeMap<String, Label>,
    global_words: BTreeMap<(String, u64), Label>,
}

impl Labels {
    pub fn new() -> Labels {
        Labels::default()
    }

    /// Allocates a fresh anonymous label.
    pub fn fresh(&mut self) -> Label {
        let l = Label(self.next);
        self.next += 1;
        l
    }

    /// The entry label of a function.
    pub fn func(&mut self, name: &str) -> Label {
        if let Some(l) = self.funcs.get(name) {
            return *l;
        }
        let l = self.fresh();
        self.funcs.insert(name.to_string(), l);
        l
    }

    /// The PLT stub label for an external function.
    pub fn plt(&mut self, name: &str) -> Label {
        if let Some(l) = self.plt.get(name) {
            return *l;
        }
        let l = self.fresh();
        self.plt.insert(name.to_string(), l);
        l
    }

    /// The GOT slot label for an external function.
    pub fn got(&mut self, name: &str) -> Label {
        if let Some(l) = self.got.get(name) {
            return *l;
        }
        let l = self.fresh();
        self.got.insert(name.to_string(), l);
        l
    }

    /// The base label of a global.
    pub fn global(&mut self, name: &str) -> Label {
        if let Some(l) = self.globals.get(name) {
            return *l;
        }
        let l = self.fresh();
        self.globals.insert(name.to_string(), l);
        l
    }

    /// The label of one word within a global (`global + 8*index`).
    pub fn global_word(&mut self, name: &str, index: u64) -> Label {
        if let Some(l) = self.global_words.get(&(name.to_string(), index)) {
            return *l;
        }
        let l = self.fresh();
        self.global_words.insert((name.to_string(), index), l);
        l
    }

    pub fn iter_funcs(&self) -> impl Iterator<Item = (&String, Label)> {
        self.funcs.iter().map(|(n, l)| (n, *l))
    }

    pub fn iter_plt(&self) -> impl Iterator<Item = (&String, Label)> {
        self.plt.iter().map(|(n, l)| (n, *l))
    }

    pub fn iter_got(&self) -> impl Iterator<Item = (&String, Label)> {
        self.got.iter().map(|(n, l)| (n, *l))
    }

    pub fn iter_globals(&self) -> impl Iterator<Item = (&String, Label)> {
        self.globals.iter().map(|(n, l)| (n, *l))
    }

    pub fn iter_global_words(&self) -> impl Iterator<Item = (&(String, u64), Label)> {
        self.global_words.iter().map(|(k, l)| (k, *l))
    }
}

/// A jump table produced by lowering a `Switch`.
#[derive(Debug, Clone)]
pub struct JumpTableReq {
    /// Label of the table itself (placed in `.rodata`).
    pub table: Label,
    /// Entry labels (block labels), 8 bytes each, absolute.
    pub targets: Vec<Label>,
    /// Name for the table's data symbol.
    pub name: String,
}

/// The result of lowering one function.
#[derive(Debug)]
pub struct GenFunction {
    pub unit: EmitUnit,
    pub jump_tables: Vec<JumpTableReq>,
}

/// Names of the synthetic runtime functions.
pub const RT_EMIT: &str = "__bolt_emit";
pub const RT_EXIT: &str = "__bolt_exit";

/// Whether calls to this callee go through the PLT (external linkage).
pub fn is_external(name: &str) -> bool {
    name == RT_EMIT || name == RT_EXIT
}

struct Gen<'a> {
    func: &'a MirFunction,
    program: &'a MirProgram,
    labels: &'a mut Labels,
    opts: &'a CompileOptions,
    /// Per-MIR-block machine labels.
    block_labels: Vec<Label>,
    /// Current machine block under construction.
    cur: EmitBlock,
    done: Vec<EmitBlock>,
    jump_tables: Vec<JumpTableReq>,
    uses_rbx: bool,
    cur_line: u32,
}

impl Gen<'_> {
    fn slot(&self, local: u32) -> Mem {
        let rbx_off = if self.uses_rbx { 8 } else { 0 };
        Mem::base(Reg::Rbp, -(rbx_off + 8 * (local as i32 + 1)))
    }

    fn frame_size(&self) -> i32 {
        let sz = 8 * self.func.locals as i32;
        (sz + 15) & !15
    }

    fn push(&mut self, inst: Inst) {
        let mut e = EmitInst::new(inst);
        e.line = Some(LineInfo {
            file: self.program.file_of_line(self.cur_line),
            line: self.cur_line,
        });
        self.cur.insts.push(e);
    }

    fn push_eh(&mut self, inst: Inst, pad: Label) {
        let mut e = EmitInst::new(inst);
        e.line = Some(LineInfo {
            file: self.program.file_of_line(self.cur_line),
            line: self.cur_line,
        });
        e.eh_pad = Some(pad);
        self.cur.insts.push(e);
    }

    /// Loads an operand into a register.
    fn operand_to(&mut self, dst: Reg, op: Operand) {
        match op {
            Operand::Const(c) => self.push(Inst::MovRI { dst, imm: c }),
            Operand::Local(l) => self.push(Inst::Load {
                dst,
                mem: self.slot(l),
            }),
        }
    }

    fn store_local(&mut self, local: u32, src: Reg) {
        self.push(Inst::Store {
            mem: self.slot(local),
            src,
        });
    }

    /// The scratch register used as a base pointer for global accesses.
    fn global_base_reg(&self) -> Reg {
        if self.uses_rbx {
            Reg::Rbx
        } else {
            Reg::R10
        }
    }

    fn gen_rvalue_into_rax(&mut self, rv: &Rvalue) {
        match rv {
            Rvalue::Use(op) => self.operand_to(Reg::Rax, *op),
            Rvalue::BinOp(op, a, b) => {
                self.operand_to(Reg::Rax, *a);
                self.operand_to(Reg::Rcx, *b);
                match op {
                    BinOp::Add => self.push(Inst::Alu {
                        op: AluOp::Add,
                        dst: Reg::Rax,
                        src: Reg::Rcx,
                    }),
                    BinOp::Sub => self.push(Inst::Alu {
                        op: AluOp::Sub,
                        dst: Reg::Rax,
                        src: Reg::Rcx,
                    }),
                    BinOp::Mul => self.push(Inst::Imul {
                        dst: Reg::Rax,
                        src: Reg::Rcx,
                    }),
                    BinOp::And => self.push(Inst::Alu {
                        op: AluOp::And,
                        dst: Reg::Rax,
                        src: Reg::Rcx,
                    }),
                    BinOp::Or => self.push(Inst::Alu {
                        op: AluOp::Or,
                        dst: Reg::Rax,
                        src: Reg::Rcx,
                    }),
                    BinOp::Xor => self.push(Inst::Alu {
                        op: AluOp::Xor,
                        dst: Reg::Rax,
                        src: Reg::Rcx,
                    }),
                }
            }
            Rvalue::Shift(kind, a, amt) => {
                self.operand_to(Reg::Rax, *a);
                let op = match kind {
                    ShiftKind::Shl => ShiftOp::Shl,
                    ShiftKind::Shr => ShiftOp::Shr,
                    ShiftKind::Sar => ShiftOp::Sar,
                };
                self.push(Inst::Shift {
                    op,
                    dst: Reg::Rax,
                    amount: *amt,
                });
            }
            Rvalue::Cmp(op, a, b) => {
                self.operand_to(Reg::Rax, *a);
                self.operand_to(Reg::Rcx, *b);
                self.push(Inst::Alu {
                    op: AluOp::Cmp,
                    dst: Reg::Rax,
                    src: Reg::Rcx,
                });
                let cond = match op {
                    CmpOp::Lt => Cond::L,
                    CmpOp::Le => Cond::Le,
                    CmpOp::Gt => Cond::G,
                    CmpOp::Ge => Cond::Ge,
                    CmpOp::Eq => Cond::E,
                    CmpOp::Ne => Cond::Ne,
                };
                self.push(Inst::Setcc {
                    cond,
                    dst: Reg::Rax,
                });
                self.push(Inst::Movzx8 {
                    dst: Reg::Rax,
                    src: Reg::Rax,
                });
            }
            Rvalue::LoadGlobal { global, index } => match index {
                Operand::Const(c) => {
                    // A statically known read-only location: single
                    // RIP-relative load (the `simplify-ro-loads` target).
                    let word = self.labels.global_word(global, *c as u64);
                    self.push(Inst::Load {
                        dst: Reg::Rax,
                        mem: Mem::rip(word),
                    });
                }
                Operand::Local(_) => {
                    let base = self.global_base_reg();
                    let g = self.labels.global(global);
                    self.operand_to(Reg::Rcx, *index);
                    self.push(Inst::Lea {
                        dst: base,
                        mem: Mem::rip(g),
                    });
                    self.push(Inst::Load {
                        dst: Reg::Rax,
                        mem: Mem::BaseIndexScale {
                            base,
                            index: Reg::Rcx,
                            scale: 8,
                            disp: 0,
                        },
                    });
                }
            },
            Rvalue::FuncAddr(name) => {
                let f = self.labels.func(name);
                self.push(Inst::MovRSym {
                    dst: Reg::Rax,
                    target: Target::Label(f),
                });
            }
        }
    }

    fn gen_stmt(&mut self, stmt: &Stmt) {
        self.cur_line = stmt.line();
        match stmt {
            Stmt::Assign { dst, rv, .. } => {
                self.gen_rvalue_into_rax(rv);
                self.store_local(*dst, Reg::Rax);
            }
            Stmt::StoreGlobal {
                global,
                index,
                value,
                ..
            } => {
                self.operand_to(Reg::Rax, *value);
                match index {
                    Operand::Const(c) => {
                        let word = self.labels.global_word(global, *c as u64);
                        self.push(Inst::Store {
                            mem: Mem::rip(word),
                            src: Reg::Rax,
                        });
                    }
                    Operand::Local(_) => {
                        let base = self.global_base_reg();
                        let g = self.labels.global(global);
                        self.operand_to(Reg::Rcx, *index);
                        self.push(Inst::Lea {
                            dst: base,
                            mem: Mem::rip(g),
                        });
                        self.push(Inst::Store {
                            mem: Mem::BaseIndexScale {
                                base,
                                index: Reg::Rcx,
                                scale: 8,
                                disp: 0,
                            },
                            src: Reg::Rax,
                        });
                    }
                }
            }
            Stmt::Call {
                dst,
                callee,
                args,
                landing_pad,
                ..
            } => {
                self.gen_call(callee, args, *landing_pad);
                if let Some(d) = dst {
                    self.store_local(*d, Reg::Rax);
                }
            }
            Stmt::Emit { value, .. } => {
                self.operand_to(Reg::Rdi, *value);
                let target = self.call_target(RT_EMIT);
                self.push(Inst::Call {
                    target: Target::Label(target),
                });
            }
        }
    }

    /// The label a direct call should target: PLT stub for externals (when
    /// PLT indirection is on), entry label otherwise.
    fn call_target(&mut self, callee: &str) -> Label {
        if self.opts.plt && is_external(callee) {
            self.labels.plt(callee)
        } else {
            self.labels.func(callee)
        }
    }

    fn gen_call(&mut self, callee: &Callee, args: &[Operand], landing_pad: Option<MirBlockId>) {
        match callee {
            Callee::Direct(name) => {
                for (i, a) in args.iter().enumerate() {
                    self.operand_to(Reg::ARGS[i], *a);
                }
                let target = self.call_target(name);
                let call = Inst::Call {
                    target: Target::Label(target),
                };
                match landing_pad {
                    Some(lp) => {
                        let pad = self.block_labels[lp.index()];
                        self.push_eh(call, pad);
                    }
                    None => self.push(call),
                }
            }
            Callee::Indirect(ptr) => {
                self.operand_to(Reg::R11, *ptr);
                for (i, a) in args.iter().enumerate() {
                    self.operand_to(Reg::ARGS[i], *a);
                }
                let call = Inst::CallInd {
                    rm: Rm::Reg(Reg::R11),
                };
                match landing_pad {
                    Some(lp) => {
                        let pad = self.block_labels[lp.index()];
                        self.push_eh(call, pad);
                    }
                    None => self.push(call),
                }
            }
        }
    }

    fn gen_epilogue_and_ret(&mut self) {
        self.push(Inst::AluI {
            op: AluOp::Add,
            dst: Reg::Rsp,
            imm: self.frame_size(),
        });
        if self.uses_rbx {
            self.push(Inst::Pop(Reg::Rbx));
        }
        self.push(Inst::Pop(Reg::Rbp));
        if self.opts.legacy_amd {
            self.push(Inst::RepzRet);
        } else {
            self.push(Inst::Ret);
        }
    }

    fn jmp_to(&mut self, block: MirBlockId) {
        let l = self.block_labels[block.index()];
        self.push(Inst::Jmp {
            target: Target::Label(l),
            width: JumpWidth::Near,
        });
    }

    fn jcc_to(&mut self, cond: Cond, block: MirBlockId) {
        let l = self.block_labels[block.index()];
        self.push(Inst::Jcc {
            cond,
            target: Target::Label(l),
            width: JumpWidth::Near,
        });
    }
}

/// Whether a function reads or writes globals with dynamic indices (which
/// makes the code generator reserve a base register).
fn uses_dynamic_globals(func: &MirFunction) -> bool {
    func.blocks.iter().any(|b| {
        b.stmts.iter().any(|s| {
            matches!(
                s,
                Stmt::Assign {
                    rv: Rvalue::LoadGlobal {
                        index: Operand::Local(_),
                        ..
                    },
                    ..
                } | Stmt::StoreGlobal {
                    index: Operand::Local(_),
                    ..
                }
            )
        })
    })
}

/// MIR block ids that are loop headers (targets of back-edges with respect
/// to the layout order).
fn loop_headers(func: &MirFunction) -> Vec<bool> {
    let mut pos = vec![usize::MAX; func.blocks.len()];
    for (i, b) in func.layout.iter().enumerate() {
        pos[b.index()] = i;
    }
    let mut heads = vec![false; func.blocks.len()];
    for &b in &func.layout {
        for succ in func.block(b).term.successors() {
            if pos[succ.index()] <= pos[b.index()] {
                heads[succ.index()] = true;
            }
        }
    }
    heads
}

/// Lowers one MIR function to machine code.
///
/// `program` provides the global line→file mapping used for debug-info
/// attribution (inlined statements keep their origin file).
pub fn codegen_function(
    func: &MirFunction,
    program: &MirProgram,
    labels: &mut Labels,
    opts: &CompileOptions,
) -> GenFunction {
    let uses_rbx = opts.opt_level < 2 && uses_dynamic_globals(func);
    let block_labels: Vec<Label> = func.blocks.iter().map(|_| labels.fresh()).collect();
    let entry_label = labels.func(&func.name);
    let heads = loop_headers(func);

    let mut g = Gen {
        func,
        program,
        labels,
        opts,
        block_labels,
        cur: EmitBlock::new(entry_label),
        done: Vec::new(),
        jump_tables: Vec::new(),
        uses_rbx,
        cur_line: 1,
    };

    // Layout positions for fall-through decisions.
    let mut next_in_layout = vec![None; func.blocks.len()];
    for w in func.layout.windows(2) {
        next_in_layout[w[0].index()] = Some(w[1]);
    }

    for (li, &bb) in func.layout.iter().enumerate() {
        // Open the machine block. The function entry gets the function
        // label and a prologue; other blocks get their block label.
        if li == 0 {
            g.cur = EmitBlock::new(entry_label);
            // Entry block label aliases the function label; record the MIR
            // block label as an extra empty block right after the
            // prologue? Simpler: the entry MIR block's label *is* a
            // separate label placed after the prologue so intra-function
            // branches to the entry (loops to bb0) work.
            g.cur_line = 1;
            g.push(Inst::Push(Reg::Rbp));
            g.push(Inst::MovRR {
                dst: Reg::Rbp,
                src: Reg::Rsp,
            });
            if g.uses_rbx {
                g.push(Inst::Push(Reg::Rbx));
            }
            g.push(Inst::AluI {
                op: AluOp::Sub,
                dst: Reg::Rsp,
                imm: g.frame_size(),
            });
            for p in 0..func.params {
                g.push(Inst::Store {
                    mem: g.slot(p),
                    src: Reg::ARGS[p as usize],
                });
            }
            // Now start the entry MIR block at its own label.
            let finished =
                std::mem::replace(&mut g.cur, EmitBlock::new(g.block_labels[bb.index()]));
            g.done.push(finished);
        } else {
            let mut blk = EmitBlock::new(g.block_labels[bb.index()]);
            if opts.align_blocks && heads[bb.index()] {
                blk.align = 16;
            }
            g.cur = blk;
        }

        let block = func.block(bb);
        let next = next_in_layout[bb.index()];

        // Tail-call pattern at -O2: `x = call f(...); return x;`.
        let tail_call = opts.opt_level >= 2
            && matches!(
                (block.stmts.last(), &block.term),
                (
                    Some(Stmt::Call {
                        dst: Some(d),
                        callee: Callee::Direct(_),
                        landing_pad: None,
                        ..
                    }),
                    Terminator::Return(Operand::Local(r))
                ) if *r == *d
            );

        let stmt_count = if tail_call {
            block.stmts.len() - 1
        } else {
            block.stmts.len()
        };
        for s in &block.stmts[..stmt_count] {
            g.gen_stmt(s);
        }

        g.cur_line = block.term_line;
        if tail_call {
            let Some(Stmt::Call {
                callee: Callee::Direct(name),
                args,
                ..
            }) = block.stmts.last()
            else {
                unreachable!("tail_call implies a trailing direct call");
            };
            for (i, a) in args.iter().enumerate() {
                g.operand_to(Reg::ARGS[i], *a);
            }
            // Epilogue then jump: the callee returns to our caller.
            g.push(Inst::AluI {
                op: AluOp::Add,
                dst: Reg::Rsp,
                imm: g.frame_size(),
            });
            if g.uses_rbx {
                g.push(Inst::Pop(Reg::Rbx));
            }
            g.push(Inst::Pop(Reg::Rbp));
            let target = g.call_target(name);
            g.push(Inst::Jmp {
                target: Target::Label(target),
                width: JumpWidth::Near,
            });
        } else {
            match &block.term {
                Terminator::Goto(t) => {
                    if next != Some(*t) {
                        g.jmp_to(*t);
                    }
                }
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    g.operand_to(Reg::Rax, *cond);
                    g.push(Inst::Test {
                        a: Reg::Rax,
                        b: Reg::Rax,
                    });
                    if next == Some(*else_bb) {
                        g.jcc_to(Cond::Ne, *then_bb);
                    } else if next == Some(*then_bb) {
                        g.jcc_to(Cond::E, *else_bb);
                    } else {
                        g.jcc_to(Cond::Ne, *then_bb);
                        g.jmp_to(*else_bb);
                    }
                }
                Terminator::Switch {
                    scrut,
                    targets,
                    default,
                } => {
                    let table = g.labels.fresh();
                    g.operand_to(Reg::Rax, *scrut);
                    g.push(Inst::AluI {
                        op: AluOp::Cmp,
                        dst: Reg::Rax,
                        imm: targets.len() as i32,
                    });
                    g.jcc_to(Cond::Ae, *default);
                    g.push(Inst::Lea {
                        dst: Reg::R11,
                        mem: Mem::rip(table),
                    });
                    g.push(Inst::Load {
                        dst: Reg::R11,
                        mem: Mem::BaseIndexScale {
                            base: Reg::R11,
                            index: Reg::Rax,
                            scale: 8,
                            disp: 0,
                        },
                    });
                    g.push(Inst::JmpInd {
                        rm: Rm::Reg(Reg::R11),
                    });
                    let target_labels = targets.iter().map(|t| g.block_labels[t.index()]).collect();
                    g.jump_tables.push(JumpTableReq {
                        table,
                        targets: target_labels,
                        name: format!("{}.jt{}", func.name, g.jump_tables.len()),
                    });
                }
                Terminator::Return(v) => {
                    g.operand_to(Reg::Rax, *v);
                    g.gen_epilogue_and_ret();
                }
                Terminator::Unreachable => {
                    g.push(Inst::Ud2);
                }
            }
        }

        let finished = std::mem::replace(&mut g.cur, EmitBlock::new(Label(u32::MAX)));
        g.done.push(finished);
    }

    let mut unit = EmitUnit::new(&func.name);
    unit.blocks = g.done;
    GenFunction {
        unit,
        jump_tables: g.jump_tables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::options::CompileOptions;

    fn program_with(f: MirFunction) -> MirProgram {
        let mut p = MirProgram::with_entry(&f.name);
        p.add_function(f);
        p
    }

    fn simple_func() -> MirProgram {
        let mut b = FunctionBuilder::new("add1", 0, "a.c", 1);
        let r = b.assign(Rvalue::BinOp(
            BinOp::Add,
            Operand::Local(0),
            Operand::Const(1),
        ));
        b.ret(Operand::Local(r));
        program_with(b.finish())
    }

    #[test]
    fn lowering_produces_prologue_and_epilogue() {
        let p = simple_func();
        let f = &p.functions[0];
        let mut labels = Labels::new();
        let gen = codegen_function(f, &p, &mut labels, &CompileOptions::default());
        let all: Vec<&Inst> = gen
            .unit
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter().map(|i| &i.inst))
            .collect();
        assert!(matches!(all[0], Inst::Push(Reg::Rbp)));
        assert!(matches!(
            all[1],
            Inst::MovRR {
                dst: Reg::Rbp,
                src: Reg::Rsp
            }
        ));
        assert!(matches!(all.last().unwrap(), Inst::Ret));
        // Parameter spill present.
        assert!(all
            .iter()
            .any(|i| matches!(i, Inst::Store { src: Reg::Rdi, .. })));
    }

    #[test]
    fn legacy_amd_emits_repz_ret() {
        let p = simple_func();
        let f = &p.functions[0];
        let mut labels = Labels::new();
        let opts = CompileOptions {
            legacy_amd: true,
            ..CompileOptions::default()
        };
        let gen = codegen_function(f, &p, &mut labels, &opts);
        let has_repz = gen
            .unit
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i.inst, Inst::RepzRet));
        assert!(has_repz);
    }

    #[test]
    fn switch_produces_jump_table() {
        let mut b = FunctionBuilder::new("disp", 0, "d.c", 1);
        let arms = b.switch(Operand::Local(0), 4);
        for arm in &arms.targets {
            b.switch_to(*arm);
            b.ret(Operand::Const(1));
        }
        b.switch_to(arms.default);
        b.ret(Operand::Const(0));
        let p = program_with(b.finish());
        let f = &p.functions[0];
        let mut labels = Labels::new();
        let gen = codegen_function(f, &p, &mut labels, &CompileOptions::default());
        assert_eq!(gen.jump_tables.len(), 1);
        assert_eq!(gen.jump_tables[0].targets.len(), 4);
        let has_ind_jmp = gen
            .unit
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i.inst, Inst::JmpInd { .. }));
        assert!(has_ind_jmp);
    }

    #[test]
    fn o2_uses_tail_calls() {
        let mut p_fb = FunctionBuilder::new("callee", 0, "t.c", 0);
        p_fb.ret(Operand::Const(5));
        let mut b = FunctionBuilder::new("caller", 0, "t.c", 0);
        let r = b.call("callee", vec![]);
        b.ret(Operand::Local(r));
        let mut p = MirProgram::with_entry("caller");
        p.add_function(p_fb.finish());
        p.add_function(b.finish());
        let f = p.function("caller").unwrap();

        let mut labels = Labels::new();
        let o2 = CompileOptions {
            opt_level: 2,
            ..CompileOptions::default()
        };
        let gen = codegen_function(f, &p, &mut labels, &o2);
        let insts: Vec<&Inst> = gen
            .unit
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter().map(|i| &i.inst))
            .collect();
        assert!(
            insts.iter().any(|i| matches!(i, Inst::Jmp { .. })),
            "tail call lowered as jmp"
        );
        assert!(
            !insts.iter().any(|i| matches!(i, Inst::Call { .. })),
            "no call remains"
        );

        let o1 = CompileOptions {
            opt_level: 1,
            ..CompileOptions::default()
        };
        let mut labels = Labels::new();
        let gen = codegen_function(f, &p, &mut labels, &o1);
        let has_call = gen
            .unit
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i.inst, Inst::Call { .. }));
        assert!(has_call, "-O1 keeps the call");
    }

    #[test]
    fn dynamic_globals_pin_rbx_below_o2() {
        let mut b = FunctionBuilder::new("g", 0, "g.c", 1);
        let v = b.assign(Rvalue::LoadGlobal {
            global: "tbl".into(),
            index: Operand::Local(0),
        });
        b.ret(Operand::Local(v));
        let p = program_with(b.finish());
        let f = &p.functions[0];

        let mut labels = Labels::new();
        let o1 = CompileOptions {
            opt_level: 1,
            ..CompileOptions::default()
        };
        let gen = codegen_function(f, &p, &mut labels, &o1);
        let pushes_rbx = gen
            .unit
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i.inst, Inst::Push(Reg::Rbx)));
        assert!(pushes_rbx, "-O1 reserves %rbx for global accesses");

        let mut labels = Labels::new();
        let gen = codegen_function(f, &p, &mut labels, &CompileOptions::default());
        let pushes_rbx = gen
            .unit
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i.inst, Inst::Push(Reg::Rbx)));
        assert!(!pushes_rbx, "-O2 uses a caller-saved scratch");
    }
}
