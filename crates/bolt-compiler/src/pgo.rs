//! Source-level profiles and profile-guided block layout.
//!
//! This is the AutoFDO-style path (paper sections 2.2 and 6.2): a binary
//! profile is mapped back to `(file, line)` pairs through the line table
//! and *aggregated* — every inlined copy of a line contributes to the same
//! counter. The compiler then uses the aggregate for hot-call inlining and
//! block layout. The aggregation is exactly what loses the per-inline-copy
//! precision illustrated in paper Figure 2; BOLT, operating on the final
//! binary, does not suffer it.

use crate::mir::{MirBlockId, MirFunction, Stmt, Terminator};
use std::collections::HashMap;

/// Execution counts aggregated per source line.
///
/// Lines are the program's *global* line ids: unique per static statement,
/// but shared by all inlined copies of that statement — which is the
/// aggregation loss of paper Figure 2.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceProfile {
    /// line → number of samples attributed to that line.
    pub line_counts: HashMap<u32, u64>,
    /// line → callee → call count, for call-site inlining.
    pub call_counts: HashMap<u32, HashMap<String, u64>>,
}

impl SourceProfile {
    pub fn new() -> SourceProfile {
        SourceProfile::default()
    }

    /// Adds `n` samples to a line.
    pub fn add_line(&mut self, line: u32, n: u64) {
        *self.line_counts.entry(line).or_insert(0) += n;
    }

    /// Adds `n` calls from a call site to `callee`.
    pub fn add_call(&mut self, line: u32, callee: &str, n: u64) {
        *self
            .call_counts
            .entry(line)
            .or_default()
            .entry(callee.to_string())
            .or_insert(0) += n;
    }

    /// Samples attributed to a line.
    pub fn line(&self, line: u32) -> u64 {
        self.line_counts.get(&line).copied().unwrap_or(0)
    }

    /// Total samples (for hotness thresholds).
    pub fn total(&self) -> u64 {
        self.line_counts.values().sum()
    }

    /// The hottest count of any single line.
    pub fn max_line(&self) -> u64 {
        self.line_counts.values().copied().max().unwrap_or(0)
    }

    /// Call count of a given call site to a given callee.
    pub fn calls_at(&self, line: u32, callee: &str) -> u64 {
        self.call_counts
            .get(&line)
            .and_then(|m| m.get(callee))
            .copied()
            .unwrap_or(0)
    }
}

/// Estimated execution weight of each block of `func` under `profile`:
/// the maximum line count over the block's statements and terminator.
pub fn block_weights(func: &MirFunction, profile: &SourceProfile) -> Vec<u64> {
    func.blocks
        .iter()
        .map(|b| {
            let stmt_max = b
                .stmts
                .iter()
                .map(|s| profile.line(s.line()))
                .max()
                .unwrap_or(0);
            stmt_max.max(profile.line(b.term_line))
        })
        .collect()
}

/// Reorders `func.layout` so hot paths fall through, using a greedy
/// Pettis–Hansen-style chain construction over profile-weighted CFG edges.
///
/// Edge weights are approximated from aggregated block weights —
/// deliberately, because that is the accuracy available to a compiler
/// consuming retrofitted profiles.
pub fn pgo_layout(func: &mut MirFunction, profile: &SourceProfile) {
    let n = func.blocks.len();
    if n <= 2 {
        return;
    }
    let w = block_weights(func, profile);

    // Build weighted edges.
    let mut edges: Vec<(u64, usize, usize)> = Vec::new();
    for (bi, b) in func.blocks.iter().enumerate() {
        match &b.term {
            Terminator::Goto(t) => edges.push((w[bi].min(w[t.index()]).max(1), bi, t.index())),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                // Split the block's outflow proportionally to target
                // weights (the only signal line aggregation preserves).
                let wt = w[then_bb.index()];
                let we = w[else_bb.index()];
                edges.push((wt.max(1), bi, then_bb.index()));
                edges.push((we.max(1), bi, else_bb.index()));
                let _ = we;
            }
            Terminator::Switch {
                targets, default, ..
            } => {
                for t in targets {
                    edges.push((w[t.index()].max(1), bi, t.index()));
                }
                edges.push((1, bi, default.index()));
            }
            Terminator::Return(_) | Terminator::Unreachable => {}
        }
    }
    // Highest-weight edges first; ties broken deterministically by ids.
    edges.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    // Pettis-Hansen chain merging.
    let mut chain_of: Vec<usize> = (0..n).collect();
    let mut chains: Vec<Vec<usize>> = (0..n).map(|b| vec![b]).collect();
    for (_, from, to) in edges {
        let cf = chain_of[from];
        let ct = chain_of[to];
        if cf == ct {
            continue;
        }
        // Merge only when `from` is a chain tail and `to` a chain head:
        // that's what makes the edge a fall-through.
        if *chains[cf].last().expect("chains non-empty") == from && chains[ct][0] == to {
            let tail = std::mem::take(&mut chains[ct]);
            for b in &tail {
                chain_of[*b] = cf;
            }
            chains[cf].extend(tail);
        }
    }

    // Order chains: entry chain first, then by descending heat.
    let entry_chain = chain_of[func.entry().index()];
    let mut chain_ids: Vec<usize> = (0..n).filter(|&c| !chains[c].is_empty()).collect();
    chain_ids.sort_by_key(|&c| {
        let heat = chains[c].iter().map(|&b| w[b]).max().unwrap_or(0);
        (
            std::cmp::Reverse(u64::from(c == entry_chain)),
            std::cmp::Reverse(heat),
            c,
        )
    });

    let mut layout = Vec::with_capacity(n);
    for c in chain_ids {
        for b in &chains[c] {
            layout.push(MirBlockId(*b as u32));
        }
    }
    debug_assert_eq!(layout.len(), func.layout.len());
    func.layout = layout;
}

/// Finds hot direct call sites for PGO-driven inlining: returns
/// `(block, stmt index, callee, count)` tuples sorted hottest-first.
pub fn hot_call_sites(
    func: &MirFunction,
    profile: &SourceProfile,
    threshold: u64,
) -> Vec<(MirBlockId, usize, String, u64)> {
    let mut out = Vec::new();
    for (bi, b) in func.blocks.iter().enumerate() {
        for (si, s) in b.stmts.iter().enumerate() {
            if let Stmt::Call {
                callee: crate::mir::Callee::Direct(name),
                line,
                landing_pad: None,
                ..
            } = s
            {
                let count = profile.calls_at(*line, name).max(profile.line(*line));
                if count >= threshold {
                    out.push((MirBlockId(bi as u32), si, name.clone(), count));
                }
            }
        }
    }
    out.sort_by_key(|e| std::cmp::Reverse(e.3));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::mir::{CmpOp, Operand};

    /// entry -> (hot, cold) -> join; source order puts cold first.
    fn branchy() -> MirFunction {
        let mut b = FunctionBuilder::new("f", 0, "f.c", 1);
        let c = b.assign_cmp(CmpOp::Gt, Operand::Local(0), Operand::Const(0));
        let (cold, hot) = b.branch(Operand::Local(c));
        // `cold` (then) is laid out before `hot` (else) in source order.
        b.switch_to(cold);
        b.emit(Operand::Const(1));
        let join = b.goto_new();
        b.switch_to(hot);
        b.emit(Operand::Const(2));
        b.goto(join);
        b.switch_to(join);
        b.ret(Operand::Const(0));
        b.finish()
    }

    #[test]
    fn hot_path_becomes_fallthrough() {
        let mut f = branchy();
        // Line assignment in branchy(): 1=cmp, 2=branch, 3=cold emit,
        // 4=cold goto, 5=hot emit, 6=hot goto, 7=ret.
        let cold_line = 3;
        let hot_line = 5;
        let mut p = SourceProfile::new();
        p.add_line(1, 1000); // the cmp
        p.add_line(cold_line, 1);
        p.add_line(hot_line, 999);

        let before = f.layout.clone();
        pgo_layout(&mut f, &p);
        assert_ne!(f.layout, before, "layout changed");
        // The hot block (id 2) should directly follow the entry block.
        let pos = |id: u32| f.layout.iter().position(|b| b.0 == id).unwrap();
        assert!(
            pos(2) < pos(1),
            "hot block precedes cold block in {:?}",
            f.layout
        );
        assert_eq!(f.layout[0].0, 0, "entry first");
    }

    #[test]
    fn layout_is_always_a_permutation() {
        let mut f = branchy();
        let p = SourceProfile::new();
        pgo_layout(&mut f, &p);
        let mut ids: Vec<u32> = f.layout.iter().map(|b| b.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn hot_call_sites_ranked() {
        let mut b = FunctionBuilder::new("caller", 0, "c.c", 0);
        let _ = b.call("warm", vec![]);
        let _ = b.call("blazing", vec![]);
        b.ret(Operand::Const(0));
        let f = b.finish();

        let mut p = SourceProfile::new();
        p.add_call(1, "warm", 10);
        p.add_call(2, "blazing", 10_000);
        let sites = hot_call_sites(&f, &p, 5);
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].2, "blazing");
        let sites = hot_call_sites(&f, &p, 100);
        assert_eq!(sites.len(), 1);
    }

    #[test]
    fn source_profile_accessors() {
        let mut p = SourceProfile::new();
        p.add_line(10, 5);
        p.add_line(10, 7);
        assert_eq!(p.line(10), 12);
        assert_eq!(p.line(11), 0);
        assert_eq!(p.total(), 12);
        assert_eq!(p.max_line(), 12);
    }
}
