//! Ergonomic construction of MIR functions.
//!
//! The workload generators build thousands of synthetic functions; this
//! builder keeps that code readable while auto-assigning source lines
//! (each function starts at line 1 of its file and each statement advances
//! the line counter, mimicking a pretty-printed source file).

use crate::mir::{
    Callee, CmpOp, LocalId, MirBlock, MirBlockId, MirFunction, Operand, Rvalue, Stmt, Terminator,
};

/// The blocks created by [`FunctionBuilder::switch`].
#[derive(Debug, Clone)]
pub struct SwitchArms {
    pub targets: Vec<MirBlockId>,
    pub default: MirBlockId,
}

/// Builds one [`MirFunction`] block by block.
///
/// The builder maintains a current block; statements append to it and
/// terminator helpers seal it. Every block must be sealed exactly once.
#[derive(Debug)]
pub struct FunctionBuilder {
    func: MirFunction,
    current: MirBlockId,
    sealed: Vec<bool>,
    next_line: u32,
}

impl FunctionBuilder {
    /// Starts a function with `params` parameters in `module`, whose
    /// source lives in `file`.
    pub fn new(name: &str, module: u32, file: &str, params: u32) -> FunctionBuilder {
        let entry = MirBlock {
            stmts: Vec::new(),
            term: Terminator::Unreachable,
            term_line: 0,
        };
        FunctionBuilder {
            func: MirFunction {
                name: name.to_string(),
                module,
                file: file.to_string(),
                params,
                locals: params,
                blocks: vec![entry],
                layout: vec![MirBlockId(0)],
                inline_hint: false,
            },
            current: MirBlockId(0),
            sealed: vec![false],
            next_line: 1,
        }
    }

    /// Marks the function as an inlining candidate.
    pub fn inline_hint(&mut self) -> &mut Self {
        self.func.inline_hint = true;
        self
    }

    /// Allocates a fresh local.
    pub fn new_local(&mut self) -> LocalId {
        self.func.new_local()
    }

    /// Creates a new (unsealed) block and returns its id.
    pub fn new_block(&mut self) -> MirBlockId {
        let id = MirBlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(MirBlock {
            stmts: Vec::new(),
            term: Terminator::Unreachable,
            term_line: 0,
        });
        self.func.layout.push(id);
        self.sealed.push(false);
        id
    }

    /// Switches statement insertion to `block`.
    ///
    /// # Panics
    ///
    /// Panics if the block is already sealed.
    pub fn switch_to(&mut self, block: MirBlockId) {
        assert!(
            !self.sealed[block.index()],
            "switching to sealed block {block}"
        );
        self.current = block;
    }

    /// The block currently being filled.
    pub fn current_block(&self) -> MirBlockId {
        self.current
    }

    fn take_line(&mut self) -> u32 {
        let l = self.next_line;
        self.next_line += 1;
        l
    }

    /// Appends a raw statement (auto-assigning its line if zero).
    pub fn push_stmt(&mut self, mut stmt: Stmt) {
        assert!(
            !self.sealed[self.current.index()],
            "appending to sealed block"
        );
        if stmt.line() == 0 {
            let l = self.take_line();
            match &mut stmt {
                Stmt::Assign { line, .. }
                | Stmt::StoreGlobal { line, .. }
                | Stmt::Call { line, .. }
                | Stmt::Emit { line, .. } => *line = l,
            }
        } else {
            self.next_line = self.next_line.max(stmt.line() + 1);
        }
        self.func.blocks[self.current.index()].stmts.push(stmt);
    }

    /// `dst = rv` into a fresh local; returns the local.
    pub fn assign(&mut self, rv: Rvalue) -> LocalId {
        let dst = self.new_local();
        let line = self.take_line();
        self.func.blocks[self.current.index()]
            .stmts
            .push(Stmt::Assign { dst, rv, line });
        dst
    }

    /// `dst = rv` into an existing local.
    pub fn assign_to(&mut self, dst: LocalId, rv: Rvalue) {
        let line = self.take_line();
        self.func.blocks[self.current.index()]
            .stmts
            .push(Stmt::Assign { dst, rv, line });
    }

    /// Comparison into a fresh local.
    pub fn assign_cmp(&mut self, op: CmpOp, a: Operand, b: Operand) -> LocalId {
        self.assign(Rvalue::Cmp(op, a, b))
    }

    /// Direct call; returns the destination local.
    pub fn call(&mut self, callee: &str, args: Vec<Operand>) -> LocalId {
        let dst = self.new_local();
        let line = self.take_line();
        self.func.blocks[self.current.index()]
            .stmts
            .push(Stmt::Call {
                dst: Some(dst),
                callee: Callee::Direct(callee.to_string()),
                args,
                landing_pad: None,
                line,
            });
        dst
    }

    /// Direct call with an exception landing pad.
    pub fn call_with_landing_pad(
        &mut self,
        callee: &str,
        args: Vec<Operand>,
        landing_pad: MirBlockId,
    ) -> LocalId {
        let dst = self.new_local();
        let line = self.take_line();
        self.func.blocks[self.current.index()]
            .stmts
            .push(Stmt::Call {
                dst: Some(dst),
                callee: Callee::Direct(callee.to_string()),
                args,
                landing_pad: Some(landing_pad),
                line,
            });
        dst
    }

    /// Indirect call through a function-pointer operand.
    pub fn call_indirect(&mut self, ptr: Operand, args: Vec<Operand>) -> LocalId {
        let dst = self.new_local();
        let line = self.take_line();
        self.func.blocks[self.current.index()]
            .stmts
            .push(Stmt::Call {
                dst: Some(dst),
                callee: Callee::Indirect(ptr),
                args,
                landing_pad: None,
                line,
            });
        dst
    }

    /// Emits a value to the output stream.
    pub fn emit(&mut self, value: Operand) {
        let line = self.take_line();
        self.func.blocks[self.current.index()]
            .stmts
            .push(Stmt::Emit { value, line });
    }

    fn seal(&mut self, term: Terminator) {
        assert!(
            !self.sealed[self.current.index()],
            "block {} sealed twice",
            self.current
        );
        let line = self.take_line();
        let b = &mut self.func.blocks[self.current.index()];
        b.term = term;
        b.term_line = line;
        self.sealed[self.current.index()] = true;
    }

    /// Seals the current block with a two-way branch; returns the fresh
    /// (then, else) blocks.
    pub fn branch(&mut self, cond: Operand) -> (MirBlockId, MirBlockId) {
        let then_bb = self.new_block();
        let else_bb = self.new_block();
        self.seal(Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        });
        (then_bb, else_bb)
    }

    /// Seals the current block with a branch to existing blocks.
    pub fn branch_to(&mut self, cond: Operand, then_bb: MirBlockId, else_bb: MirBlockId) {
        self.seal(Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Seals the current block with a goto to a fresh block; returns it.
    pub fn goto_new(&mut self) -> MirBlockId {
        let b = self.new_block();
        self.seal(Terminator::Goto(b));
        b
    }

    /// Seals the current block with a goto to an existing block.
    pub fn goto(&mut self, target: MirBlockId) {
        self.seal(Terminator::Goto(target));
    }

    /// Seals the current block with an `n`-way switch; returns the fresh
    /// arm blocks and default.
    pub fn switch(&mut self, scrut: Operand, n: usize) -> SwitchArms {
        let targets: Vec<MirBlockId> = (0..n).map(|_| self.new_block()).collect();
        let default = self.new_block();
        self.seal(Terminator::Switch {
            scrut,
            targets: targets.clone(),
            default,
        });
        SwitchArms { targets, default }
    }

    /// Seals the current block with a switch to existing blocks.
    pub fn switch_to_blocks(
        &mut self,
        scrut: Operand,
        targets: Vec<MirBlockId>,
        default: MirBlockId,
    ) {
        self.seal(Terminator::Switch {
            scrut,
            targets,
            default,
        });
    }

    /// Seals the current block with a return.
    pub fn ret(&mut self, value: Operand) {
        self.seal(Terminator::Return(value));
    }

    /// Seals the current block as unreachable (e.g. landing-pad tails).
    pub fn unreachable(&mut self) {
        self.seal(Terminator::Unreachable);
    }

    /// Finishes the function.
    ///
    /// # Panics
    ///
    /// Panics if any block was never sealed.
    pub fn finish(self) -> MirFunction {
        for (i, s) in self.sealed.iter().enumerate() {
            assert!(*s, "{}: block bb{i} never sealed", self.func.name);
        }
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::{BinOp, MirProgram};

    #[test]
    fn builds_a_loop() {
        // sum = 0; for (i = n; i > 0; i--) sum += i; return sum;
        let mut b = FunctionBuilder::new("sum_to_n", 0, "sum.c", 1);
        let sum = b.new_local();
        let i = b.new_local();
        b.assign_to(sum, Rvalue::Use(Operand::Const(0)));
        b.assign_to(i, Rvalue::Use(Operand::Local(0)));
        let head = b.goto_new();
        b.switch_to(head);
        let c = b.assign_cmp(CmpOp::Gt, Operand::Local(i), Operand::Const(0));
        let (body, done) = b.branch(Operand::Local(c));
        b.switch_to(body);
        b.assign_to(
            sum,
            Rvalue::BinOp(BinOp::Add, Operand::Local(sum), Operand::Local(i)),
        );
        b.assign_to(
            i,
            Rvalue::BinOp(BinOp::Sub, Operand::Local(i), Operand::Const(1)),
        );
        b.goto(head);
        b.switch_to(done);
        b.ret(Operand::Local(sum));
        let f = b.finish();

        let mut p = MirProgram::with_entry("sum_to_n");
        p.add_function(f);
        p.validate().unwrap();
        assert_eq!(crate::mir::Interp::new(&p, 10_000).run(&[10]).unwrap(), 55);
        assert_eq!(crate::mir::Interp::new(&p, 10_000).run(&[0]).unwrap(), 0);
    }

    #[test]
    fn lines_increase_monotonically() {
        let mut b = FunctionBuilder::new("f", 0, "f.c", 0);
        let x = b.assign(Rvalue::Use(Operand::Const(1)));
        let _ = b.assign(Rvalue::BinOp(
            BinOp::Add,
            Operand::Local(x),
            Operand::Const(2),
        ));
        b.ret(Operand::Const(0));
        let f = b.finish();
        let lines: Vec<u32> = f.blocks[0].stmts.iter().map(|s| s.line()).collect();
        assert_eq!(lines, vec![1, 2]);
        assert_eq!(f.blocks[0].term_line, 3);
    }

    #[test]
    #[should_panic(expected = "never sealed")]
    fn unsealed_block_panics() {
        let mut b = FunctionBuilder::new("f", 0, "f.c", 0);
        let _ = b.new_block();
        b.ret(Operand::Const(0));
        let _ = b.finish();
    }
}
