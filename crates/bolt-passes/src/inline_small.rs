//! Pass 5: inline small functions.
//!
//! BOLT's inliner is deliberately limited (paper section 4): the compiler
//! already took the big wins, so BOLT only inlines tiny callees at hot
//! call sites — opportunities exposed by more accurate profile data, ICP,
//! or cross-module calls the compiler could not see.
//!
//! Binary-level inlining must deal with the callee's frame: we support
//! callees with the standard `push rbp; mov rbp,rsp; sub rsp,N` prologue
//! by rewriting their `rbp`-relative slots to addresses below the
//! caller's stack pointer (the red zone), after deleting the frame setup.

use bolt_ir::{BinaryContext, BinaryInst, BlockId};
use bolt_isa::{AluOp, Inst, Mem, Reg};

/// Maximum callee body size (instructions after frame stripping).
const MAX_INLINE_INSTS: usize = 12;
/// Minimum call-site execution count.
const MIN_SITE_COUNT: u64 = 1;

/// A callee body prepared for splicing: frame-free instructions.
struct InlinableBody {
    insts: Vec<BinaryInst>,
}

/// Checks whether `callee` can be inlined and returns its prepared body.
///
/// Requirements: single block, standard or absent frame, no calls, no
/// indirect control flow, no landing pads, memory access limited to its
/// own negative `rbp` slots and RIP-relative data.
fn prepare_callee(ctx: &BinaryContext, fi: usize) -> Option<InlinableBody> {
    let func = &ctx.functions[fi];
    if !func.may_transform() || func.folded_into.is_some() || func.layout.len() != 1 {
        return None;
    }
    let block = func.block(func.entry());
    if block.is_landing_pad {
        return None;
    }
    let insts = &block.insts;
    // Strip the standard prologue/epilogue if present.
    // Prologue: push rbp; mov rbp, rsp; [sub rsp, N]
    // Epilogue: [add rsp, N]; pop rbp; ret
    let mut body: Vec<BinaryInst> = Vec::new();
    let mut i = 0;
    let mut has_frame = false;
    if insts.len() >= 2
        && insts[0].inst == Inst::Push(Reg::Rbp)
        && insts[1].inst
            == (Inst::MovRR {
                dst: Reg::Rbp,
                src: Reg::Rsp,
            })
    {
        has_frame = true;
        i = 2;
        if let Some(inst) = insts.get(2) {
            if matches!(
                inst.inst,
                Inst::AluI {
                    op: AluOp::Sub,
                    dst: Reg::Rsp,
                    ..
                }
            ) {
                i = 3;
            }
        }
    }
    let mut j = insts.len();
    if insts.last().map(|x| x.inst.is_return()) != Some(true) {
        return None;
    }
    j -= 1; // drop ret
    if has_frame {
        if j == 0 || insts[j - 1].inst != Inst::Pop(Reg::Rbp) {
            return None;
        }
        j -= 1;
        if j > 0
            && matches!(
                insts[j - 1].inst,
                Inst::AluI {
                    op: AluOp::Add,
                    dst: Reg::Rsp,
                    ..
                }
            )
        {
            j -= 1;
        }
    }
    if i > j {
        return None;
    }
    for inst in &insts[i..j] {
        if inst.inst.is_call() || inst.inst.is_terminator() || inst.landing_pad.is_some() {
            return None;
        }
        // Memory discipline: only own-frame slots or RIP-relative.
        let mem_ok = |m: &Mem| -> bool {
            match m {
                Mem::BaseDisp { base, disp } => *base == Reg::Rbp && *disp < 0 && has_frame,
                Mem::BaseIndexScale { base, index, .. } => {
                    *base != Reg::Rbp && *base != Reg::Rsp && *index != Reg::Rbp
                }
                Mem::RipRel { .. } => true,
            }
        };
        let ok = match &inst.inst {
            Inst::Load { mem, .. } | Inst::Store { mem, .. } | Inst::Lea { mem, .. } => mem_ok(mem),
            Inst::Push(_) | Inst::Pop(_) => false,
            _ => true,
        };
        if !ok {
            return None;
        }
        // Callee must not read rbp for anything else.
        if !has_frame && inst.inst.regs_read().contains(&Reg::Rbp) {
            return None;
        }
        body.push(inst.clone());
    }
    if body.len() > MAX_INLINE_INSTS {
        return None;
    }
    // Rewrite rbp slots to red-zone rsp addressing: callee's `-(k)(%rbp)`
    // is `-(16 + k)(%rsp)` at the (inlined) call site: the missing return
    // address and saved rbp account for 16 bytes.
    for inst in &mut body {
        let fix = |m: &mut Mem| {
            if let Mem::BaseDisp { base, disp } = m {
                if *base == Reg::Rbp {
                    *base = Reg::Rsp;
                    *disp -= 16;
                }
            }
        };
        match &mut inst.inst {
            Inst::Load { mem, .. } | Inst::Store { mem, .. } | Inst::Lea { mem, .. } => fix(mem),
            _ => {}
        }
    }
    Some(InlinableBody { insts: body })
}

/// Runs the pass; returns the number of call sites inlined.
pub fn run_inline_small(ctx: &mut BinaryContext) -> u64 {
    let mut n = 0;
    // Plan: (caller, block, inst idx, callee).
    let mut plans: Vec<(usize, BlockId, usize, usize)> = Vec::new();
    for (fi, func) in ctx.functions.iter().enumerate() {
        if !func.may_transform() || func.folded_into.is_some() {
            continue;
        }
        for &id in &func.layout {
            let block = func.block(id);
            if block.exec_count < MIN_SITE_COUNT {
                continue;
            }
            for (k, inst) in block.insts.iter().enumerate() {
                if inst.landing_pad.is_some() {
                    continue;
                }
                let Inst::Call { target } = inst.inst else {
                    continue;
                };
                let Some(addr) = target.addr() else { continue };
                let Some(orig_ti) = ctx.function_at(addr) else {
                    continue;
                };
                // Only calls that land exactly on a function entry.
                if ctx.functions[orig_ti].address != addr {
                    continue;
                }
                // Inline the ICF keeper's body (identical by construction).
                let ti = crate::icf::resolve_fold(ctx, orig_ti);
                if ti == fi {
                    continue;
                }
                plans.push((fi, id, k, ti));
            }
        }
    }
    plans.sort_by_key(|p| std::cmp::Reverse((p.0, p.1, p.2)));
    for (fi, id, k, ti) in plans {
        if fi == ti {
            continue;
        }
        let Some(body) = prepare_callee(ctx, ti) else {
            continue;
        };
        let func = &mut ctx.functions[fi];
        // Replace the call instruction with the body.
        func.block_mut(id).insts.remove(k);
        for (off, inst) in body.insts.into_iter().enumerate() {
            func.block_mut(id).insts.insert(k + off, inst);
        }
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_ir::{BasicBlock, BinaryFunction};
    use bolt_isa::Target;

    /// A tiny frameless callee: mov rax, 42; ret.
    fn tiny_callee(addr: u64) -> BinaryFunction {
        let mut f = BinaryFunction::new("tiny", addr);
        f.size = 8;
        let b = f.add_block(BasicBlock::new());
        f.block_mut(b).push(Inst::MovRI {
            dst: Reg::Rax,
            imm: 42,
        });
        f.block_mut(b).push(Inst::Ret);
        f
    }

    /// A framed callee: standard prologue + slot store/load + epilogue.
    fn framed_callee(addr: u64) -> BinaryFunction {
        let mut f = BinaryFunction::new("framed", addr);
        f.size = 24;
        let b = f.add_block(BasicBlock::new());
        let blk = f.block_mut(b);
        blk.push(Inst::Push(Reg::Rbp));
        blk.push(Inst::MovRR {
            dst: Reg::Rbp,
            src: Reg::Rsp,
        });
        blk.push(Inst::AluI {
            op: AluOp::Sub,
            dst: Reg::Rsp,
            imm: 16,
        });
        blk.push(Inst::Store {
            mem: Mem::base(Reg::Rbp, -8),
            src: Reg::Rdi,
        });
        blk.push(Inst::Load {
            dst: Reg::Rax,
            mem: Mem::base(Reg::Rbp, -8),
        });
        blk.push(Inst::AluI {
            op: AluOp::Add,
            dst: Reg::Rsp,
            imm: 16,
        });
        blk.push(Inst::Pop(Reg::Rbp));
        blk.push(Inst::Ret);
        f
    }

    fn caller(addr: u64, target: u64) -> BinaryFunction {
        let mut f = BinaryFunction::new("caller", addr);
        f.size = 16;
        f.exec_count = 100;
        let b = f.add_block(BasicBlock::new());
        f.block_mut(b).exec_count = 100;
        f.block_mut(b).push(Inst::Call {
            target: Target::Addr(target),
        });
        f.block_mut(b).push(Inst::Ret);
        f
    }

    #[test]
    fn tiny_leaf_inlined() {
        let mut ctx = BinaryContext::new();
        ctx.add_function(tiny_callee(0x9000));
        ctx.add_function(caller(0x1000, 0x9000));
        assert_eq!(run_inline_small(&mut ctx), 1);
        let f = &ctx.functions[1];
        assert!(
            !f.blocks[0].insts.iter().any(|i| i.inst.is_call()),
            "call replaced by body"
        );
        assert!(f.blocks[0].insts.iter().any(|i| i.inst
            == Inst::MovRI {
                dst: Reg::Rax,
                imm: 42
            }));
        f.validate().unwrap();
    }

    #[test]
    fn framed_callee_inlined_with_red_zone_rewrite() {
        let mut ctx = BinaryContext::new();
        ctx.add_function(framed_callee(0x9000));
        ctx.add_function(caller(0x1000, 0x9000));
        assert_eq!(run_inline_small(&mut ctx), 1);
        let f = &ctx.functions[1];
        // The inlined slot access must now be rsp-relative below zero.
        let has_redzone = f.blocks[0].insts.iter().any(|i| {
            matches!(
                i.inst,
                Inst::Store {
                    mem: Mem::BaseDisp {
                        base: Reg::Rsp,
                        disp: -24
                    },
                    ..
                }
            )
        });
        assert!(
            has_redzone,
            "rbp slot rewritten to red zone: {:?}",
            f.blocks[0].insts
        );
        // No frame manipulation survives.
        assert!(!f.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i.inst, Inst::Push(Reg::Rbp) | Inst::Pop(Reg::Rbp))));
    }

    #[test]
    fn multi_block_callee_not_inlined() {
        let mut ctx = BinaryContext::new();
        let mut callee = tiny_callee(0x9000);
        let b2 = callee.add_block(BasicBlock::new());
        callee.block_mut(b2).push(Inst::Ret);
        ctx.add_function(callee);
        ctx.add_function(caller(0x1000, 0x9000));
        assert_eq!(run_inline_small(&mut ctx), 0);
    }

    #[test]
    fn cold_sites_not_inlined() {
        let mut ctx = BinaryContext::new();
        ctx.add_function(tiny_callee(0x9000));
        let mut c = caller(0x1000, 0x9000);
        c.block_mut(BlockId(0)).exec_count = 0;
        ctx.add_function(c);
        assert_eq!(run_inline_small(&mut ctx), 0);
    }
}
