//! Pass 6: `simplify-ro-loads` — loads from statically known read-only
//! locations become immediate moves, trading D-cache pressure for I-cache
//! bytes. BOLT's policy (paper section 4): abort if the new encoding is
//! larger than the original load.

use bolt_ir::BinaryContext;
use bolt_isa::{encoded_len, Inst, Mem, Target};

/// Runs the pass; returns the number of loads simplified.
pub fn run_simplify_ro_loads(ctx: &mut BinaryContext) -> u64 {
    let mut n = 0;
    // Collect rewrites per function to satisfy the borrow checker (we read
    // ctx.rodata while mutating functions).
    for fi in 0..ctx.functions.len() {
        if !ctx.functions[fi].may_transform() {
            continue;
        }
        let mut rewrites = Vec::new();
        for &id in &ctx.functions[fi].layout {
            for (k, inst) in ctx.functions[fi].block(id).insts.iter().enumerate() {
                if let Inst::Load {
                    dst,
                    mem:
                        Mem::RipRel {
                            target: Target::Addr(a),
                        },
                } = inst.inst
                {
                    if let Some(value) = ctx.read_rodata_u64(a) {
                        let new = Inst::MovRI {
                            dst,
                            imm: value as i64,
                        };
                        if encoded_len(&new) <= encoded_len(&inst.inst) {
                            rewrites.push((id, k, new));
                        }
                    }
                }
            }
        }
        for (id, k, new) in rewrites {
            ctx.functions[fi].block_mut(id).insts[k].inst = new;
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_ir::{BasicBlock, BinaryFunction};
    use bolt_isa::Reg;

    fn ctx_with_rodata(values: &[(u64, u64)]) -> BinaryContext {
        let mut ctx = BinaryContext::new();
        let base = 0x500000u64;
        let max = values.iter().map(|(a, _)| *a).max().unwrap_or(base) + 8;
        let mut data = vec![0u8; (max - base) as usize];
        for (a, v) in values {
            let off = (*a - base) as usize;
            data[off..off + 8].copy_from_slice(&v.to_le_bytes());
        }
        ctx.rodata.push((base, data));
        ctx
    }

    fn load_func(addr: u64, target: u64) -> BinaryFunction {
        let mut f = BinaryFunction::new("f", addr);
        let b = f.add_block(BasicBlock::new());
        f.block_mut(b).push(Inst::Load {
            dst: Reg::Rax,
            mem: Mem::rip(Target::Addr(target)),
        });
        f.block_mut(b).push(Inst::Ret);
        f
    }

    #[test]
    fn small_constant_simplified() {
        let mut ctx = ctx_with_rodata(&[(0x500000, 42)]);
        ctx.add_function(load_func(0x1000, 0x500000));
        assert_eq!(run_simplify_ro_loads(&mut ctx), 1);
        assert_eq!(
            ctx.functions[0].blocks[0].insts[0].inst,
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 42
            }
        );
    }

    #[test]
    fn large_constant_kept_as_load() {
        // A 64-bit constant needs a 10-byte movabs > 7-byte load: abort.
        let mut ctx = ctx_with_rodata(&[(0x500000, 0x1234_5678_9ABC_DEF0)]);
        ctx.add_function(load_func(0x1000, 0x500000));
        assert_eq!(run_simplify_ro_loads(&mut ctx), 0);
        assert!(matches!(
            ctx.functions[0].blocks[0].insts[0].inst,
            Inst::Load { .. }
        ));
    }

    #[test]
    fn writable_data_never_simplified() {
        // Address not covered by any rodata range.
        let mut ctx = ctx_with_rodata(&[(0x500000, 42)]);
        ctx.add_function(load_func(0x1000, 0x600000));
        assert_eq!(run_simplify_ro_loads(&mut ctx), 0);
    }
}
