//! Pass 13: `reorder-functions` — applies HFSort (paper Table 1, pass 13)
//! over the profile-derived call graph.

use bolt_hfsort::{order_functions, Algorithm, CallGraph};
use bolt_ir::BinaryContext;

/// Builds the call graph from the context and returns the new emission
/// order (indices into `ctx.functions`, folded functions excluded).
pub fn run_reorder_functions(ctx: &BinaryContext, algo: Algorithm) -> Vec<usize> {
    let live: Vec<usize> = (0..ctx.functions.len())
        .filter(|&i| ctx.functions[i].folded_into.is_none())
        .collect();
    if algo == Algorithm::None {
        return live;
    }
    let mut cg = CallGraph::new();
    let mut node_of = vec![usize::MAX; ctx.functions.len()];
    for &i in &live {
        let f = &ctx.functions[i];
        node_of[i] = cg.add_node(&f.name, f.size.max(1), f.exec_count);
    }
    for (&(caller, callee), &w) in &ctx.call_graph {
        let c = crate::icf::resolve_fold(ctx, caller);
        let t = crate::icf::resolve_fold(ctx, callee);
        if node_of.get(c).copied().unwrap_or(usize::MAX) == usize::MAX
            || node_of.get(t).copied().unwrap_or(usize::MAX) == usize::MAX
        {
            continue;
        }
        cg.add_edge(node_of[c], node_of[t], w);
    }
    let node_order = order_functions(&cg, algo);
    node_order.into_iter().map(|n| live[n]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_ir::{BasicBlock, BinaryFunction};
    use bolt_isa::Inst;

    fn func(name: &str, addr: u64, exec: u64) -> BinaryFunction {
        let mut f = BinaryFunction::new(name, addr);
        f.size = 64;
        f.exec_count = exec;
        let b = f.add_block(BasicBlock::new());
        f.block_mut(b).push(Inst::Ret);
        f
    }

    #[test]
    fn order_covers_all_live_functions() {
        let mut ctx = BinaryContext::new();
        ctx.add_function(func("cold", 0x1000, 0));
        ctx.add_function(func("main", 0x2000, 100));
        ctx.add_function(func("hot", 0x3000, 5000));
        ctx.call_graph.insert((1, 2), 5000);
        let order = run_reorder_functions(&ctx, Algorithm::HfsortPlus);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        assert_ne!(order[0], 0, "cold function does not lead");
    }

    #[test]
    fn folded_functions_excluded() {
        let mut ctx = BinaryContext::new();
        ctx.add_function(func("a", 0x1000, 10));
        let mut b = func("b", 0x2000, 10);
        b.folded_into = Some(0);
        ctx.add_function(b);
        let order = run_reorder_functions(&ctx, Algorithm::Hfsort);
        assert_eq!(order, vec![0]);
    }
}
