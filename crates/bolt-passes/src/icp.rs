//! Pass 3: indirect-call promotion.
//!
//! A hot indirect call with a dominant target becomes a guarded direct
//! call, turning an unpredictable indirect branch into a compare plus a
//! direct call the predictor handles trivially (paper Table 1, pass 3).
//!
//! The transformation needs a scratch register that is dead at the call
//! site; BOLT uses its dataflow framework for exactly this (paper
//! section 4), and so do we.

use bolt_ir::{dataflow, BasicBlock, BinaryContext, BlockId, RegSet, SuccEdge};
use bolt_isa::{AluOp, Cond, Inst, JumpWidth, Label, Reg, Rm, Target};

/// Runs the pass; returns the number of call sites promoted.
pub fn run_icp(ctx: &mut BinaryContext, threshold: f64) -> u64 {
    let mut n = 0;
    // Collect the planned promotions first: (func, block, inst idx,
    // target function address).
    let mut plans: Vec<(usize, BlockId, usize, u64)> = Vec::new();
    for (fi, func) in ctx.functions.iter().enumerate() {
        if !func.may_transform() || func.folded_into.is_some() {
            continue;
        }
        let facts = dataflow::solve(func, &dataflow::Liveness);
        for &id in &func.layout {
            let live = dataflow::live_before_each(func, id, &facts);
            for (k, inst) in func.block(id).insts.iter().enumerate() {
                let Inst::CallInd {
                    rm: Rm::Reg(target_reg),
                } = inst.inst
                else {
                    continue;
                };
                let Some(targets) = ctx.indirect_call_targets.get(&inst.addr) else {
                    continue;
                };
                let total: u64 = targets.iter().map(|(_, c)| c).sum();
                if total == 0 {
                    continue;
                }
                let Some(&(hot_fi, hot_count)) = targets.iter().max_by_key(|(_, c)| *c) else {
                    continue;
                };
                if (hot_count as f64) < threshold * total as f64 {
                    continue;
                }
                // Need a dead scratch register != the target register.
                let live_here: RegSet = live[k];
                let scratch = Reg::CALLER_SAVED
                    .iter()
                    .find(|r| **r != target_reg && !live_here.contains(**r));
                if scratch.is_none() {
                    continue;
                }
                let hot_addr = ctx.functions[hot_fi].address;
                plans.push((fi, id, k, hot_addr));
            }
        }
    }

    // Apply plans per function, later instruction indices first so earlier
    // indices stay valid.
    plans.sort_by_key(|p| std::cmp::Reverse((p.0, p.1, p.2)));
    for (fi, id, k, hot_addr) in plans {
        if promote(ctx, fi, id, k, hot_addr) {
            n += 1;
        }
    }
    n
}

/// Rewrites one indirect call site into:
///
/// ```text
///   ...head...
///   movabs $hot, %scratch
///   cmpq %scratch, %target
///   jne Lind
///   callq hot            ; direct-call block
///   jmp  Ljoin
/// Lind:
///   callq *%target       ; fallback block
/// Ljoin:
///   ...tail...
/// ```
fn promote(ctx: &mut BinaryContext, fi: usize, id: BlockId, k: usize, hot_addr: u64) -> bool {
    // Recompute scratch (conservatively) at application time.
    let func = &ctx.functions[fi];
    let facts = dataflow::solve(func, &dataflow::Liveness);
    let live = dataflow::live_before_each(func, id, &facts);
    let Inst::CallInd {
        rm: Rm::Reg(target_reg),
    } = func.block(id).insts[k].inst
    else {
        return false;
    };
    let Some(&scratch) = Reg::CALLER_SAVED
        .iter()
        .find(|r| **r != target_reg && !live[k].contains(**r))
    else {
        return false;
    };

    let func = &mut ctx.functions[fi];
    let call_inst = func.block(id).insts[k].clone();
    let count = func.block(id).exec_count;

    // Split: head keeps insts[..k]; tail gets insts[k+1..] + terminator +
    // succs.
    let tail_insts: Vec<_> = func.block_mut(id).insts.split_off(k + 1);
    func.block_mut(id).insts.pop(); // the indirect call

    let head_succs = std::mem::take(&mut func.block_mut(id).succs);

    let direct_id = BlockId(func.blocks.len() as u32);
    func.blocks.push(BasicBlock::new());
    let fallback_id = BlockId(func.blocks.len() as u32);
    func.blocks.push(BasicBlock::new());
    let join_id = BlockId(func.blocks.len() as u32);
    func.blocks.push(BasicBlock::new());

    // Head: guard sequence.
    {
        let head = func.block_mut(id);
        head.push(Inst::MovRSym {
            dst: scratch,
            target: Target::Addr(hot_addr),
        });
        head.push(Inst::Alu {
            op: AluOp::Cmp,
            dst: target_reg,
            src: scratch,
        });
        head.push(Inst::Jcc {
            cond: Cond::Ne,
            target: Target::Label(Label(fallback_id.0)),
            width: JumpWidth::Near,
        });
        head.succs = vec![
            SuccEdge::with_count(fallback_id, count / 10),
            SuccEdge::with_count(direct_id, count.saturating_sub(count / 10)),
        ];
    }
    // Direct-call block.
    {
        let mut direct_call = call_inst.clone();
        direct_call.inst = Inst::Call {
            target: Target::Addr(hot_addr),
        };
        let b = func.block_mut(direct_id);
        b.exec_count = count.saturating_sub(count / 10);
        b.insts.push(direct_call);
        b.push(Inst::Jmp {
            target: Target::Label(Label(join_id.0)),
            width: JumpWidth::Near,
        });
        b.succs = vec![SuccEdge::with_count(join_id, b.exec_count)];
    }
    // Fallback block keeps the original indirect call.
    {
        let b = func.block_mut(fallback_id);
        b.exec_count = count / 10;
        b.insts.push(call_inst);
        b.succs = vec![SuccEdge::with_count(join_id, b.exec_count)];
    }
    // Join block inherits the tail.
    {
        let b = func.block_mut(join_id);
        b.exec_count = count;
        b.insts = tail_insts;
        b.succs = head_succs;
    }

    // Layout: head, direct, fallback, join — inserted in place.
    let pos = func
        .layout
        .iter()
        .position(|b| *b == id)
        .expect("block is live");
    func.layout
        .splice(pos + 1..pos + 1, [direct_id, fallback_id, join_id]);
    if let Some(cold) = func.cold_start {
        if cold > pos {
            func.cold_start = Some(cold + 3);
        }
    }
    func.rebuild_preds();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_ir::{BinaryFunction, BinaryInst};

    fn icp_ctx(dominant: bool) -> BinaryContext {
        let mut ctx = BinaryContext::new();
        let mut hot = BinaryFunction::new("hot_target", 0x9000);
        hot.size = 4;
        let b = hot.add_block(BasicBlock::new());
        hot.block_mut(b).push(Inst::Ret);
        ctx.add_function(hot);
        let mut other = BinaryFunction::new("other", 0xA000);
        other.size = 4;
        let b = other.add_block(BasicBlock::new());
        other.block_mut(b).push(Inst::Ret);
        ctx.add_function(other);

        let mut caller = BinaryFunction::new("caller", 0x1000);
        caller.size = 32;
        let b = caller.add_block(BasicBlock::new());
        caller.block_mut(b).exec_count = 1000;
        caller.block_mut(b).insts.push(
            BinaryInst::new(Inst::CallInd {
                rm: Rm::Reg(Reg::R11),
            })
            .at(0x1004),
        );
        caller.block_mut(b).push(Inst::Ret);
        caller.exec_count = 1000;
        ctx.add_function(caller);

        let targets = if dominant {
            vec![(0usize, 950u64), (1usize, 50u64)]
        } else {
            vec![(0usize, 500u64), (1usize, 500u64)]
        };
        ctx.indirect_call_targets.insert(0x1004, targets);
        ctx
    }

    #[test]
    fn dominant_target_promoted() {
        let mut ctx = icp_ctx(true);
        assert_eq!(run_icp(&mut ctx, 0.51), 1);
        let f = &ctx.functions[2];
        f.validate().unwrap();
        // The guard compares against the hot target.
        let head = f.block(BlockId(0));
        assert!(head.insts.iter().any(|i| matches!(
            i.inst,
            Inst::MovRSym {
                target: Target::Addr(0x9000),
                ..
            }
        )));
        // A direct call to the hot target exists somewhere.
        let has_direct = f.layout.iter().any(|&b| {
            f.block(b).insts.iter().any(|i| {
                i.inst
                    == Inst::Call {
                        target: Target::Addr(0x9000),
                    }
            })
        });
        assert!(has_direct);
        // The fallback indirect call survives.
        let has_indirect = f.layout.iter().any(|&b| {
            f.block(b)
                .insts
                .iter()
                .any(|i| matches!(i.inst, Inst::CallInd { .. }))
        });
        assert!(has_indirect);
    }

    #[test]
    fn balanced_targets_not_promoted() {
        let mut ctx = icp_ctx(false);
        assert_eq!(run_icp(&mut ctx, 0.51), 0);
    }

    #[test]
    fn no_profile_no_promotion() {
        let mut ctx = icp_ctx(true);
        ctx.indirect_call_targets.clear();
        assert_eq!(run_icp(&mut ctx, 0.51), 0);
    }
}
