//! Passes 1, 4 and 10: `strip-rep-ret` and simple peepholes.

use bolt_ir::{BinaryContext, BinaryFunction, BlockId};
use bolt_isa::{AluOp, Cond, Inst, Mem, Target};

/// Pass 1: `repz retq` → `retq` (the `repz` prefix only matters for
/// ancient AMD branch predictors; dropping it saves a byte of I-cache per
/// return — paper section 4's "trade optional instruction-space choices
/// for I-cache space"). Whole-context wrapper over
/// [`strip_rep_ret_function`].
pub fn strip_rep_ret(ctx: &mut BinaryContext) -> u64 {
    ctx.functions.iter_mut().map(strip_rep_ret_function).sum()
}

/// Per-function `strip-rep-ret` kernel (pure: touches only `func`).
pub fn strip_rep_ret_function(func: &mut BinaryFunction) -> u64 {
    if !func.may_transform() {
        return 0;
    }
    let mut n = 0;
    for block in &mut func.blocks {
        for inst in &mut block.insts {
            if inst.inst == Inst::RepzRet {
                inst.inst = Inst::Ret;
                n += 1;
            }
        }
    }
    n
}

/// Passes 4/10: peepholes.
///
/// * *double jumps*: a branch targeting a block that contains only an
///   unconditional jump is retargeted to the final destination;
/// * *redundant test*: `op %r, ...; testq %r, %r; jcc` drops the test when
///   the ALU op already set the needed flags;
/// * *store-load forwarding*: `movq %rax, slot; movq slot, %rax` drops the
///   reload.
pub fn run_peepholes(ctx: &mut BinaryContext) -> u64 {
    ctx.functions.iter_mut().map(peepholes_function).sum()
}

/// Per-function peephole kernel (pure: touches only `func`).
pub fn peepholes_function(func: &mut BinaryFunction) -> u64 {
    if !func.may_transform() {
        return 0;
    }
    let mut n = 0;
    // --- double jumps ---
    // Find trampolines: blocks with exactly one instruction `jmp L`.
    let mut tramp: Vec<Option<BlockId>> = vec![None; func.blocks.len()];
    for &id in &func.layout {
        let b = func.block(id);
        if b.insts.len() == 1 && !b.is_landing_pad {
            if let Inst::Jmp {
                target: Target::Label(l),
                ..
            } = b.insts[0].inst
            {
                tramp[id.index()] = Some(BlockId(l.0));
            }
        }
    }
    // Retarget edges through trampolines (a single level per run; the
    // pass runs twice in the pipeline).
    for pos in 0..func.layout.len() {
        let id = func.layout[pos];
        // Collect rewrites first to appease the borrow checker.
        let rewrites: Vec<(BlockId, BlockId)> = func
            .block(id)
            .succs
            .iter()
            .filter_map(|e| tramp[e.block.index()].map(|t| (e.block, t)))
            .filter(|(from, to)| from != to)
            .collect();
        for (old, new) in rewrites {
            // Don't create duplicate edges.
            if func.block(id).succ_edge(new).is_some() {
                continue;
            }
            let term_is_label_branch = func.block(id).terminator().map(|t| {
                matches!(
                    t.inst,
                    Inst::Jcc {
                        target: Target::Label(_),
                        ..
                    } | Inst::Jmp {
                        target: Target::Label(_),
                        ..
                    }
                )
            });
            if term_is_label_branch != Some(true) {
                continue;
            }
            let block = func.block_mut(id);
            if let Some(term) = block.terminator_mut() {
                if term.inst.target() == Some(Target::Label(bolt_isa::Label(old.0))) {
                    term.inst.set_target(Target::Label(bolt_isa::Label(new.0)));
                    if let Some(e) = block.succ_edge_mut(old) {
                        e.block = new;
                    }
                    n += 1;
                }
            }
        }
    }
    // --- redundant test + store-load forwarding ---
    for id in func.layout.clone() {
        let block = func.block_mut(id);
        // Redundant test before a ZF/SF-only jcc.
        let len = block.insts.len();
        if len >= 2 {
            let cond_ok = matches!(
                block.insts.last().map(|i| i.inst),
                Some(Inst::Jcc {
                    cond: Cond::E | Cond::Ne | Cond::S | Cond::Ns,
                    ..
                })
            );
            if cond_ok && len >= 3 {
                let test_idx = len - 2;
                let alu_idx = len - 3;
                let redundant = match (&block.insts[alu_idx].inst, &block.insts[test_idx].inst) {
                    (
                        Inst::Alu { op, dst, .. } | Inst::AluI { op, dst, .. },
                        Inst::Test { a, b },
                    ) => *op != AluOp::Cmp && a == b && a == dst,
                    _ => false,
                };
                if redundant {
                    block.insts.remove(test_idx);
                    n += 1;
                }
            }
        }
        // Store-load forwarding over adjacent pairs.
        let mut i = 0;
        while i + 1 < block.insts.len() {
            let remove = match (&block.insts[i].inst, &block.insts[i + 1].inst) {
                (Inst::Store { mem: m1, src }, Inst::Load { dst, mem: m2 }) => {
                    m1 == m2 && src == dst && is_stack_slot(m1)
                }
                _ => false,
            };
            if remove {
                block.insts.remove(i + 1);
                n += 1;
            } else {
                i += 1;
            }
        }
    }
    func.rebuild_preds();
    n
}

fn is_stack_slot(m: &Mem) -> bool {
    matches!(
        m,
        Mem::BaseDisp {
            base: bolt_isa::Reg::Rbp,
            disp
        } if *disp < 0
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_ir::{BasicBlock, BinaryFunction, SuccEdge};
    use bolt_isa::{JumpWidth, Label, Reg};

    fn ctx_with(f: BinaryFunction) -> BinaryContext {
        let mut ctx = BinaryContext::new();
        ctx.add_function(f);
        ctx
    }

    #[test]
    fn strips_repz() {
        let mut f = BinaryFunction::new("f", 0x1000);
        let b = f.add_block(BasicBlock::new());
        f.block_mut(b).push(Inst::RepzRet);
        let mut ctx = ctx_with(f);
        assert_eq!(strip_rep_ret(&mut ctx), 1);
        assert_eq!(ctx.functions[0].block(BlockId(0)).insts[0].inst, Inst::Ret);
    }

    #[test]
    fn double_jump_retargeted() {
        // b0: jmp b1; b1: jmp b2; b2: ret
        let mut f = BinaryFunction::new("f", 0x1000);
        let b0 = f.add_block(BasicBlock::new());
        let b1 = f.add_block(BasicBlock::new());
        let b2 = f.add_block(BasicBlock::new());
        f.block_mut(b0).push(Inst::Jmp {
            target: Target::Label(Label(1)),
            width: JumpWidth::Near,
        });
        f.block_mut(b0).succs = vec![SuccEdge::with_count(b1, 10)];
        f.block_mut(b1).push(Inst::Jmp {
            target: Target::Label(Label(2)),
            width: JumpWidth::Near,
        });
        f.block_mut(b1).succs = vec![SuccEdge::with_count(b2, 10)];
        f.block_mut(b2).push(Inst::Ret);
        f.rebuild_preds();
        let mut ctx = ctx_with(f);
        let n = run_peepholes(&mut ctx);
        assert_eq!(n, 1);
        let f = &ctx.functions[0];
        assert_eq!(
            f.block(b0).terminator().unwrap().inst.target(),
            Some(Target::Label(Label(2)))
        );
        assert_eq!(f.block(b0).succs[0].block, b2);
        f.validate().unwrap();
    }

    #[test]
    fn redundant_test_removed() {
        let mut f = BinaryFunction::new("f", 0x1000);
        let b0 = f.add_block(BasicBlock::new());
        let b1 = f.add_block(BasicBlock::new());
        let b2 = f.add_block(BasicBlock::new());
        f.block_mut(b0).push(Inst::Alu {
            op: AluOp::Sub,
            dst: Reg::Rax,
            src: Reg::Rcx,
        });
        f.block_mut(b0).push(Inst::Test {
            a: Reg::Rax,
            b: Reg::Rax,
        });
        f.block_mut(b0).push(Inst::Jcc {
            cond: Cond::Ne,
            target: Target::Label(Label(2)),
            width: JumpWidth::Near,
        });
        f.block_mut(b0).succs = vec![SuccEdge::cold(b2), SuccEdge::cold(b1)];
        f.block_mut(b1).push(Inst::Ret);
        f.block_mut(b2).push(Inst::Ret);
        f.rebuild_preds();
        let mut ctx = ctx_with(f);
        assert_eq!(run_peepholes(&mut ctx), 1);
        assert_eq!(ctx.functions[0].block(b0).insts.len(), 2);
    }

    #[test]
    fn test_not_removed_after_cmp_or_for_unsigned_conds() {
        let mut f = BinaryFunction::new("f", 0x1000);
        let b0 = f.add_block(BasicBlock::new());
        let b1 = f.add_block(BasicBlock::new());
        let b2 = f.add_block(BasicBlock::new());
        // cmp does not write rax, so the test is NOT redundant.
        f.block_mut(b0).push(Inst::AluI {
            op: AluOp::Cmp,
            dst: Reg::Rax,
            imm: 1,
        });
        f.block_mut(b0).push(Inst::Test {
            a: Reg::Rax,
            b: Reg::Rax,
        });
        f.block_mut(b0).push(Inst::Jcc {
            cond: Cond::E,
            target: Target::Label(Label(2)),
            width: JumpWidth::Near,
        });
        f.block_mut(b0).succs = vec![SuccEdge::cold(b2), SuccEdge::cold(b1)];
        f.block_mut(b1).push(Inst::Ret);
        f.block_mut(b2).push(Inst::Ret);
        f.rebuild_preds();
        let mut ctx = ctx_with(f);
        assert_eq!(run_peepholes(&mut ctx), 0);
    }

    #[test]
    fn store_load_forwarded() {
        let slot = Mem::base(Reg::Rbp, -8);
        let mut f = BinaryFunction::new("f", 0x1000);
        let b0 = f.add_block(BasicBlock::new());
        f.block_mut(b0).push(Inst::Store {
            mem: slot,
            src: Reg::Rax,
        });
        f.block_mut(b0).push(Inst::Load {
            dst: Reg::Rax,
            mem: slot,
        });
        f.block_mut(b0).push(Inst::Ret);
        let mut ctx = ctx_with(f);
        assert_eq!(run_peepholes(&mut ctx), 1);
        assert_eq!(ctx.functions[0].block(b0).insts.len(), 2);
        // Different register: kept.
        let mut f = BinaryFunction::new("g", 0x2000);
        let b0 = f.add_block(BasicBlock::new());
        f.block_mut(b0).push(Inst::Store {
            mem: slot,
            src: Reg::Rax,
        });
        f.block_mut(b0).push(Inst::Load {
            dst: Reg::Rcx,
            mem: slot,
        });
        f.block_mut(b0).push(Inst::Ret);
        let mut ctx = ctx_with(f);
        assert_eq!(run_peepholes(&mut ctx), 0);
    }
}
