//! Pass 2/7: identical code folding.
//!
//! Folds functions whose normalized bodies are identical — including
//! functions with jump tables, which linker ICF cannot fold (paper
//! section 4: ~3% size reduction on HHVM beyond the linker's ICF).

use bolt_ir::{BinaryContext, BinaryFunction};
use bolt_isa::{Inst, Mem, Rm, Target};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A normalized rendering of a function body where intra-function targets
/// become block ordinals and cross-function targets become function
/// indices, making two structurally identical bodies compare equal.
fn normalize(ctx: &BinaryContext, func: &BinaryFunction) -> Option<Vec<u8>> {
    use std::io::Write;
    let mut out = Vec::new();
    // Block ordinal by id.
    let mut ordinal = vec![u32::MAX; func.blocks.len()];
    for (i, id) in func.layout.iter().enumerate() {
        ordinal[id.index()] = i as u32;
    }
    let norm_target = |t: Target, out: &mut Vec<u8>| -> Option<()> {
        match t {
            Target::Label(l) => {
                // Intra-function block reference.
                out.push(0xB0);
                out.extend_from_slice(&ordinal.get(l.0 as usize).copied()?.to_le_bytes());
            }
            Target::Addr(a) => {
                if let Some(fi) = ctx.function_at(a) {
                    let callee = &ctx.functions[fi];
                    if a == callee.address {
                        // Cross-function reference: use the final fold
                        // target so ICF converges transitively.
                        let resolved = callee.folded_into.unwrap_or(fi);
                        out.push(0xF0);
                        out.extend_from_slice(&(resolved as u64).to_le_bytes());
                        return Some(());
                    }
                    if !ordinal.is_empty() && fi == ctx.function_at(func.address)? {
                        // Address inside ourselves (shouldn't happen after
                        // CFG construction) — treat as opaque.
                    }
                }
                out.push(0xA0);
                out.extend_from_slice(&a.to_le_bytes());
            }
        }
        Some(())
    };
    for &id in &func.layout {
        let b = func.block(id);
        let _ = write!(
            out,
            "[{}:{}]",
            ordinal[id.index()],
            u8::from(b.is_landing_pad)
        );
        for inst in &b.insts {
            // Discriminant + operands, with targets normalized.
            let mut i = inst.inst;
            match &mut i {
                Inst::Jcc { target, .. }
                | Inst::Jmp { target, .. }
                | Inst::Call { target }
                | Inst::MovRSym { target, .. } => {
                    let t = *target;
                    *target = Target::Addr(0);
                    let _ = write!(out, "{i}");
                    norm_target(t, &mut out)?;
                    continue;
                }
                Inst::Load { mem, .. } | Inst::Store { mem, .. } | Inst::Lea { mem, .. } => {
                    if let Mem::RipRel { target } = mem {
                        let t = *target;
                        *target = Target::Addr(0);
                        let _ = write!(out, "{i}");
                        norm_target(t, &mut out)?;
                        continue;
                    }
                }
                Inst::JmpInd { rm } | Inst::CallInd { rm } => {
                    if let Rm::Mem(Mem::RipRel { target }) = rm {
                        let t = *target;
                        *target = Target::Addr(0);
                        let _ = write!(out, "{i}");
                        norm_target(t, &mut out)?;
                        continue;
                    }
                }
                _ => {}
            }
            let _ = write!(out, "{i}");
        }
        // Successor structure (normalized).
        for e in &b.succs {
            out.push(0xE0);
            out.extend_from_slice(&ordinal[e.block.index()].to_le_bytes());
        }
    }
    // Jump tables: same target ordinals in the same order fold fine.
    for jt in &func.jump_tables {
        out.push(0xD0);
        for t in &jt.targets {
            out.extend_from_slice(&ordinal[t.index()].to_le_bytes());
        }
    }
    Some(out)
}

/// Runs one ICF fixpoint; returns the number of functions folded.
pub fn run_icf(ctx: &mut BinaryContext) -> u64 {
    let mut folded = 0;
    // Iterate: folding can enable more folds (mutually recursive twins).
    for _round in 0..3 {
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut bodies: HashMap<usize, Vec<u8>> = HashMap::new();
        for (i, f) in ctx.functions.iter().enumerate() {
            if !f.may_transform() || f.folded_into.is_some() || f.name == "_start" {
                continue;
            }
            let Some(body) = normalize(ctx, f) else {
                continue;
            };
            let mut h = DefaultHasher::new();
            body.hash(&mut h);
            buckets.entry(h.finish()).or_default().push(i);
            bodies.insert(i, body);
        }
        let mut any = false;
        let mut keys: Vec<u64> = buckets.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            let group = &buckets[&k];
            if group.len() < 2 {
                continue;
            }
            // Keep the lowest-address function; fold exact matches into it.
            let mut sorted = group.clone();
            sorted.sort_by_key(|&i| ctx.functions[i].address);
            let keeper = sorted[0];
            for &other in &sorted[1..] {
                if bodies[&other] != bodies[&keeper] {
                    continue; // hash collision
                }
                let name = ctx.functions[other].name.clone();
                let exec = ctx.functions[other].exec_count;
                ctx.functions[other].folded_into = Some(keeper);
                ctx.functions[keeper].icf_aliases.push(name);
                ctx.functions[keeper].exec_count += exec;
                folded += 1;
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    ctx.reindex();
    folded
}

/// Resolves a function index through fold chains.
pub fn resolve_fold(ctx: &BinaryContext, mut idx: usize) -> usize {
    while let Some(next) = ctx.functions[idx].folded_into {
        idx = next;
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_ir::{BasicBlock, SuccEdge};
    use bolt_isa::{AluOp, Cond, JumpWidth, Label, Reg};

    fn twin(name: &str, addr: u64, imm: i32) -> BinaryFunction {
        let mut f = BinaryFunction::new(name, addr);
        f.size = 16;
        let b0 = f.add_block(BasicBlock::new());
        let b1 = f.add_block(BasicBlock::new());
        let b2 = f.add_block(BasicBlock::new());
        f.block_mut(b0).push(Inst::AluI {
            op: AluOp::Cmp,
            dst: Reg::Rdi,
            imm,
        });
        f.block_mut(b0).push(Inst::Jcc {
            cond: Cond::L,
            target: Target::Label(Label(2)),
            width: JumpWidth::Near,
        });
        f.block_mut(b0).succs = vec![SuccEdge::cold(b2), SuccEdge::cold(b1)];
        f.block_mut(b1).push(Inst::MovRI {
            dst: Reg::Rax,
            imm: 1,
        });
        f.block_mut(b1).push(Inst::Ret);
        f.block_mut(b2).push(Inst::MovRI {
            dst: Reg::Rax,
            imm: 0,
        });
        f.block_mut(b2).push(Inst::Ret);
        f.rebuild_preds();
        f
    }

    #[test]
    fn identical_functions_fold() {
        let mut ctx = BinaryContext::new();
        ctx.add_function(twin("a", 0x1000, 5));
        ctx.add_function(twin("b", 0x2000, 5));
        ctx.add_function(twin("c", 0x3000, 5));
        assert_eq!(run_icf(&mut ctx), 2);
        assert_eq!(ctx.functions[1].folded_into, Some(0));
        assert_eq!(ctx.functions[2].folded_into, Some(0));
        assert_eq!(ctx.functions[0].icf_aliases, vec!["b", "c"]);
        // Lookup through aliases works after reindex.
        assert_eq!(ctx.function_by_name("b").unwrap().name, "a");
    }

    #[test]
    fn different_functions_do_not_fold() {
        let mut ctx = BinaryContext::new();
        ctx.add_function(twin("a", 0x1000, 5));
        ctx.add_function(twin("b", 0x2000, 6)); // different immediate
        assert_eq!(run_icf(&mut ctx), 0);
    }

    #[test]
    fn fold_counts_transfer_exec_counts() {
        let mut ctx = BinaryContext::new();
        let mut a = twin("a", 0x1000, 5);
        a.exec_count = 10;
        let mut b = twin("b", 0x2000, 5);
        b.exec_count = 32;
        ctx.add_function(a);
        ctx.add_function(b);
        run_icf(&mut ctx);
        assert_eq!(ctx.functions[0].exec_count, 42);
    }

    #[test]
    fn functions_calling_identical_twins_fold_transitively() {
        // a/b identical; c calls a, d calls b: after folding a/b, c and d
        // normalize identically and fold too.
        let mut ctx = BinaryContext::new();
        ctx.add_function(twin("a", 0x1000, 5));
        ctx.add_function(twin("b", 0x2000, 5));
        for (name, addr, callee) in [("c", 0x3000u64, 0x1000u64), ("d", 0x4000, 0x2000)] {
            let mut f = BinaryFunction::new(name, addr);
            f.size = 8;
            let b0 = f.add_block(BasicBlock::new());
            f.block_mut(b0).push(Inst::Call {
                target: Target::Addr(callee),
            });
            f.block_mut(b0).push(Inst::Ret);
            ctx.add_function(f);
        }
        let folded = run_icf(&mut ctx);
        assert_eq!(folded, 2, "both the twins and their callers fold");
        assert_eq!(ctx.functions[3].folded_into, Some(2));
    }
}
