//! Passes 15 and 16: `frame-opts` and `shrink-wrapping`.
//!
//! `frame-opts` removes dead stack stores (typically parameter spills the
//! function never reloads). `shrink-wrapping` moves a callee-saved
//! register save/restore pair out of the prologue/epilogue and into the
//! single cold block that actually uses the register (paper Table 1,
//! passes 15–16).

use bolt_ir::{BinaryContext, BinaryFunction, BlockId};
use bolt_isa::{Inst, Mem, Reg};
use std::collections::HashSet;

/// Runs `frame-opts`; returns the number of dead stores removed.
/// Whole-context wrapper over [`frame_opts_function`].
pub fn run_frame_opts(ctx: &mut BinaryContext) -> u64 {
    ctx.functions.iter_mut().map(frame_opts_function).sum()
}

/// Per-function `frame-opts` kernel (pure: touches only `func`).
/// Removes stores to frame slots that are never read. Bails out if the
/// frame address escapes (any `lea` of `rbp`/`rsp`).
pub fn frame_opts_function(func: &mut BinaryFunction) -> u64 {
    if !func.may_transform() || func.folded_into.is_some() {
        return 0;
    }
    // Escape check.
    for &id in &func.layout {
        for inst in &func.block(id).insts {
            if let Inst::Lea { mem, .. } = &inst.inst {
                if mem.regs_used().any(|r| r == Reg::Rbp || r == Reg::Rsp) {
                    return 0;
                }
            }
            // Dynamic frame indexing defeats the slot analysis.
            if let Inst::Load { mem, .. } | Inst::Store { mem, .. } = &inst.inst {
                if let Mem::BaseIndexScale { base, .. } = mem {
                    if *base == Reg::Rbp || *base == Reg::Rsp {
                        return 0;
                    }
                }
            }
        }
    }
    // Slots read anywhere.
    let mut read: HashSet<(Reg, i32)> = HashSet::new();
    for &id in &func.layout {
        for inst in &func.block(id).insts {
            if let Inst::Load {
                mem: Mem::BaseDisp { base, disp },
                ..
            } = &inst.inst
            {
                if (*base == Reg::Rbp || *base == Reg::Rsp) && *disp < 0 {
                    read.insert((*base, *disp));
                }
            }
        }
    }
    // Remove never-read negative-slot stores.
    let mut removed = 0;
    for id in func.layout.clone() {
        let block = func.block_mut(id);
        let before = block.insts.len();
        block.insts.retain(|inst| {
            if let Inst::Store {
                mem: Mem::BaseDisp { base, disp },
                ..
            } = &inst.inst
            {
                if (*base == Reg::Rbp || *base == Reg::Rsp)
                    && *disp < 0
                    && !read.contains(&(*base, *disp))
                {
                    return false;
                }
            }
            true
        });
        removed += (before - block.insts.len()) as u64;
    }
    removed
}

/// Runs `shrink-wrapping`; returns the number of save/restore pairs moved.
/// Whole-context wrapper over [`shrink_wrap_function`].
pub fn run_shrink_wrapping(ctx: &mut BinaryContext) -> u64 {
    ctx.functions.iter_mut().map(shrink_wrap_function).sum()
}

/// Per-function `shrink-wrapping` kernel (pure: touches only `func`).
/// Moves the `push rbx` / `pop rbx` pair into the unique block using
/// `rbx`, when the prologue is hot and that block is colder. The pair is
/// placed around the block's body (before its terminator), relying on the
/// frame being `rbp`-based so a transient push does not perturb slot
/// addressing.
pub fn shrink_wrap_function(func: &mut BinaryFunction) -> u64 {
    if !func.may_transform() || func.folded_into.is_some() {
        return 0;
    }
    const REG: Reg = Reg::Rbx;
    let entry = func.entry();
    // Locate the save in the entry block.
    let save_idx = func
        .block(entry)
        .insts
        .iter()
        .position(|i| i.inst == Inst::Push(REG));
    let Some(save_idx) = save_idx else { return 0 };
    // The save must be part of the prologue (within the first 4 insts).
    if save_idx > 3 {
        return 0;
    }

    // Find all uses of rbx outside prologue/epilogue push/pop.
    let mut use_blocks: Vec<BlockId> = Vec::new();
    let mut restore_sites: Vec<(BlockId, usize)> = Vec::new();
    for &id in &func.layout {
        for (k, inst) in func.block(id).insts.iter().enumerate() {
            if id == entry && k == save_idx {
                continue;
            }
            if inst.inst == Inst::Pop(REG) {
                restore_sites.push((id, k));
                continue;
            }
            let uses =
                inst.inst.regs_read().contains(&REG) || inst.inst.regs_written().contains(&REG);
            if uses && !use_blocks.contains(&id) {
                use_blocks.push(id);
            }
        }
    }
    if restore_sites.is_empty() {
        return 0;
    }
    // Profitability + safety: a single using block, not the entry, colder
    // than the entry, with no calls (a call could clobber rbx... rbx is
    // callee-saved, but the callee's save/restore suffices; however the
    // use must not span blocks).
    if use_blocks.len() != 1 {
        return 0;
    }
    let target = use_blocks[0];
    if target == entry {
        return 0;
    }
    let entry_heat = func.block(entry).exec_count;
    let target_heat = func.block(target).exec_count;
    if target_heat * 2 >= entry_heat.max(1) {
        return 0; // not enough benefit
    }
    // The using block must contain the uses only between its start and
    // terminator, and must not itself end in a return (the pop must
    // execute before leaving).
    // Transform: remove prologue push + all epilogue pops; wrap target.
    func.block_mut(entry).insts.remove(save_idx);
    // Remove pops (walk in reverse order of collection to keep indices
    // valid — each (block, idx) is unique per block here).
    let mut by_block: std::collections::HashMap<BlockId, Vec<usize>> = Default::default();
    for (b, k) in restore_sites {
        by_block.entry(b).or_default().push(k);
    }
    for (b, mut idxs) in by_block {
        idxs.sort_unstable_by(|a, b| b.cmp(a));
        for k in idxs {
            func.block_mut(b).insts.remove(k);
        }
    }
    // Wrap the using block.
    let block = func.block_mut(target);
    let term_pos = if block.terminator().is_some() {
        block.insts.len() - 1
    } else {
        block.insts.len()
    };
    block.insts.insert(term_pos, Inst::Pop(REG).into());
    block.insts.insert(0, Inst::Push(REG).into());
    1
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_ir::{edges, BasicBlock};
    use bolt_isa::{AluOp, Cond, JumpWidth, Label, Target};

    #[test]
    fn dead_param_spill_removed() {
        let mut f = BinaryFunction::new("f", 0x1000);
        let b = f.add_block(BasicBlock::new());
        let blk = f.block_mut(b);
        blk.push(Inst::Store {
            mem: Mem::base(Reg::Rbp, -8),
            src: Reg::Rdi,
        });
        blk.push(Inst::Store {
            mem: Mem::base(Reg::Rbp, -16),
            src: Reg::Rsi,
        });
        blk.push(Inst::Load {
            dst: Reg::Rax,
            mem: Mem::base(Reg::Rbp, -8),
        });
        blk.push(Inst::Ret);
        let mut ctx = BinaryContext::new();
        ctx.add_function(f);
        assert_eq!(run_frame_opts(&mut ctx), 1, "only the -16 spill is dead");
        let f = &ctx.functions[0];
        assert_eq!(f.block(BlockId(0)).insts.len(), 3);
    }

    #[test]
    fn escaping_frame_blocks_the_pass() {
        let mut f = BinaryFunction::new("f", 0x1000);
        let b = f.add_block(BasicBlock::new());
        let blk = f.block_mut(b);
        blk.push(Inst::Store {
            mem: Mem::base(Reg::Rbp, -8),
            src: Reg::Rdi,
        });
        blk.push(Inst::Lea {
            dst: Reg::Rax,
            mem: Mem::base(Reg::Rbp, -8),
        });
        blk.push(Inst::Ret);
        let mut ctx = BinaryContext::new();
        ctx.add_function(f);
        assert_eq!(run_frame_opts(&mut ctx), 0);
    }

    /// prologue saves rbx; only a cold block uses it.
    fn shrink_candidate() -> BinaryFunction {
        let mut f = BinaryFunction::new("f", 0x1000);
        f.exec_count = 1000;
        let b0 = f.add_block(BasicBlock::new());
        let hot = f.add_block(BasicBlock::new());
        let cold = f.add_block(BasicBlock::new());
        {
            let blk = f.block_mut(b0);
            blk.exec_count = 1000;
            blk.push(Inst::Push(Reg::Rbp));
            blk.push(Inst::MovRR {
                dst: Reg::Rbp,
                src: Reg::Rsp,
            });
            blk.push(Inst::Push(Reg::Rbx));
            blk.push(Inst::AluI {
                op: AluOp::Sub,
                dst: Reg::Rsp,
                imm: 16,
            });
            blk.push(Inst::Jcc {
                cond: Cond::E,
                target: Target::Label(Label(2)),
                width: JumpWidth::Near,
            });
            blk.succs = edges(&[(2, 1), (1, 999)]);
        }
        {
            let blk = f.block_mut(hot);
            blk.exec_count = 999;
            blk.push(Inst::AluI {
                op: AluOp::Add,
                dst: Reg::Rsp,
                imm: 16,
            });
            blk.push(Inst::Pop(Reg::Rbx));
            blk.push(Inst::Pop(Reg::Rbp));
            blk.push(Inst::Ret);
        }
        {
            let blk = f.block_mut(cold);
            blk.exec_count = 1;
            blk.push(Inst::MovRI {
                dst: Reg::Rbx,
                imm: 7,
            });
            blk.push(Inst::Imul {
                dst: Reg::Rax,
                src: Reg::Rbx,
            });
            blk.push(Inst::Jmp {
                target: Target::Label(Label(1)),
                width: JumpWidth::Near,
            });
            blk.succs = edges(&[(1, 1)]);
        }
        f.rebuild_preds();
        f
    }

    #[test]
    fn cold_use_shrink_wrapped() {
        let mut ctx = BinaryContext::new();
        ctx.add_function(shrink_candidate());
        assert_eq!(run_shrink_wrapping(&mut ctx), 1);
        let f = &ctx.functions[0];
        // Prologue no longer pushes rbx.
        assert!(!f
            .block(BlockId(0))
            .insts
            .iter()
            .any(|i| i.inst == Inst::Push(Reg::Rbx)));
        // Epilogue no longer pops rbx.
        assert!(!f
            .block(BlockId(1))
            .insts
            .iter()
            .any(|i| i.inst == Inst::Pop(Reg::Rbx)));
        // The cold block is wrapped.
        let cold = f.block(BlockId(2));
        assert_eq!(cold.insts.first().unwrap().inst, Inst::Push(Reg::Rbx));
        let n = cold.insts.len();
        assert_eq!(cold.insts[n - 2].inst, Inst::Pop(Reg::Rbx));
        f.validate().unwrap();
    }

    #[test]
    fn hot_use_not_wrapped() {
        let mut f = shrink_candidate();
        // Make the use block hot: no benefit.
        f.block_mut(BlockId(2)).exec_count = 900;
        let mut ctx = BinaryContext::new();
        ctx.add_function(f);
        assert_eq!(run_shrink_wrapping(&mut ctx), 0);
    }
}
