//! The [`PassManager`]: a registry-driven replacement for the former
//! hand-inlined sixteen-stanza pipeline.
//!
//! Each Table-1 transformation implements [`Pass`]; the manager owns the
//! registration order, gates every pass on [`PassOptions`], validates IR
//! invariants between passes (in debug builds), and records a
//! [`PassReport`](crate::PassReport) per executed pass carrying the
//! change count, the wall-clock duration (`-time-passes`-style), and —
//! when [`ManagerConfig::collect_dyno`] is set — before/after
//! [`DynoStats`](crate::DynoStats) so per-pass dyno deltas can be
//! attributed.
//!
//! Extending the pipeline means implementing [`Pass`] and calling
//! [`PassManager::register`]; nothing else in the crate needs editing.
//! The same pass type may be registered repeatedly (the Table-1 order
//! runs `icf` and `peepholes` twice); repeated instances are
//! distinguished in validation messages and timing output as e.g.
//! `icf(2)`.

use crate::function_pass::{panic_message, resolve_threads, run_function_pass_with, FunctionPass};
use crate::reorder_functions;
use crate::{
    dyno, fixup, frame, icf, icp, inline_small, layout, peephole, plt, ro_loads, sctc, uce,
    PassFailure, PassOptions, PassReport, PipelineResult,
};
use bolt_ir::{BinaryContext, BinaryFunction};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// One pipeline transformation.
///
/// Passes are constructed from [`PassOptions`] at registration time (the
/// options a pass needs — ICP's threshold, the layout modes — are baked
/// into its struct), so `run` only sees the context. `enabled`
/// re-consults the options passed to [`PassManager::run`], which gate
/// the boolean on/off toggles only; to change *parameterized* options,
/// rebuild the manager with [`PassManager::standard`] rather than
/// passing a different option set to `run`.
pub trait Pass {
    /// The report/display name (Table 1 spelling, e.g. `"icf"`).
    fn name(&self) -> &'static str;

    /// Runs the transformation; returns the number of changes made
    /// (pass-specific unit, matching Table 1's activity column).
    fn run(&mut self, ctx: &mut BinaryContext) -> u64;

    /// Whether this pass should run under `opts`.
    fn enabled(&self, opts: &PassOptions) -> bool;

    /// Whether the manager should validate IR invariants after this pass
    /// (the former `validate_all` calls). `reorder-functions` opts out:
    /// it only chooses an emission order and the pre-refactor pipeline
    /// never validated after it.
    fn validate_after(&self) -> bool {
        true
    }

    /// Passes that choose a function emission order surface it here; the
    /// manager moves it into [`PipelineResult::function_order`].
    fn take_function_order(&mut self) -> Option<Vec<usize>> {
        None
    }

    /// Per-function pure passes expose their kernel here; the manager
    /// shards `ctx.functions` across worker threads via
    /// [`crate::run_function_pass`] when [`ManagerConfig::threads`] resolves to
    /// more than one. Whole-context passes return `None` and always run
    /// through [`run`](Self::run).
    fn function_pass(&self) -> Option<&dyn FunctionPass> {
        None
    }
}

/// When the manager runs the `bolt-verify` IR lint ([`LintMode`] is the
/// `-verify` / `-verify-each` surface; findings land in
/// [`PipelineResult::findings`] and each sweep is timed and reported as
/// a `verify` row like any pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintMode {
    /// No lint sweeps (the default; keeps pipelines and their report
    /// lists byte-identical to a manager without the verifier).
    #[default]
    Off,
    /// One sweep after the last pass (`-verify`).
    Final,
    /// A sweep after every executed pass (`-verify-each`), pinpointing
    /// which pass broke an invariant.
    Each,
}

/// Manager knobs orthogonal to [`PassOptions`].
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Validate IR invariants after each pass (debug builds only, like
    /// the pre-refactor pipeline).
    pub validate: bool,
    /// Record [`DynoStats`](crate::DynoStats) before and after every
    /// pass, so each report carries its dyno delta. Costs one stats
    /// sweep per pass boundary; off by default.
    pub collect_dyno: bool,
    /// Worker-thread count for per-function passes (`-threads=N`).
    /// `0` (the default) resolves to the `BOLT_THREADS` environment
    /// override or [`std::thread::available_parallelism`]; `1` forces
    /// the serial path. The pipeline result is byte-identical at any
    /// value — see [`crate::function_pass`].
    pub threads: usize,
    /// Skip a *repeated* registration of a pass when its most recent
    /// earlier instance reported zero changes this run (`-skip-unchanged`)
    /// — e.g. the second `icf` on binaries where the first found nothing
    /// to fold. Skipped instances still get a [`PassReport`]
    /// (zero changes, zero duration) marked
    /// [`skipped`](crate::PassReport::skipped), so `-time-passes` output
    /// stays honest. Off by default: a pass that reported zero changes
    /// can in principle still fire after intervening passes rework the
    /// IR, so this trades that (empirically absent) case for pipeline
    /// wall clock.
    pub skip_unchanged: bool,
    /// Whether (and how often) to run the `bolt-verify` IR lint.
    pub lint: LintMode,
    /// Pass names excluded this run regardless of [`PassOptions`]. Set
    /// by the quarantine ladder: after a whole-context pass panics (the
    /// context is untrusted and the pipeline aborts), the driver
    /// discards the round and retries with the offender listed here.
    pub disabled: Vec<String>,
    /// Panic-firewall the pass kernels (`catch_unwind` around each
    /// per-function kernel invocation and each whole-context pass). On
    /// by default — this is what feeds the quarantine ladder. Off
    /// exists solely so `bench-snapshot` can measure the firewall's
    /// clean-run cost; with it off, a panicking pass unwinds through
    /// the manager.
    pub firewall: bool,
}

impl Default for ManagerConfig {
    fn default() -> ManagerConfig {
        ManagerConfig {
            validate: true,
            collect_dyno: false,
            threads: 0,
            skip_unchanged: false,
            lint: LintMode::Off,
            disabled: Vec::new(),
            firewall: true,
        }
    }
}

/// Owns the ordered pass registry and runs it over a context.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    pub config: ManagerConfig,
}

impl Default for PassManager {
    fn default() -> PassManager {
        PassManager::new()
    }
}

impl PassManager {
    /// An empty manager; use [`register`](Self::register) to populate.
    pub fn new() -> PassManager {
        PassManager {
            passes: Vec::new(),
            config: ManagerConfig::default(),
        }
    }

    /// The Table-1 pipeline in paper order (the crate-level doc table),
    /// with pass parameters drawn from `opts`.
    pub fn standard(opts: &PassOptions) -> PassManager {
        let mut m = PassManager::new();
        m.register(Box::new(StripRepRet))
            .register(Box::new(Icf))
            .register(Box::new(Icp {
                threshold: opts.icp_threshold,
            }))
            .register(Box::new(Peepholes))
            .register(Box::new(InlineSmall))
            .register(Box::new(SimplifyRoLoads))
            .register(Box::new(Icf))
            .register(Box::new(Plt))
            .register(Box::new(ReorderBbs {
                layout: opts.reorder_blocks,
                split: opts.split_functions,
                split_all_cold: opts.split_all_cold,
                split_eh: opts.split_eh,
            }))
            .register(Box::new(Peepholes))
            .register(Box::new(Uce))
            .register(Box::new(FixupBranches { after_sctc: false }))
            .register(Box::new(ReorderFunctions {
                algorithm: opts.reorder_functions,
                order: None,
            }))
            .register(Box::new(Sctc))
            // sctc rewires terminators, so branch fixup re-runs right
            // after it — as its own report, so `-time-passes` attributes
            // the re-run's wall clock and change count honestly.
            .register(Box::new(FixupBranches { after_sctc: true }))
            .register(Box::new(FrameOpts))
            .register(Box::new(ShrinkWrapping));
        m
    }

    /// Appends a pass to the registry (runs after everything already
    /// registered). The same pass name may appear more than once.
    pub fn register(&mut self, pass: Box<dyn Pass>) -> &mut PassManager {
        self.passes.push(pass);
        self
    }

    /// The registered pass names in execution order (including disabled
    /// and repeated passes).
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// The pass names [`standard`](Self::standard) registers, in order:
    /// the [`crate::TABLE1`] rows plus the post-sctc `fixup-branches`
    /// re-run. The single source of truth for tests asserting the
    /// standard registration or report order.
    pub fn standard_pass_names() -> Vec<&'static str> {
        let mut names: Vec<&'static str> = crate::TABLE1.iter().map(|(name, _)| *name).collect();
        let sctc_pos = names.iter().position(|n| *n == "sctc").expect("sctc row");
        names.insert(sctc_pos + 1, "fixup-branches");
        names
    }

    /// Runs every registered pass enabled under `opts`, in order.
    ///
    /// Per-function passes ([`Pass::function_pass`]) are sharded across
    /// [`ManagerConfig::threads`] workers; whole-context passes run
    /// serially. The [`PipelineResult`] is byte-identical at any thread
    /// count.
    pub fn run(&mut self, ctx: &mut BinaryContext, opts: &PassOptions) -> PipelineResult {
        let n_threads = resolve_threads(self.config.threads);
        let mut result = PipelineResult::default();
        let mut occurrences: HashMap<&'static str, u32> = HashMap::new();
        // Change count of each pass name's most recent executed instance
        // this run, for `skip_unchanged`.
        let mut last_changes: HashMap<&'static str, u64> = HashMap::new();
        // Nothing mutates the context between one pass's after-sweep and
        // the next pass's before-sweep (validation is read-only), so each
        // boundary is swept once and shared.
        let mut carried_dyno: Option<dyno::DynoStats> = None;
        // Set when a whole-context pass panics: the context is untrusted,
        // so the remaining passes (and the final lint, which indexes into
        // possibly-inconsistent IR) are skipped.
        let mut aborted = false;
        for pass in &mut self.passes {
            if !pass.enabled(opts) || self.config.disabled.iter().any(|d| d == pass.name()) {
                continue;
            }
            let name = pass.name();
            let occurrence = occurrences.entry(name).and_modify(|n| *n += 1).or_insert(1);
            let instance = if *occurrence > 1 {
                format!("{name}({occurrence})")
            } else {
                name.to_string()
            };

            // Zero-change skipping: a repeated registration whose earlier
            // instance did nothing this run is reported but not executed.
            if self.config.skip_unchanged && *occurrence > 1 && last_changes.get(name) == Some(&0) {
                let dyno = self.config.collect_dyno.then(|| {
                    carried_dyno
                        .take()
                        .unwrap_or_else(|| dyno::context_dyno_stats(ctx))
                });
                carried_dyno = dyno;
                result.reports.push(PassReport {
                    name,
                    changes: 0,
                    duration: std::time::Duration::ZERO,
                    dyno_before: carried_dyno,
                    dyno_after: carried_dyno,
                    skipped: true,
                });
                continue;
            }

            let dyno_before = self.config.collect_dyno.then(|| {
                carried_dyno
                    .take()
                    .unwrap_or_else(|| dyno::context_dyno_stats(ctx))
            });
            let started = Instant::now();
            // Kernels always go through the sharder (which serializes
            // itself at n_threads <= 1), so a pass can never behave
            // differently between its run() wrapper and its kernel.
            // Both paths are panic-firewalled: a kernel panic
            // quarantines one function (inside `run_function_pass`); a
            // whole-context panic aborts the rest of the pipeline,
            // because there is no per-function boundary to contain it.
            let changes = match pass.function_pass() {
                Some(kernel) => {
                    let run = run_function_pass_with(kernel, ctx, n_threads, self.config.firewall);
                    for (function, detail) in run.failures {
                        result.failures.push(PassFailure {
                            pass: instance.clone(),
                            function: Some(function),
                            detail,
                        });
                    }
                    run.changes
                }
                None if !self.config.firewall => pass.run(ctx),
                None => match catch_unwind(AssertUnwindSafe(|| pass.run(ctx))) {
                    Ok(n) => n,
                    Err(payload) => {
                        result.failures.push(PassFailure {
                            pass: instance.clone(),
                            function: None,
                            detail: panic_message(payload.as_ref()),
                        });
                        aborted = true;
                        0
                    }
                },
            };
            let duration = started.elapsed();
            let dyno_after = self
                .config
                .collect_dyno
                .then(|| dyno::context_dyno_stats(ctx));
            carried_dyno = dyno_after;

            if let Some(order) = pass.take_function_order() {
                result.function_order = order;
            }
            last_changes.insert(name, changes);
            result.reports.push(PassReport {
                name,
                changes,
                duration,
                dyno_before,
                dyno_after,
                skipped: false,
            });
            if aborted {
                break;
            }
            if self.config.validate && pass.validate_after() {
                validate_all(ctx, &instance);
            }
            if self.config.lint == LintMode::Each {
                run_lint(ctx, &instance, &mut result);
            }
        }
        if self.config.lint == LintMode::Final && !aborted {
            run_lint(ctx, "pipeline", &mut result);
        }
        result
    }
}

/// One timed IR-lint sweep, reported as a `verify` row (change count =
/// findings) so `-time-passes` attributes verifier overhead separately.
fn run_lint(ctx: &BinaryContext, after: &str, result: &mut PipelineResult) {
    let started = Instant::now();
    let mut findings = bolt_verify::lint_context(ctx);
    let duration = started.elapsed();
    for f in &mut findings {
        f.detail = format!("after {after}: {}", f.detail);
    }
    result.reports.push(PassReport {
        name: "verify",
        changes: findings.len() as u64,
        duration,
        dyno_before: None,
        dyno_after: None,
        skipped: false,
    });
    result.findings.append(&mut findings);
}

/// Post-pass IR invariant check (debug builds only): every simple,
/// unfolded function must still satisfy its CFG/layout invariants.
fn validate_all(ctx: &BinaryContext, after: &str) {
    if cfg!(debug_assertions) {
        for f in &ctx.functions {
            if f.is_simple && f.folded_into.is_none() {
                if let Err(e) = f.validate() {
                    panic!("IR invariant broken after {after}: {e}");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The sixteen Table-1 passes.

/// Table 1 #1: strip `repz` from `repz retq` (legacy AMD workaround).
struct StripRepRet;

impl Pass for StripRepRet {
    fn name(&self) -> &'static str {
        "strip-rep-ret"
    }
    fn run(&mut self, ctx: &mut BinaryContext) -> u64 {
        peephole::strip_rep_ret(ctx)
    }
    fn enabled(&self, opts: &PassOptions) -> bool {
        opts.strip_rep_ret
    }
    fn function_pass(&self) -> Option<&dyn FunctionPass> {
        Some(self)
    }
}

impl FunctionPass for StripRepRet {
    fn run_on_function(&self, func: &mut BinaryFunction) -> u64 {
        peephole::strip_rep_ret_function(func)
    }
}

/// Table 1 #2 and #7: identical code folding (registered twice).
struct Icf;

impl Pass for Icf {
    fn name(&self) -> &'static str {
        "icf"
    }
    fn run(&mut self, ctx: &mut BinaryContext) -> u64 {
        icf::run_icf(ctx)
    }
    fn enabled(&self, opts: &PassOptions) -> bool {
        opts.icf
    }
}

/// Table 1 #3: indirect call promotion.
struct Icp {
    threshold: f64,
}

impl Pass for Icp {
    fn name(&self) -> &'static str {
        "icp"
    }
    fn run(&mut self, ctx: &mut BinaryContext) -> u64 {
        icp::run_icp(ctx, self.threshold)
    }
    fn enabled(&self, opts: &PassOptions) -> bool {
        opts.icp
    }
}

/// Table 1 #4 and #10: simple peepholes (registered twice).
struct Peepholes;

impl Pass for Peepholes {
    fn name(&self) -> &'static str {
        "peepholes"
    }
    fn run(&mut self, ctx: &mut BinaryContext) -> u64 {
        peephole::run_peepholes(ctx)
    }
    fn enabled(&self, opts: &PassOptions) -> bool {
        opts.peepholes
    }
    fn function_pass(&self) -> Option<&dyn FunctionPass> {
        Some(self)
    }
}

impl FunctionPass for Peepholes {
    fn run_on_function(&self, func: &mut BinaryFunction) -> u64 {
        peephole::peepholes_function(func)
    }
}

/// Table 1 #5: inline small functions.
struct InlineSmall;

impl Pass for InlineSmall {
    fn name(&self) -> &'static str {
        "inline-small"
    }
    fn run(&mut self, ctx: &mut BinaryContext) -> u64 {
        inline_small::run_inline_small(ctx)
    }
    fn enabled(&self, opts: &PassOptions) -> bool {
        opts.inline_small
    }
}

/// Table 1 #6: turn loads of statically known `.rodata` into movs.
struct SimplifyRoLoads;

impl Pass for SimplifyRoLoads {
    fn name(&self) -> &'static str {
        "simplify-ro-loads"
    }
    fn run(&mut self, ctx: &mut BinaryContext) -> u64 {
        ro_loads::run_simplify_ro_loads(ctx)
    }
    fn enabled(&self, opts: &PassOptions) -> bool {
        opts.simplify_ro_loads
    }
}

/// Table 1 #8: remove indirection from PLT calls.
struct Plt;

impl Pass for Plt {
    fn name(&self) -> &'static str {
        "plt"
    }
    fn run(&mut self, ctx: &mut BinaryContext) -> u64 {
        plt::run_plt(ctx)
    }
    fn enabled(&self, opts: &PassOptions) -> bool {
        opts.plt
    }
}

/// Table 1 #9: block reordering + hot/cold splitting. Always registered
/// and always reported (with `-reorder-blocks=none` it reports zero
/// changes), matching the pre-refactor pipeline.
struct ReorderBbs {
    layout: layout::BlockLayout,
    split: layout::SplitMode,
    split_all_cold: bool,
    split_eh: bool,
}

impl Pass for ReorderBbs {
    fn name(&self) -> &'static str {
        "reorder-bbs"
    }
    fn run(&mut self, ctx: &mut BinaryContext) -> u64 {
        layout::run_reorder_bbs(
            ctx,
            self.layout,
            self.split,
            self.split_all_cold,
            self.split_eh,
        )
    }
    fn enabled(&self, _opts: &PassOptions) -> bool {
        true
    }
}

/// Table 1 #11: unreachable-code elimination.
struct Uce;

impl Pass for Uce {
    fn name(&self) -> &'static str {
        "uce"
    }
    fn run(&mut self, ctx: &mut BinaryContext) -> u64 {
        uce::run_uce(ctx)
    }
    fn enabled(&self, opts: &PassOptions) -> bool {
        opts.uce
    }
    fn function_pass(&self) -> Option<&dyn FunctionPass> {
        Some(self)
    }
}

impl FunctionPass for Uce {
    fn run_on_function(&self, func: &mut BinaryFunction) -> u64 {
        uce::uce_function(func)
    }
}

/// Table 1 #12: rewrite terminators to match CFG + layout. The first
/// instance always runs; the `after_sctc` instance re-runs right after
/// `sctc` (which rewires terminators) and is gated on it.
struct FixupBranches {
    after_sctc: bool,
}

impl Pass for FixupBranches {
    fn name(&self) -> &'static str {
        "fixup-branches"
    }
    fn run(&mut self, ctx: &mut BinaryContext) -> u64 {
        fixup::run_fixup_branches(ctx)
    }
    fn enabled(&self, opts: &PassOptions) -> bool {
        !self.after_sctc || opts.sctc
    }
    fn function_pass(&self) -> Option<&dyn FunctionPass> {
        Some(self)
    }
}

impl FunctionPass for FixupBranches {
    fn run_on_function(&self, func: &mut BinaryFunction) -> u64 {
        fixup::fixup_function(func)
    }
}

/// Table 1 #13: HFSort function reordering. Always runs (the `none`
/// algorithm yields the identity order) and reports the number of
/// functions ordered, matching the pre-refactor pipeline.
struct ReorderFunctions {
    algorithm: bolt_hfsort::Algorithm,
    order: Option<Vec<usize>>,
}

impl Pass for ReorderFunctions {
    fn name(&self) -> &'static str {
        "reorder-functions"
    }
    fn run(&mut self, ctx: &mut BinaryContext) -> u64 {
        let order = reorder_functions::run_reorder_functions(ctx, self.algorithm);
        let n = order.len() as u64;
        self.order = Some(order);
        n
    }
    fn enabled(&self, _opts: &PassOptions) -> bool {
        true
    }
    fn validate_after(&self) -> bool {
        false
    }
    fn take_function_order(&mut self) -> Option<Vec<usize>> {
        self.order.take()
    }
}

/// Table 1 #14: simplify conditional tail calls. The branch fixup this
/// necessitates (sctc rewires terminators) is registered as its own
/// `fixup-branches` instance right after, so its time and change count
/// are attributed to fixup rather than silently folded into sctc.
struct Sctc;

impl Pass for Sctc {
    fn name(&self) -> &'static str {
        "sctc"
    }
    fn run(&mut self, ctx: &mut BinaryContext) -> u64 {
        sctc::run_sctc(ctx)
    }
    fn enabled(&self, opts: &PassOptions) -> bool {
        opts.sctc
    }
    fn function_pass(&self) -> Option<&dyn FunctionPass> {
        Some(self)
    }
}

impl FunctionPass for Sctc {
    fn run_on_function(&self, func: &mut BinaryFunction) -> u64 {
        sctc::sctc_function(func)
    }
}

/// Table 1 #15: remove unnecessary caller-saved spills.
struct FrameOpts;

impl Pass for FrameOpts {
    fn name(&self) -> &'static str {
        "frame-opts"
    }
    fn run(&mut self, ctx: &mut BinaryContext) -> u64 {
        frame::run_frame_opts(ctx)
    }
    fn enabled(&self, opts: &PassOptions) -> bool {
        opts.frame_opts
    }
    fn function_pass(&self) -> Option<&dyn FunctionPass> {
        Some(self)
    }
}

impl FunctionPass for FrameOpts {
    fn run_on_function(&self, func: &mut BinaryFunction) -> u64 {
        frame::frame_opts_function(func)
    }
}

/// Table 1 #16: move callee-saved spills toward their uses.
struct ShrinkWrapping;

impl Pass for ShrinkWrapping {
    fn name(&self) -> &'static str {
        "shrink-wrapping"
    }
    fn run(&mut self, ctx: &mut BinaryContext) -> u64 {
        frame::run_shrink_wrapping(ctx)
    }
    fn enabled(&self, opts: &PassOptions) -> bool {
        opts.shrink_wrapping
    }
    fn function_pass(&self) -> Option<&dyn FunctionPass> {
        Some(self)
    }
}

impl FunctionPass for ShrinkWrapping {
    fn run_on_function(&self, func: &mut BinaryFunction) -> u64 {
        frame::shrink_wrap_function(func)
    }
}

/// Deterministic fault injection (`FaultPlan::PoisonPass`): a kernel
/// that panics on one named function, exercising the per-function
/// firewall end to end. Targeting by *name* (resolved from the Nth
/// simple function by the driver) rather than a visit counter keeps it
/// deterministic under sharding. Gated on `is_simple` only — NOT on
/// [`may_transform`](BinaryFunction::may_transform) — so a function the
/// ladder demoted to layout-only is poisoned *again* on the retry,
/// driving it down the full `default -> layout-only -> quarantined`
/// ladder; only full quarantine (which clears `is_simple`) stops it.
pub struct PoisonPass {
    pub target: String,
}

impl Pass for PoisonPass {
    fn name(&self) -> &'static str {
        "poison"
    }
    fn run(&mut self, ctx: &mut BinaryContext) -> u64 {
        let mut n = 0;
        for f in &mut ctx.functions {
            n += <PoisonPass as FunctionPass>::run_on_function(self, f);
        }
        n
    }
    fn enabled(&self, _opts: &PassOptions) -> bool {
        true
    }
    fn function_pass(&self) -> Option<&dyn FunctionPass> {
        Some(self)
    }
}

impl FunctionPass for PoisonPass {
    fn run_on_function(&self, func: &mut BinaryFunction) -> u64 {
        if func.is_simple && func.name == self.target {
            panic!("poison-pass: injected fault on {}", func.name);
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry must reproduce the Table-1 order exactly (names as
    /// listed in the crate-level doc table and [`crate::TABLE1`]), plus
    /// the post-sctc `fixup-branches` re-run registered as its own pass
    /// so `-time-passes` attribution stays honest.
    #[test]
    fn standard_registration_matches_table1() {
        let m = PassManager::standard(&PassOptions::default());
        assert_eq!(m.pass_names(), PassManager::standard_pass_names());
    }

    #[test]
    fn disabled_passes_are_skipped() {
        let mut m = PassManager::standard(&PassOptions::default());
        let mut ctx = BinaryContext::default();
        let opts = PassOptions::none();
        let result = m.run(&mut ctx, &opts);
        // Only the unconditional passes report: `none` is an identity
        // rewrite, so uce (and sctc's fixup re-run) must be off too.
        let names: Vec<&str> = result.reports.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            ["reorder-bbs", "fixup-branches", "reorder-functions"]
        );
    }

    /// The manager must produce identical results at any thread count
    /// (here on a synthetic many-function context; the TAO integration
    /// test covers the full driver).
    #[test]
    fn thread_count_does_not_change_results() {
        use bolt_ir::BasicBlock;
        use bolt_isa::Inst;
        let mut base = BinaryContext::default();
        for i in 0..40 {
            let mut f = bolt_ir::BinaryFunction::new(format!("f{i}"), 0x1000 + 0x100 * i as u64);
            let b = f.add_block(BasicBlock::new());
            f.block_mut(b).push(Inst::RepzRet);
            base.add_function(f);
        }
        let opts = PassOptions::default();
        let mut results = Vec::new();
        for threads in [1, 4] {
            let mut m = PassManager::standard(&opts);
            m.config.threads = threads;
            let mut ctx = base.clone();
            results.push((m.run(&mut ctx, &opts), ctx));
        }
        let (serial, parallel) = (&results[0], &results[1]);
        assert_eq!(serial.0.reports, parallel.0.reports);
        assert_eq!(serial.0.function_order, parallel.0.function_order);
        assert_eq!(serial.1.functions.len(), parallel.1.functions.len());
        assert_eq!(
            serial.0.reports[0].changes, 40,
            "strip-rep-ret fired once per function"
        );
    }

    /// `-skip-unchanged`: a repeated registration is skipped when the
    /// earlier instance of the same pass reported zero changes this run
    /// — and still reported, marked, so timing output stays honest.
    #[test]
    fn skip_unchanged_skips_zero_change_repeats() {
        // An empty context: every pass reports zero changes, so the
        // second icf and second peepholes are skippable.
        let opts = PassOptions::default();
        let run = |skip: bool| {
            let mut m = PassManager::standard(&opts);
            m.config.skip_unchanged = skip;
            let mut ctx = BinaryContext::default();
            m.run(&mut ctx, &opts)
        };
        let plain = run(false);
        assert!(
            plain.reports.iter().all(|r| !r.skipped),
            "nothing skipped without the flag"
        );
        let skipping = run(true);
        let skipped: Vec<&str> = skipping
            .reports
            .iter()
            .filter(|r| r.skipped)
            .map(|r| r.name)
            .collect();
        assert_eq!(
            skipped,
            ["icf", "peepholes", "fixup-branches"],
            "exactly the zero-change repeats are skipped"
        );
        // Reports stay semantically identical (same names, same change
        // counts): skipping is a pure wall-clock optimization here.
        assert_eq!(plain.reports, skipping.reports);
        assert_eq!(plain.function_order, skipping.function_order);
        for r in skipping.reports.iter().filter(|r| r.skipped) {
            assert_eq!(r.changes, 0);
            assert_eq!(r.duration, std::time::Duration::ZERO);
        }
    }

    /// A repeat whose earlier instance *did* change the program still
    /// runs under `-skip-unchanged`.
    #[test]
    fn skip_unchanged_keeps_active_repeats() {
        use bolt_ir::BasicBlock;
        use bolt_isa::Inst;
        // Two identical functions: the first icf folds one into the
        // other (1 change), so the second icf must still execute.
        let mut ctx = BinaryContext::default();
        for i in 0..2 {
            let mut f = bolt_ir::BinaryFunction::new(format!("f{i}"), 0x1000 + 0x100 * i as u64);
            let b = f.add_block(BasicBlock::new());
            f.block_mut(b).push(Inst::Ret);
            ctx.add_function(f);
        }
        let opts = PassOptions::default();
        let mut m = PassManager::standard(&opts);
        m.config.skip_unchanged = true;
        let result = m.run(&mut ctx, &opts);
        let icf: Vec<_> = result.reports.iter().filter(|r| r.name == "icf").collect();
        assert_eq!(icf.len(), 2);
        assert!(icf[0].changes > 0, "first icf folds");
        assert!(!icf[1].skipped, "a productive pass's repeat still runs");
    }

    /// `-verify-each` adds one timed `verify` row per executed pass and
    /// collects zero findings on a healthy pipeline; the default keeps
    /// the report list untouched.
    #[test]
    fn lint_each_reports_per_pass_and_stays_clean() {
        use bolt_ir::BasicBlock;
        use bolt_isa::Inst;
        let mut ctx = BinaryContext::default();
        let mut f = bolt_ir::BinaryFunction::new("f", 0x1000);
        let b = f.add_block(BasicBlock::new());
        f.block_mut(b).push(Inst::Ret);
        ctx.add_function(f);
        let opts = PassOptions::default();
        let mut m = PassManager::standard(&opts);
        m.config.lint = LintMode::Each;
        let result = m.run(&mut ctx, &opts);
        let executed = result.reports.iter().filter(|r| r.name != "verify").count();
        let verify_rows = result.reports.iter().filter(|r| r.name == "verify").count();
        assert_eq!(verify_rows, executed, "one verify row per executed pass");
        assert!(result.findings.is_empty(), "{:?}", result.findings);

        let mut m = PassManager::standard(&opts);
        m.config.lint = LintMode::Final;
        let mut ctx2 = BinaryContext::default();
        let result = m.run(&mut ctx2, &opts);
        assert_eq!(
            result.reports.iter().filter(|r| r.name == "verify").count(),
            1,
            "-verify runs exactly one sweep"
        );
    }

    /// The lint catches a broken layout the moment a (simulated) pass
    /// corrupts it.
    #[test]
    fn lint_reports_corrupted_layout() {
        use bolt_ir::{BasicBlock, BlockId};
        use bolt_isa::Inst;
        struct Corrupt;
        impl Pass for Corrupt {
            fn name(&self) -> &'static str {
                "corrupt"
            }
            fn run(&mut self, ctx: &mut BinaryContext) -> u64 {
                ctx.functions[0].layout.push(BlockId(7));
                1
            }
            fn enabled(&self, _opts: &PassOptions) -> bool {
                true
            }
            fn validate_after(&self) -> bool {
                false // the debug-build panic would fire before the lint
            }
        }
        let mut ctx = BinaryContext::default();
        let mut f = bolt_ir::BinaryFunction::new("f", 0x1000);
        let b = f.add_block(BasicBlock::new());
        f.block_mut(b).push(Inst::Ret);
        ctx.add_function(f);
        let mut m = PassManager::new();
        m.register(Box::new(Corrupt));
        m.config.lint = LintMode::Each;
        m.config.validate = false;
        let result = m.run(&mut ctx, &PassOptions::default());
        assert!(
            !result.findings.is_empty(),
            "lint must flag the out-of-range layout entry"
        );
        assert!(result.findings[0].detail.contains("after corrupt"));
    }

    /// A whole-context pass panic is caught, recorded with
    /// `function: None`, and aborts the remaining pipeline (the context
    /// is untrusted after it).
    #[test]
    fn whole_context_panic_aborts_pipeline() {
        struct Bomb;
        impl Pass for Bomb {
            fn name(&self) -> &'static str {
                "bomb"
            }
            fn run(&mut self, _ctx: &mut BinaryContext) -> u64 {
                panic!("whole-context fault");
            }
            fn enabled(&self, _opts: &PassOptions) -> bool {
                true
            }
        }
        struct Never;
        impl Pass for Never {
            fn name(&self) -> &'static str {
                "never"
            }
            fn run(&mut self, _ctx: &mut BinaryContext) -> u64 {
                panic!("must not run after an abort");
            }
            fn enabled(&self, _opts: &PassOptions) -> bool {
                true
            }
        }
        let mut m = PassManager::new();
        m.register(Box::new(Bomb)).register(Box::new(Never));
        m.config.lint = LintMode::Final;
        let mut ctx = BinaryContext::default();
        let result = m.run(&mut ctx, &PassOptions::default());
        assert_eq!(result.failures.len(), 1);
        let failure = result.aborted_by().expect("abort recorded");
        assert_eq!(failure.pass, "bomb");
        assert_eq!(failure.function, None);
        assert_eq!(failure.detail, "whole-context fault");
        let names: Vec<&str> = result.reports.iter().map(|r| r.name).collect();
        assert_eq!(names, ["bomb"], "no later pass, no final lint sweep");
    }

    /// `ManagerConfig::disabled` excludes a pass by name even though
    /// `enabled()` says yes — the ladder's retry-with-pass-disabled.
    #[test]
    fn disabled_list_excludes_pass_by_name() {
        let opts = PassOptions::default();
        let mut m = PassManager::standard(&opts);
        m.config.disabled = vec!["icf".to_string()];
        let mut ctx = BinaryContext::default();
        let result = m.run(&mut ctx, &opts);
        assert!(
            result.reports.iter().all(|r| r.name != "icf"),
            "both icf instances excluded"
        );
        assert!(result.failures.is_empty());
    }

    /// The poison pass panics on exactly its target and the kernel
    /// firewall turns that into one quarantined function, at any
    /// thread count.
    #[test]
    fn poison_pass_quarantines_target_only() {
        use bolt_ir::BasicBlock;
        use bolt_isa::Inst;
        for threads in [1, 4] {
            let mut ctx = BinaryContext::default();
            for i in 0..12 {
                let mut f =
                    bolt_ir::BinaryFunction::new(format!("f{i}"), 0x1000 + 0x100 * i as u64);
                let b = f.add_block(BasicBlock::new());
                f.block_mut(b).push(Inst::Ret);
                ctx.add_function(f);
            }
            let mut m = PassManager::new();
            m.register(Box::new(PoisonPass {
                target: "f5".to_string(),
            }));
            m.config.threads = threads;
            let result = m.run(&mut ctx, &PassOptions::default());
            assert_eq!(
                result.failures,
                vec![PassFailure {
                    pass: "poison".to_string(),
                    function: Some("f5".to_string()),
                    detail: "poison-pass: injected fault on f5".to_string(),
                }],
                "threads={threads}"
            );
            assert!(!ctx.functions[5].is_simple);
            assert_eq!(
                ctx.functions.iter().filter(|f| f.is_simple).count(),
                11,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn repeated_passes_report_under_one_name() {
        let mut m = PassManager::standard(&PassOptions::default());
        let mut ctx = BinaryContext::default();
        let result = m.run(&mut ctx, &PassOptions::default());
        let icf_runs = result.reports.iter().filter(|r| r.name == "icf").count();
        let peephole_runs = result
            .reports
            .iter()
            .filter(|r| r.name == "peepholes")
            .count();
        assert_eq!(icf_runs, 2, "icf registered and reported twice");
        assert_eq!(peephole_runs, 2, "peepholes registered and reported twice");
    }
}
