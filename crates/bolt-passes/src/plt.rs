//! Pass 8: remove indirection from PLT calls.
//!
//! A call to a PLT stub (`callq stub; stub: jmpq *got(%rip)`) is rewritten
//! into a direct call to the final target, eliminating one taken jump and
//! one GOT load per call (paper Table 1, pass 8).

use bolt_ir::BinaryContext;
use bolt_isa::{Inst, Target};

/// Runs the pass; returns the number of calls devirtualized.
pub fn run_plt(ctx: &mut BinaryContext) -> u64 {
    // Resolve each stub to its final target's address.
    let mut resolved: Vec<(u64, u64)> = Vec::new();
    for (&stub_addr, target_name) in &ctx.plt_stubs {
        if let Some(f) = ctx.function_by_name(target_name) {
            resolved.push((stub_addr, f.address));
        }
    }
    resolved.sort_unstable();

    let lookup = |addr: u64| -> Option<u64> {
        resolved
            .binary_search_by_key(&addr, |(s, _)| *s)
            .ok()
            .map(|i| resolved[i].1)
    };

    let mut n = 0;
    for func in ctx.functions.iter_mut().filter(|f| f.may_transform()) {
        for block in &mut func.blocks {
            for inst in &mut block.insts {
                match &mut inst.inst {
                    Inst::Call {
                        target: Target::Addr(a),
                    } => {
                        if let Some(final_addr) = lookup(*a) {
                            *a = final_addr;
                            n += 1;
                        }
                    }
                    // Tail calls through the PLT.
                    Inst::Jmp {
                        target: Target::Addr(a),
                        ..
                    } => {
                        if let Some(final_addr) = lookup(*a) {
                            *a = final_addr;
                            n += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_ir::{BasicBlock, BinaryFunction};

    #[test]
    fn plt_calls_devirtualized() {
        let mut ctx = BinaryContext::new();
        let mut callee = BinaryFunction::new("__bolt_emit", 0x9000);
        callee.size = 16;
        let b = callee.add_block(BasicBlock::new());
        callee.block_mut(b).push(Inst::Ret);
        ctx.add_function(callee);

        let mut caller = BinaryFunction::new("caller", 0x1000);
        caller.size = 16;
        let b = caller.add_block(BasicBlock::new());
        caller.block_mut(b).push(Inst::Call {
            target: Target::Addr(0x2000), // stub
        });
        caller.block_mut(b).push(Inst::Ret);
        ctx.add_function(caller);
        ctx.plt_stubs.insert(0x2000, "__bolt_emit".to_string());

        assert_eq!(run_plt(&mut ctx), 1);
        assert_eq!(
            ctx.functions[1].blocks[0].insts[0].inst.target(),
            Some(Target::Addr(0x9000))
        );
    }

    #[test]
    fn non_plt_calls_untouched() {
        let mut ctx = BinaryContext::new();
        let mut caller = BinaryFunction::new("caller", 0x1000);
        let b = caller.add_block(BasicBlock::new());
        caller.block_mut(b).push(Inst::Call {
            target: Target::Addr(0x5000),
        });
        caller.block_mut(b).push(Inst::Ret);
        ctx.add_function(caller);
        assert_eq!(run_plt(&mut ctx), 0);
    }
}
