//! # bolt-passes — the optimization pipeline
//!
//! The sixteen-pass pipeline of paper Table 1, in order:
//!
//! | # | pass | module |
//! |---|------|--------|
//! | 1 | `strip-rep-ret` | [`peephole`] |
//! | 2 | `icf` | [`icf`] |
//! | 3 | `icp` | [`icp`] |
//! | 4 | `peepholes` | [`peephole`] |
//! | 5 | `inline-small` | [`inline_small`] |
//! | 6 | `simplify-ro-loads` | [`ro_loads`] |
//! | 7 | `icf` (2nd) | [`icf`] |
//! | 8 | `plt` | [`plt`] |
//! | 9 | `reorder-bbs` + splitting | [`layout`] |
//! | 10 | `peepholes` (2nd) | [`peephole`] |
//! | 11 | `uce` | [`uce`] |
//! | 12 | `fixup-branches` | [`fixup`] |
//! | 13 | `reorder-functions` | [`reorder_functions`] |
//! | 14 | `sctc` | [`sctc`] |
//! | 15 | `frame-opts` | [`frame`] |
//! | 16 | `shrink-wrapping` | [`frame`] |
//!
//! plus the `dyno-stats` reporting of paper Table 2 ([`dyno`]).

pub mod dyno;
pub mod fixup;
pub mod frame;
pub mod icf;
pub mod icp;
pub mod inline_small;
pub mod layout;
pub mod peephole;
pub mod plt;
pub mod reorder_functions;
pub mod ro_loads;
pub mod sctc;
pub mod uce;

pub use dyno::DynoStats;
pub use layout::{BlockLayout, SplitMode};

use bolt_ir::BinaryContext;

/// Options for the optimization pipeline (mirrors the BOLT command line
/// used in the paper's evaluation, section 6.2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct PassOptions {
    pub strip_rep_ret: bool,
    pub icf: bool,
    pub icp: bool,
    /// Minimum fraction of an indirect call's targets a single callee must
    /// take to be promoted.
    pub icp_threshold: f64,
    pub peepholes: bool,
    pub inline_small: bool,
    pub simplify_ro_loads: bool,
    pub plt: bool,
    /// `-reorder-blocks=`
    pub reorder_blocks: BlockLayout,
    /// `-split-functions=` mode.
    pub split_functions: SplitMode,
    /// `-split-all-cold`
    pub split_all_cold: bool,
    /// `-split-eh`
    pub split_eh: bool,
    pub uce: bool,
    /// `-reorder-functions=`
    pub reorder_functions: bolt_hfsort::Algorithm,
    pub sctc: bool,
    pub frame_opts: bool,
    pub shrink_wrapping: bool,
}

impl Default for PassOptions {
    fn default() -> PassOptions {
        // The configuration used throughout the paper's evaluation:
        // -reorder-blocks=cache+ -reorder-functions=hfsort+
        // -split-functions=3 -split-all-cold -split-eh -icf=1
        PassOptions {
            strip_rep_ret: true,
            icf: true,
            icp: true,
            icp_threshold: 0.51,
            peepholes: true,
            inline_small: true,
            simplify_ro_loads: true,
            plt: true,
            reorder_blocks: BlockLayout::CachePlus,
            split_functions: SplitMode::Profiled,
            split_all_cold: true,
            split_eh: true,
            uce: true,
            reorder_functions: bolt_hfsort::Algorithm::HfsortPlus,
            sctc: true,
            frame_opts: true,
            shrink_wrapping: true,
        }
    }
}

impl PassOptions {
    /// Only layout passes (for ablations): block reorder + function
    /// reorder, nothing else.
    pub fn layout_only() -> PassOptions {
        PassOptions {
            strip_rep_ret: false,
            icf: false,
            icp: false,
            peepholes: false,
            inline_small: false,
            simplify_ro_loads: false,
            plt: false,
            sctc: false,
            frame_opts: false,
            shrink_wrapping: false,
            ..PassOptions::default()
        }
    }

    /// Function reordering only (paper Figure 11's "Functions" bars).
    pub fn functions_only() -> PassOptions {
        PassOptions {
            reorder_blocks: BlockLayout::None,
            split_functions: SplitMode::None,
            split_all_cold: false,
            split_eh: false,
            ..PassOptions::layout_only()
        }
    }

    /// Basic-block passes only (paper Figure 11's "BBs" bars).
    pub fn bbs_only() -> PassOptions {
        PassOptions {
            reorder_functions: bolt_hfsort::Algorithm::None,
            ..PassOptions::default()
        }
    }

    /// Everything disabled (identity rewrite).
    pub fn none() -> PassOptions {
        PassOptions {
            reorder_blocks: BlockLayout::None,
            split_functions: SplitMode::None,
            split_all_cold: false,
            split_eh: false,
            reorder_functions: bolt_hfsort::Algorithm::None,
            ..PassOptions::layout_only()
        }
    }
}

/// Per-pass activity report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassReport {
    pub name: &'static str,
    /// Number of program changes the pass made (pass-specific unit).
    pub changes: u64,
}

/// The result of running the whole pipeline.
#[derive(Debug, Clone, Default)]
pub struct PipelineResult {
    pub reports: Vec<PassReport>,
    /// Function emission order chosen by `reorder-functions` (indices into
    /// `ctx.functions`).
    pub function_order: Vec<usize>,
}

fn validate_all(ctx: &BinaryContext, after: &str) {
    if cfg!(debug_assertions) {
        for f in &ctx.functions {
            if f.is_simple && f.folded_into.is_none() {
                if let Err(e) = f.validate() {
                    panic!("IR invariant broken after {after}: {e}");
                }
            }
        }
    }
}

/// Runs the full Table 1 pipeline over the context.
pub fn run_pipeline(ctx: &mut BinaryContext, opts: &PassOptions) -> PipelineResult {
    let mut result = PipelineResult::default();
    let report = |result: &mut PipelineResult, name: &'static str, changes: u64| {
        result.reports.push(PassReport { name, changes });
    };

    if opts.strip_rep_ret {
        let n = peephole::strip_rep_ret(ctx);
        report(&mut result, "strip-rep-ret", n);
        validate_all(ctx, "strip-rep-ret");
    }
    if opts.icf {
        let n = icf::run_icf(ctx);
        report(&mut result, "icf", n);
        validate_all(ctx, "icf");
    }
    if opts.icp {
        let n = icp::run_icp(ctx, opts.icp_threshold);
        report(&mut result, "icp", n);
        validate_all(ctx, "icp");
    }
    if opts.peepholes {
        let n = peephole::run_peepholes(ctx);
        report(&mut result, "peepholes", n);
        validate_all(ctx, "peepholes");
    }
    if opts.inline_small {
        let n = inline_small::run_inline_small(ctx);
        report(&mut result, "inline-small", n);
        validate_all(ctx, "inline-small");
    }
    if opts.simplify_ro_loads {
        let n = ro_loads::run_simplify_ro_loads(ctx);
        report(&mut result, "simplify-ro-loads", n);
        validate_all(ctx, "simplify-ro-loads");
    }
    if opts.icf {
        let n = icf::run_icf(ctx);
        report(&mut result, "icf", n);
        validate_all(ctx, "icf(2)");
    }
    if opts.plt {
        let n = plt::run_plt(ctx);
        report(&mut result, "plt", n);
        validate_all(ctx, "plt");
    }
    {
        let n = layout::run_reorder_bbs(
            ctx,
            opts.reorder_blocks,
            opts.split_functions,
            opts.split_all_cold,
            opts.split_eh,
        );
        report(&mut result, "reorder-bbs", n);
        validate_all(ctx, "reorder-bbs");
    }
    if opts.peepholes {
        let n = peephole::run_peepholes(ctx);
        report(&mut result, "peepholes", n);
        validate_all(ctx, "peepholes(2)");
    }
    if opts.uce {
        let n = uce::run_uce(ctx);
        report(&mut result, "uce", n);
        validate_all(ctx, "uce");
    }
    {
        let n = fixup::run_fixup_branches(ctx);
        report(&mut result, "fixup-branches", n);
        validate_all(ctx, "fixup-branches");
    }
    {
        result.function_order =
            reorder_functions::run_reorder_functions(ctx, opts.reorder_functions);
        let n = result.function_order.len() as u64;
        report(&mut result, "reorder-functions", n);
    }
    if opts.sctc {
        let n = sctc::run_sctc(ctx);
        report(&mut result, "sctc", n);
        // sctc rewires terminators; re-run fixup to stay consistent.
        let _ = fixup::run_fixup_branches(ctx);
        validate_all(ctx, "sctc");
    }
    if opts.frame_opts {
        let n = frame::run_frame_opts(ctx);
        report(&mut result, "frame-opts", n);
        validate_all(ctx, "frame-opts");
    }
    if opts.shrink_wrapping {
        let n = frame::run_shrink_wrapping(ctx);
        report(&mut result, "shrink-wrapping", n);
        validate_all(ctx, "shrink-wrapping");
    }
    result
}

/// The pass names and descriptions of paper Table 1 in pipeline order
/// (printed by the `table1_pipeline` bench target).
pub const TABLE1: &[(&str, &str)] = &[
    ("strip-rep-ret", "Strip repz from repz retq instructions used for legacy AMD processors"),
    ("icf", "Identical code folding"),
    ("icp", "Indirect call promotion"),
    ("peepholes", "Simple peephole optimizations"),
    ("inline-small", "Inline small functions"),
    ("simplify-ro-loads", "Fetch constant data in .rodata whose address is known statically and mutate a load into a mov"),
    ("icf", "Identical code folding (second run)"),
    ("plt", "Remove indirection from PLT calls"),
    ("reorder-bbs", "Reorder basic blocks and split hot/cold blocks into separate sections (layout optimization)"),
    ("peepholes", "Simple peephole optimizations (second run)"),
    ("uce", "Eliminate unreachable basic blocks"),
    ("fixup-branches", "Fix basic block terminator instructions to match the CFG and the current layout"),
    ("reorder-functions", "Apply HFSort to reorder functions (layout optimization)"),
    ("sctc", "Simplify conditional tail calls"),
    ("frame-opts", "Removes unnecessary caller-saved register spilling"),
    ("shrink-wrapping", "Moves callee-saved register spills closer to where they are needed"),
];
