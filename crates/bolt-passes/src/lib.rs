//! # bolt-passes — the optimization pipeline
//!
//! The sixteen-pass pipeline of paper Table 1, run by a registry-driven
//! [`PassManager`]: every transformation implements the [`Pass`] trait,
//! the manager owns the Table-1 registration order, gates each pass on
//! [`PassOptions`], validates IR invariants between passes (debug builds),
//! and records one [`PassReport`] per executed pass — change count,
//! wall-clock duration, and (optionally) before/after [`DynoStats`].
//!
//! The Table-1 order, as registered by [`PassManager::standard`]:
//!
//! | # | pass | module |
//! |---|------|--------|
//! | 1 | `strip-rep-ret` | [`peephole`] |
//! | 2 | `icf` | [`icf`] |
//! | 3 | `icp` | [`icp`] |
//! | 4 | `peepholes` | [`peephole`] |
//! | 5 | `inline-small` | [`inline_small`] |
//! | 6 | `simplify-ro-loads` | [`ro_loads`] |
//! | 7 | `icf` (2nd) | [`icf`] |
//! | 8 | `plt` | [`plt`] |
//! | 9 | `reorder-bbs` + splitting | [`layout`] |
//! | 10 | `peepholes` (2nd) | [`peephole`] |
//! | 11 | `uce` | [`uce`] |
//! | 12 | `fixup-branches` | [`fixup`] |
//! | 13 | `reorder-functions` | [`reorder_functions`] |
//! | 14 | `sctc` | [`sctc`] |
//! | 15 | `frame-opts` | [`frame`] |
//! | 16 | `shrink-wrapping` | [`frame`] |
//!
//! plus a second `fixup-branches` instance right after `sctc` (sctc
//! rewires terminators; the re-run reports its own time and change
//! count) and the `dyno-stats` reporting of paper Table 2 ([`dyno`]).
//!
//! ## Parallel execution
//!
//! Per-function pure passes (`strip-rep-ret`, `peepholes`, `uce`,
//! `fixup-branches`, `sctc`, `frame-opts`, `shrink-wrapping`) also
//! implement [`FunctionPass`]; the manager shards `ctx.functions`
//! across `std::thread::scope` workers when
//! [`ManagerConfig::threads`] resolves to more than one (the
//! `-threads=N` CLI knob; `0` = auto, `1` = serial). Results are
//! byte-identical at any thread count — see [`function_pass`].
//!
//! ## Running the pipeline
//!
//! [`run_pipeline`] is the stable entry point: it builds the standard
//! manager and runs it. Callers that want per-pass dyno attribution (the
//! `-time-passes` surface) or a custom pass list construct a
//! [`PassManager`] directly:
//!
//! ```ignore
//! let mut manager = PassManager::standard(&opts);
//! manager.config.collect_dyno = true;
//! let result = manager.run(&mut ctx, &opts);
//! for r in &result.reports {
//!     println!("{:<20} {:>8} changes in {:?}", r.name, r.changes, r.duration);
//! }
//! ```
//!
//! ## Adding a pass
//!
//! Implement [`Pass`] (name, run, enabled) and register it at the right
//! position; nothing else in the crate needs editing. Repeated
//! registration of one pass is supported — the standard pipeline
//! registers `icf` and `peepholes` twice.

pub mod dyno;
pub mod fixup;
pub mod frame;
pub mod function_pass;
pub mod icf;
pub mod icp;
pub mod inline_small;
pub mod layout;
pub mod manager;
pub mod peephole;
pub mod plt;
pub mod reorder_functions;
pub mod ro_loads;
pub mod sctc;
pub mod uce;

pub use dyno::DynoStats;
pub use function_pass::{
    panic_message, resolve_threads, run_function_pass, run_function_pass_with, FunctionPass,
    KernelRun,
};
pub use layout::{BlockLayout, SplitMode};
pub use manager::{LintMode, ManagerConfig, Pass, PassManager, PoisonPass};

use bolt_ir::BinaryContext;
use std::time::Duration;

/// Options for the optimization pipeline (mirrors the BOLT command line
/// used in the paper's evaluation, section 6.2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct PassOptions {
    pub strip_rep_ret: bool,
    pub icf: bool,
    pub icp: bool,
    /// Minimum fraction of an indirect call's targets a single callee must
    /// take to be promoted.
    pub icp_threshold: f64,
    pub peepholes: bool,
    pub inline_small: bool,
    pub simplify_ro_loads: bool,
    pub plt: bool,
    /// `-reorder-blocks=`
    pub reorder_blocks: BlockLayout,
    /// `-split-functions=` mode.
    pub split_functions: SplitMode,
    /// `-split-all-cold`
    pub split_all_cold: bool,
    /// `-split-eh`
    pub split_eh: bool,
    pub uce: bool,
    /// `-reorder-functions=`
    pub reorder_functions: bolt_hfsort::Algorithm,
    pub sctc: bool,
    pub frame_opts: bool,
    pub shrink_wrapping: bool,
}

impl Default for PassOptions {
    fn default() -> PassOptions {
        // The configuration used throughout the paper's evaluation:
        // -reorder-blocks=cache+ -reorder-functions=hfsort+
        // -split-functions=3 -split-all-cold -split-eh -icf=1
        PassOptions {
            strip_rep_ret: true,
            icf: true,
            icp: true,
            icp_threshold: 0.51,
            peepholes: true,
            inline_small: true,
            simplify_ro_loads: true,
            plt: true,
            reorder_blocks: BlockLayout::CachePlus,
            split_functions: SplitMode::Profiled,
            split_all_cold: true,
            split_eh: true,
            uce: true,
            reorder_functions: bolt_hfsort::Algorithm::HfsortPlus,
            sctc: true,
            frame_opts: true,
            shrink_wrapping: true,
        }
    }
}

impl PassOptions {
    /// Only layout passes (for ablations): block reorder + function
    /// reorder, nothing else.
    pub fn layout_only() -> PassOptions {
        PassOptions {
            strip_rep_ret: false,
            icf: false,
            icp: false,
            peepholes: false,
            inline_small: false,
            simplify_ro_loads: false,
            plt: false,
            sctc: false,
            frame_opts: false,
            shrink_wrapping: false,
            ..PassOptions::default()
        }
    }

    /// Function reordering only (paper Figure 11's "Functions" bars).
    pub fn functions_only() -> PassOptions {
        PassOptions {
            reorder_blocks: BlockLayout::None,
            split_functions: SplitMode::None,
            split_all_cold: false,
            split_eh: false,
            ..PassOptions::layout_only()
        }
    }

    /// Basic-block passes only (paper Figure 11's "BBs" bars).
    pub fn bbs_only() -> PassOptions {
        PassOptions {
            reorder_functions: bolt_hfsort::Algorithm::None,
            ..PassOptions::default()
        }
    }

    /// Everything disabled (identity rewrite). Unlike
    /// [`layout_only`](Self::layout_only), this turns `uce` off too —
    /// an identity rewrite must not delete blocks.
    pub fn none() -> PassOptions {
        PassOptions {
            reorder_blocks: BlockLayout::None,
            split_functions: SplitMode::None,
            split_all_cold: false,
            split_eh: false,
            reorder_functions: bolt_hfsort::Algorithm::None,
            uce: false,
            ..PassOptions::layout_only()
        }
    }

    /// Looks up a named preset (the CLI's `-preset=` values). Accepts
    /// both dash and underscore spellings; returns `None` for unknown
    /// names.
    pub fn preset(name: &str) -> Option<PassOptions> {
        match name.replace('_', "-").as_str() {
            "default" | "paper" => Some(PassOptions::default()),
            "layout-only" => Some(PassOptions::layout_only()),
            "functions-only" => Some(PassOptions::functions_only()),
            "bbs-only" => Some(PassOptions::bbs_only()),
            "none" => Some(PassOptions::none()),
            _ => None,
        }
    }

    /// The names [`preset`](Self::preset) accepts (canonical spellings).
    pub const PRESETS: &'static [&'static str] = &[
        "default",
        "layout-only",
        "functions-only",
        "bbs-only",
        "none",
    ];
}

/// Per-pass activity report.
///
/// Equality compares the semantic fields only — name and change count —
/// so reports from two runs of the same pipeline compare equal even
/// though their wall-clock [`duration`](Self::duration)s differ.
#[derive(Debug, Clone, Default)]
pub struct PassReport {
    pub name: &'static str,
    /// Number of program changes the pass made (pass-specific unit).
    pub changes: u64,
    /// Wall-clock time the pass took (`-time-passes`).
    pub duration: Duration,
    /// Dyno stats sampled before the pass, when the manager was asked to
    /// collect per-pass deltas ([`ManagerConfig::collect_dyno`]).
    pub dyno_before: Option<DynoStats>,
    /// Dyno stats sampled after the pass (same gating).
    pub dyno_after: Option<DynoStats>,
    /// Whether the manager skipped this instance instead of executing it
    /// ([`ManagerConfig::skip_unchanged`]: a repeated registration whose
    /// earlier instance reported zero changes this run). Skipped
    /// instances report zero changes and zero duration.
    pub skipped: bool,
}

impl PartialEq for PassReport {
    fn eq(&self, other: &PassReport) -> bool {
        self.name == other.name && self.changes == other.changes
    }
}

impl Eq for PassReport {}

impl PassReport {
    /// The pass's effect on dynamically taken branches, when per-pass
    /// dyno collection was enabled and the baseline is nonzero.
    pub fn taken_branch_delta(&self) -> Option<f64> {
        let (before, after) = (self.dyno_before?, self.dyno_after?);
        if before.taken_branches == 0 {
            return None;
        }
        Some(after.taken_branch_delta(&before))
    }
}

/// One caught pass failure: a per-function kernel panic (carrying the
/// function name) or a whole-context pass panic (`function` is `None` —
/// the context can no longer be trusted and the pipeline stops).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassFailure {
    /// Pass instance name, e.g. `"icf(2)"`.
    pub pass: String,
    /// The function whose kernel panicked; `None` for a whole-context
    /// pass failure.
    pub function: Option<String>,
    /// The rendered panic payload.
    pub detail: String,
}

/// The result of running the whole pipeline.
#[derive(Debug, Clone, Default)]
pub struct PipelineResult {
    pub reports: Vec<PassReport>,
    /// Function emission order chosen by `reorder-functions` (indices into
    /// `ctx.functions`).
    pub function_order: Vec<usize>,
    /// IR-lint findings collected when [`ManagerConfig::lint`] is not
    /// [`LintMode::Off`]; empty on a healthy pipeline.
    pub findings: Vec<bolt_verify::Finding>,
    /// Pass panics caught by the manager's firewalls; empty on a
    /// healthy pipeline. Kernel failures quarantine one function each;
    /// a whole-context failure aborts the remaining pipeline (see
    /// [`aborted_by`](Self::aborted_by)).
    pub failures: Vec<PassFailure>,
}

impl PipelineResult {
    /// Total wall-clock time across all executed passes.
    pub fn total_duration(&self) -> Duration {
        self.reports.iter().map(|r| r.duration).sum()
    }

    /// The whole-context pass failure that aborted the pipeline early,
    /// if any. After such a failure the context is untrusted: the
    /// driver must discard it and retry with the pass disabled rather
    /// than emit from it.
    pub fn aborted_by(&self) -> Option<&PassFailure> {
        self.failures.iter().find(|f| f.function.is_none())
    }
}

/// Runs the full Table 1 pipeline over the context.
///
/// A thin shim over [`PassManager::standard`] kept for the driver, the
/// benches, and the tests; construct the manager directly to customize
/// validation, per-pass dyno collection, or the pass list itself.
pub fn run_pipeline(ctx: &mut BinaryContext, opts: &PassOptions) -> PipelineResult {
    PassManager::standard(opts).run(ctx, opts)
}

/// The pass names and descriptions of paper Table 1 in pipeline order
/// (printed by the `table1_pipeline` bench target).
pub const TABLE1: &[(&str, &str)] = &[
    ("strip-rep-ret", "Strip repz from repz retq instructions used for legacy AMD processors"),
    ("icf", "Identical code folding"),
    ("icp", "Indirect call promotion"),
    ("peepholes", "Simple peephole optimizations"),
    ("inline-small", "Inline small functions"),
    ("simplify-ro-loads", "Fetch constant data in .rodata whose address is known statically and mutate a load into a mov"),
    ("icf", "Identical code folding (second run)"),
    ("plt", "Remove indirection from PLT calls"),
    ("reorder-bbs", "Reorder basic blocks and split hot/cold blocks into separate sections (layout optimization)"),
    ("peepholes", "Simple peephole optimizations (second run)"),
    ("uce", "Eliminate unreachable basic blocks"),
    ("fixup-branches", "Fix basic block terminator instructions to match the CFG and the current layout"),
    ("reorder-functions", "Apply HFSort to reorder functions (layout optimization)"),
    ("sctc", "Simplify conditional tail calls"),
    ("frame-opts", "Removes unnecessary caller-saved register spilling"),
    ("shrink-wrapping", "Moves callee-saved register spills closer to where they are needed"),
];
