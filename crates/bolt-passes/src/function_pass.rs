//! The [`FunctionPass`] adapter: parallel execution for per-function
//! pure passes.
//!
//! BOLT processes functions concurrently (paper section 3) because most
//! Table-1 transformations only ever touch one [`BinaryFunction`] at a
//! time. A pass that can be expressed as a pure per-function kernel
//! implements [`FunctionPass`]; [`run_function_pass`] shards
//! `ctx.functions` across `std::thread::scope` workers the same way
//! `bolt-opt::disasm::disassemble_all` shards disassembly.
//!
//! Determinism: each kernel owns exactly one function and nothing else,
//! so the post-pass context is identical at any worker count, and the
//! change counts are reduced in function index order (each worker owns
//! one contiguous chunk; chunk subtotals are summed in chunk order).
//! `PassManager::run` therefore produces byte-identical
//! [`PipelineResult`](crate::PipelineResult)s for `threads = 1` and
//! `threads = N`.

use bolt_ir::{BinaryContext, BinaryFunction, NonSimpleReason};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Below this many functions the sharded path stays serial: thread
/// spawn/join overhead dwarfs the kernel work on such small contexts
/// (disassembly uses the same kind of fallback). Kept low enough that
/// the Scale::Test workload fixtures (~20 functions) still exercise
/// sharding in the integration tests.
const PARALLEL_THRESHOLD: usize = 8;

/// Hard ceiling on workers, applied to explicit `-threads=N` /
/// `BOLT_THREADS` values as well as auto-detection: a pathological
/// request (`-threads=100000`) must degrade to a bounded worker pool,
/// never one OS thread per function.
const MAX_THREADS: usize = 64;

/// A pass expressible as a pure per-function kernel.
///
/// The kernel must read and write *only* the function it is handed —
/// no context tables, no other functions, no globals — and must not
/// depend on the order functions are visited in. `Sync` is required
/// because one kernel instance is shared by every worker. Naming and
/// option gating stay on the [`Pass`](crate::Pass) side; this trait is
/// only the execution kernel.
pub trait FunctionPass: Sync {
    /// Runs the kernel on one function; returns the number of changes.
    /// Applicability checks (`is_simple`, folded functions, …) belong
    /// inside the kernel so serial and sharded runs agree exactly.
    fn run_on_function(&self, func: &mut BinaryFunction) -> u64;
}

/// Resolves a worker-count knob to an effective thread count.
///
/// * `threads >= 1`: that many workers (`1` forces the serial path).
/// * `threads == 0` (auto): the `BOLT_THREADS` environment override if
///   set and positive, else [`std::thread::available_parallelism`]
///   (capped at 8, like disassembly sharding).
///
/// Every source is clamped to a 64-worker ceiling — the result is
/// byte-identical at any count, so an oversized request only costs
/// wall clock, never correctness.
pub fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        return threads.min(MAX_THREADS);
    }
    if let Ok(v) = std::env::var("BOLT_THREADS") {
        match v.trim().parse::<usize>() {
            // An explicit 0 requests auto-detection, like `-threads=0`.
            Ok(0) => {}
            Ok(n) => return n.min(MAX_THREADS),
            // A set-but-garbled override must fail loudly: silently
            // falling back to auto would let a CI typo turn the forced
            // serial leg into a parallel run.
            Err(_) => panic!("BOLT_THREADS must be a non-negative integer, got {v:?}"),
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

/// The outcome of one sharded kernel sweep: the total change count plus
/// every kernel panic caught at the per-function boundary, both reduced
/// in function index order.
#[derive(Debug, Default)]
pub struct KernelRun {
    /// Total changes across all functions the kernel completed on.
    pub changes: u64,
    /// `(function name, panic payload)` for each function whose kernel
    /// panicked. The function itself has already been marked
    /// non-simple ([`NonSimpleReason::Quarantined`]) so later passes,
    /// validation, and emission skip its half-mutated IR.
    pub failures: Vec<(String, String)>,
}

/// Renders a caught panic payload for failure reports. Panics raised by
/// `panic!("...")` carry a `String` (or `&str` for literal messages);
/// anything else gets a generic label rather than being re-thrown.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs the kernel on one function with the panic firewall: a panicking
/// kernel quarantines exactly that function (marked non-simple so its
/// original bytes are emitted verbatim) instead of unwinding through
/// the worker and killing the whole pipeline.
fn run_one(
    pass: &dyn FunctionPass,
    func: &mut BinaryFunction,
    out: &mut KernelRun,
    firewall: bool,
) {
    if !firewall {
        out.changes += pass.run_on_function(func);
        return;
    }
    match catch_unwind(AssertUnwindSafe(|| pass.run_on_function(func))) {
        Ok(n) => out.changes += n,
        Err(payload) => {
            // The kernel died mid-mutation; whatever state it left the
            // IR in is untrusted. Demote immediately so `validate_all`,
            // later kernels, and `rewrite_binary` all skip it.
            func.is_simple = false;
            func.non_simple_reason = Some(NonSimpleReason::Quarantined);
            out.failures
                .push((func.name.clone(), panic_message(payload.as_ref())));
        }
    }
}

/// Runs `pass` over every function in `ctx`, sharded across `n_threads`
/// scoped workers (`n_threads` as returned by [`resolve_threads`]).
/// Each kernel invocation is isolated with `catch_unwind`, so a
/// panicking kernel poisons only its own function (see [`KernelRun`]).
pub fn run_function_pass(
    pass: &dyn FunctionPass,
    ctx: &mut BinaryContext,
    n_threads: usize,
) -> KernelRun {
    run_function_pass_with(pass, ctx, n_threads, true)
}

/// [`run_function_pass`] with the panic firewall switchable. Turning the
/// firewall off removes the per-function `catch_unwind` (a panicking
/// kernel then unwinds through the worker and aborts the sweep) — meant
/// only for measuring the firewall's clean-run cost, e.g. the
/// `"quarantine"` section of `bench-snapshot`. Production callers go
/// through [`run_function_pass`] / [`ManagerConfig::firewall`]
/// (see [`crate::ManagerConfig`]), which default to firewalled.
pub fn run_function_pass_with(
    pass: &dyn FunctionPass,
    ctx: &mut BinaryContext,
    n_threads: usize,
    firewall: bool,
) -> KernelRun {
    if n_threads <= 1 || ctx.functions.len() < PARALLEL_THRESHOLD {
        let mut out = KernelRun::default();
        for f in ctx.functions.iter_mut() {
            run_one(pass, f, &mut out, firewall);
        }
        return out;
    }
    let chunk = ctx.functions.len().div_ceil(n_threads);
    // Each worker owns one contiguous chunk of functions (index order);
    // chunk subtotals (changes and failure lists alike) are reduced in
    // chunk order, so the result is deterministic regardless of worker
    // scheduling.
    std::thread::scope(|scope| {
        let handles: Vec<_> = ctx
            .functions
            .chunks_mut(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    let mut out = KernelRun::default();
                    for f in slice.iter_mut() {
                        run_one(pass, f, &mut out, firewall);
                    }
                    out
                })
            })
            .collect();
        let mut total = KernelRun::default();
        for h in handles {
            let part = h.join().expect("function-pass worker");
            total.changes += part.changes;
            total.failures.extend(part.failures);
        }
        total
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_isa::Inst;

    struct CountRets;

    impl FunctionPass for CountRets {
        fn run_on_function(&self, func: &mut BinaryFunction) -> u64 {
            func.blocks
                .iter()
                .flat_map(|b| &b.insts)
                .filter(|i| i.inst == Inst::Ret)
                .count() as u64
        }
    }

    fn many_function_ctx(n: usize) -> BinaryContext {
        let mut ctx = BinaryContext::new();
        for i in 0..n {
            let mut f = BinaryFunction::new(format!("f{i}"), 0x1000 + 0x100 * i as u64);
            let b = f.add_block(bolt_ir::BasicBlock::new());
            f.block_mut(b).push(Inst::Ret);
            ctx.add_function(f);
        }
        ctx
    }

    #[test]
    fn sharded_run_matches_serial_at_every_thread_count() {
        for n in [1, 2, 3, 7, 8, 64] {
            let mut ctx = many_function_ctx(41);
            let run = run_function_pass(&CountRets, &mut ctx, n);
            assert_eq!(run.changes, 41, "threads={n}");
            assert!(run.failures.is_empty(), "threads={n}");
        }
    }

    /// A kernel that panics on chosen functions: a stand-in for any
    /// buggy pass, used to prove the per-function firewall.
    struct PanicOn(&'static str);

    impl FunctionPass for PanicOn {
        fn run_on_function(&self, func: &mut BinaryFunction) -> u64 {
            if func.name == self.0 {
                panic!("injected kernel fault on {}", func.name);
            }
            1
        }
    }

    #[test]
    fn kernel_panic_quarantines_only_that_function() {
        for n in [1, 4] {
            let mut ctx = many_function_ctx(41);
            let run = run_function_pass(&PanicOn("f17"), &mut ctx, n);
            assert_eq!(run.changes, 40, "threads={n}: every other kernel ran");
            assert_eq!(
                run.failures,
                vec![(
                    "f17".to_string(),
                    "injected kernel fault on f17".to_string()
                )],
                "threads={n}"
            );
            let poisoned = &ctx.functions[17];
            assert!(!poisoned.is_simple);
            assert_eq!(
                poisoned.non_simple_reason,
                Some(bolt_ir::NonSimpleReason::Quarantined)
            );
            assert!(
                ctx.functions
                    .iter()
                    .enumerate()
                    .all(|(i, f)| i == 17 || f.is_simple),
                "threads={n}: siblings untouched"
            );
        }
    }

    #[test]
    fn explicit_thread_counts_win_over_auto() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(5), 5);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn pathological_thread_counts_are_clamped() {
        assert_eq!(resolve_threads(100_000), 64);
        assert_eq!(resolve_threads(64), 64);
        assert_eq!(resolve_threads(65), 64);
    }
}
