//! The [`FunctionPass`] adapter: parallel execution for per-function
//! pure passes.
//!
//! BOLT processes functions concurrently (paper section 3) because most
//! Table-1 transformations only ever touch one [`BinaryFunction`] at a
//! time. A pass that can be expressed as a pure per-function kernel
//! implements [`FunctionPass`]; [`run_function_pass`] shards
//! `ctx.functions` across `std::thread::scope` workers the same way
//! `bolt-opt::disasm::disassemble_all` shards disassembly.
//!
//! Determinism: each kernel owns exactly one function and nothing else,
//! so the post-pass context is identical at any worker count, and the
//! change counts are reduced in function index order (each worker owns
//! one contiguous chunk; chunk subtotals are summed in chunk order).
//! `PassManager::run` therefore produces byte-identical
//! [`PipelineResult`](crate::PipelineResult)s for `threads = 1` and
//! `threads = N`.

use bolt_ir::{BinaryContext, BinaryFunction};

/// Below this many functions the sharded path stays serial: thread
/// spawn/join overhead dwarfs the kernel work on such small contexts
/// (disassembly uses the same kind of fallback). Kept low enough that
/// the Scale::Test workload fixtures (~20 functions) still exercise
/// sharding in the integration tests.
const PARALLEL_THRESHOLD: usize = 8;

/// Hard ceiling on workers, applied to explicit `-threads=N` /
/// `BOLT_THREADS` values as well as auto-detection: a pathological
/// request (`-threads=100000`) must degrade to a bounded worker pool,
/// never one OS thread per function.
const MAX_THREADS: usize = 64;

/// A pass expressible as a pure per-function kernel.
///
/// The kernel must read and write *only* the function it is handed —
/// no context tables, no other functions, no globals — and must not
/// depend on the order functions are visited in. `Sync` is required
/// because one kernel instance is shared by every worker. Naming and
/// option gating stay on the [`Pass`](crate::Pass) side; this trait is
/// only the execution kernel.
pub trait FunctionPass: Sync {
    /// Runs the kernel on one function; returns the number of changes.
    /// Applicability checks (`is_simple`, folded functions, …) belong
    /// inside the kernel so serial and sharded runs agree exactly.
    fn run_on_function(&self, func: &mut BinaryFunction) -> u64;
}

/// Resolves a worker-count knob to an effective thread count.
///
/// * `threads >= 1`: that many workers (`1` forces the serial path).
/// * `threads == 0` (auto): the `BOLT_THREADS` environment override if
///   set and positive, else [`std::thread::available_parallelism`]
///   (capped at 8, like disassembly sharding).
///
/// Every source is clamped to a 64-worker ceiling — the result is
/// byte-identical at any count, so an oversized request only costs
/// wall clock, never correctness.
pub fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        return threads.min(MAX_THREADS);
    }
    if let Ok(v) = std::env::var("BOLT_THREADS") {
        match v.trim().parse::<usize>() {
            // An explicit 0 requests auto-detection, like `-threads=0`.
            Ok(0) => {}
            Ok(n) => return n.min(MAX_THREADS),
            // A set-but-garbled override must fail loudly: silently
            // falling back to auto would let a CI typo turn the forced
            // serial leg into a parallel run.
            Err(_) => panic!("BOLT_THREADS must be a non-negative integer, got {v:?}"),
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

/// Runs `pass` over every function in `ctx`, sharded across `n_threads`
/// scoped workers (`n_threads` as returned by [`resolve_threads`]).
/// Returns the total change count, reduced in function index order.
pub fn run_function_pass(
    pass: &dyn FunctionPass,
    ctx: &mut BinaryContext,
    n_threads: usize,
) -> u64 {
    if n_threads <= 1 || ctx.functions.len() < PARALLEL_THRESHOLD {
        return ctx
            .functions
            .iter_mut()
            .map(|f| pass.run_on_function(f))
            .sum();
    }
    let chunk = ctx.functions.len().div_ceil(n_threads);
    // Each worker owns one contiguous chunk of functions (index order);
    // chunk subtotals are summed in chunk order, so the reduction is
    // deterministic regardless of worker scheduling.
    std::thread::scope(|scope| {
        let handles: Vec<_> = ctx
            .functions
            .chunks_mut(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    slice
                        .iter_mut()
                        .map(|f| pass.run_on_function(f))
                        .sum::<u64>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("function-pass worker"))
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_isa::Inst;

    struct CountRets;

    impl FunctionPass for CountRets {
        fn run_on_function(&self, func: &mut BinaryFunction) -> u64 {
            func.blocks
                .iter()
                .flat_map(|b| &b.insts)
                .filter(|i| i.inst == Inst::Ret)
                .count() as u64
        }
    }

    fn many_function_ctx(n: usize) -> BinaryContext {
        let mut ctx = BinaryContext::new();
        for i in 0..n {
            let mut f = BinaryFunction::new(format!("f{i}"), 0x1000 + 0x100 * i as u64);
            let b = f.add_block(bolt_ir::BasicBlock::new());
            f.block_mut(b).push(Inst::Ret);
            ctx.add_function(f);
        }
        ctx
    }

    #[test]
    fn sharded_run_matches_serial_at_every_thread_count() {
        for n in [1, 2, 3, 7, 8, 64] {
            let mut ctx = many_function_ctx(41);
            assert_eq!(
                run_function_pass(&CountRets, &mut ctx, n),
                41,
                "threads={n}"
            );
        }
    }

    #[test]
    fn explicit_thread_counts_win_over_auto() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(5), 5);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn pathological_thread_counts_are_clamped() {
        assert_eq!(resolve_threads(100_000), 64);
        assert_eq!(resolve_threads(64), 64);
        assert_eq!(resolve_threads(65), 64);
    }
}
