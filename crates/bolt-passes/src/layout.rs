//! Pass 9: `reorder-bbs` — basic-block layout and hot/cold splitting
//! (the most effective BOLT pass, together with function reordering;
//! paper section 4).

use bolt_ir::{BinaryContext, BinaryFunction, BlockId};
use bolt_isa::encoded_len;

/// `-reorder-blocks=` algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockLayout {
    /// Keep the original layout.
    None,
    /// Reverse the original layout (a sanity-check pessimization).
    Reverse,
    /// Greedy Pettis–Hansen chaining on edge weights (`branch`).
    Branch,
    /// Like `cache+` but without distance-sensitive scoring.
    Cache,
    /// ExtTSP-style layout (`cache+`, the paper's configuration).
    #[default]
    CachePlus,
}

/// `-split-functions=` mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitMode {
    /// No splitting.
    None,
    /// Split cold blocks out of profiled functions (the paper's
    /// `-split-functions=3 -split-all-cold`).
    #[default]
    Profiled,
}

/// Runs block reordering + splitting over every simple function with
/// profile data. Returns the number of functions whose layout changed.
pub fn run_reorder_bbs(
    ctx: &mut BinaryContext,
    algo: BlockLayout,
    split: SplitMode,
    split_all_cold: bool,
    split_eh: bool,
) -> u64 {
    let mut changed = 0;
    for func in ctx.functions.iter_mut().filter(|f| f.is_simple) {
        if func.folded_into.is_some() {
            continue;
        }
        let before = func.layout.clone();
        if algo != BlockLayout::None && func.exec_count > 0 && func.layout.len() > 2 {
            reorder_function(func, algo);
        }
        if split != SplitMode::None && func.exec_count > 0 {
            split_function(func, split_all_cold, split_eh);
        }
        if func.layout != before || func.cold_start.is_some() {
            changed += 1;
        }
    }
    changed
}

/// Estimated byte size of a block.
fn block_size(func: &BinaryFunction, id: BlockId) -> u64 {
    func.block(id)
        .insts
        .iter()
        .map(|i| encoded_len(&i.inst) as u64)
        .sum()
}

/// Reorders one function's layout in place.
pub fn reorder_function(func: &mut BinaryFunction, algo: BlockLayout) {
    match algo {
        BlockLayout::None => {}
        BlockLayout::Reverse => {
            let entry = func.entry();
            let mut rest: Vec<BlockId> = func
                .layout
                .iter()
                .copied()
                .filter(|b| *b != entry)
                .collect();
            rest.reverse();
            let mut layout = vec![entry];
            layout.extend(rest);
            func.layout = layout;
        }
        BlockLayout::Branch | BlockLayout::Cache => greedy_chains(func, false),
        BlockLayout::CachePlus => {
            if func.layout.len() <= 400 {
                ext_tsp(func);
            } else {
                greedy_chains(func, true);
            }
        }
    }
}

/// Greedy Pettis–Hansen chaining: merge chains across the heaviest edges
/// whenever the source is a chain tail and the target a chain head.
/// With `hot_first`, final chains are emitted hottest-first.
fn greedy_chains(func: &mut BinaryFunction, hot_first: bool) {
    let n = func.blocks.len();
    let mut edges: Vec<(u64, usize, usize)> = Vec::new();
    for (id, b) in func.iter_layout() {
        for e in &b.succs {
            if e.block != id {
                edges.push((e.count, id.index(), e.block.index()));
            }
        }
    }
    edges.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    let live: Vec<bool> = {
        let mut v = vec![false; n];
        for id in &func.layout {
            v[id.index()] = true;
        }
        v
    };
    let mut chain_of: Vec<usize> = (0..n).collect();
    let mut chains: Vec<Vec<usize>> = (0..n)
        .map(|b| if live[b] { vec![b] } else { vec![] })
        .collect();
    let entry = func.entry().index();
    for (w, from, to) in edges {
        if w == 0 {
            break;
        }
        let cf = chain_of[from];
        let ct = chain_of[to];
        if cf == ct || to == entry {
            continue;
        }
        if chains[cf].last() == Some(&from) && chains[ct].first() == Some(&to) {
            let tail = std::mem::take(&mut chains[ct]);
            for b in &tail {
                chain_of[*b] = cf;
            }
            chains[cf].extend(tail);
        }
    }
    emit_chains(func, chains, chain_of, hot_first);
}

fn emit_chains(
    func: &mut BinaryFunction,
    chains: Vec<Vec<usize>>,
    chain_of: Vec<usize>,
    hot_first: bool,
) {
    let entry_chain = chain_of[func.entry().index()];
    let mut ids: Vec<usize> = (0..chains.len())
        .filter(|&c| !chains[c].is_empty())
        .collect();
    let heat = |c: usize| -> u64 {
        chains[c]
            .iter()
            .map(|&b| func.block(BlockId(b as u32)).exec_count)
            .max()
            .unwrap_or(0)
    };
    if hot_first {
        ids.sort_by_key(|&c| {
            (
                std::cmp::Reverse(u64::from(c == entry_chain)),
                std::cmp::Reverse(heat(c)),
                c,
            )
        });
    } else {
        ids.sort_by_key(|&c| (std::cmp::Reverse(u64::from(c == entry_chain)), c));
    }
    let before_len = func.layout.len();
    let mut layout = Vec::with_capacity(before_len);
    for c in ids {
        for &b in &chains[c] {
            layout.push(BlockId(b as u32));
        }
    }
    debug_assert_eq!(layout.len(), before_len);
    func.layout = layout;
}

/// ExtTSP constants (Newell & Pupyrev's extended-TSP model, used by
/// BOLT's `cache+`).
const FORWARD_DISTANCE: f64 = 1024.0;
const BACKWARD_DISTANCE: f64 = 640.0;
const FALLTHROUGH_WEIGHT: f64 = 1.0;
const FORWARD_WEIGHT: f64 = 0.1;
const BACKWARD_WEIGHT: f64 = 0.1;

/// ExtTSP contribution of one edge given src end and dst start offsets.
fn ext_tsp_edge_score(w: u64, src_end: f64, dst_start: f64) -> f64 {
    let w = w as f64;
    if (src_end - dst_start).abs() < f64::EPSILON {
        return FALLTHROUGH_WEIGHT * w;
    }
    if dst_start > src_end {
        let d = dst_start - src_end;
        if d < FORWARD_DISTANCE {
            return FORWARD_WEIGHT * w * (1.0 - d / FORWARD_DISTANCE);
        }
    } else {
        let d = src_end - dst_start;
        if d < BACKWARD_DISTANCE {
            return BACKWARD_WEIGHT * w * (1.0 - d / BACKWARD_DISTANCE);
        }
    }
    0.0
}

/// Greedy ExtTSP chain merging: repeatedly merge the chain pair (in the
/// orientation) with the best score gain.
fn ext_tsp(func: &mut BinaryFunction) {
    let n = func.blocks.len();
    let sizes: Vec<u64> = (0..n)
        .map(|b| block_size(func, BlockId(b as u32)))
        .collect();
    let live: Vec<bool> = {
        let mut v = vec![false; n];
        for id in &func.layout {
            v[id.index()] = true;
        }
        v
    };
    // Edge list.
    let mut edges: Vec<(usize, usize, u64)> = Vec::new();
    for (id, b) in func.iter_layout() {
        for e in &b.succs {
            if e.block != id && e.count > 0 {
                edges.push((id.index(), e.block.index(), e.count));
            }
        }
    }

    let mut chain_of: Vec<usize> = (0..n).collect();
    let mut chains: Vec<Vec<usize>> = (0..n)
        .map(|b| if live[b] { vec![b] } else { vec![] })
        .collect();
    let entry = func.entry().index();

    // Score of edges internal to (the concatenation of) chains a then b.
    let score_concat = |a: &[usize], b: &[usize], edges: &[(usize, usize, u64)]| -> f64 {
        // Offsets.
        let mut offset = vec![f64::NAN; n];
        let mut pos = 0.0f64;
        for &blk in a.iter().chain(b.iter()) {
            offset[blk] = pos;
            pos += sizes[blk] as f64;
        }
        let mut score = 0.0;
        for &(s, t, w) in edges {
            let (so, to) = (offset[s], offset[t]);
            if so.is_nan() || to.is_nan() {
                continue;
            }
            score += ext_tsp_edge_score(w, so + sizes[s] as f64, to);
        }
        score
    };

    loop {
        // Candidate chain pairs connected by at least one edge.
        let mut best: Option<(f64, usize, usize)> = None;
        let mut seen_pairs = std::collections::HashSet::new();
        for &(s, t, _) in &edges {
            let (ca, cb) = (chain_of[s], chain_of[t]);
            if ca == cb || chains[ca].is_empty() || chains[cb].is_empty() {
                continue;
            }
            for (x, y) in [(ca, cb), (cb, ca)] {
                // The entry block must stay first overall; never put a
                // chain before the entry chain.
                if chains[y].first() == Some(&entry) {
                    continue;
                }
                if !seen_pairs.insert((x, y)) {
                    continue;
                }
                let base =
                    score_concat(&chains[x], &[], &edges) + score_concat(&chains[y], &[], &edges);
                let merged = score_concat(&chains[x], &chains[y], &edges);
                let gain = merged - base;
                if gain > 1e-9 && best.map(|(g, _, _)| gain > g).unwrap_or(true) {
                    best = Some((gain, x, y));
                }
            }
        }
        let Some((_, x, y)) = best else { break };
        let tail = std::mem::take(&mut chains[y]);
        for &b in &tail {
            chain_of[b] = x;
        }
        chains[x].extend(tail);
    }
    emit_chains(func, chains, chain_of, true);
}

/// Moves cold blocks to the end of the layout and records the split point
/// (paper sections 3.1–3.2: function splitting).
pub fn split_function(func: &mut BinaryFunction, split_all_cold: bool, split_eh: bool) {
    let entry = func.entry();
    let is_cold = |func: &BinaryFunction, id: BlockId| -> bool {
        if id == entry {
            return false;
        }
        let b = func.block(id);
        if b.is_landing_pad {
            // -split-eh: landing pads go cold unless they are hot.
            return split_eh && b.exec_count == 0;
        }
        split_all_cold && b.exec_count == 0
    };
    let hot: Vec<BlockId> = func
        .layout
        .iter()
        .copied()
        .filter(|&b| !is_cold(func, b))
        .collect();
    let cold: Vec<BlockId> = func
        .layout
        .iter()
        .copied()
        .filter(|&b| is_cold(func, b))
        .collect();
    if cold.is_empty() {
        func.cold_start = None;
        return;
    }
    let split_at = hot.len();
    let mut layout = hot;
    layout.extend(cold);
    func.layout = layout;
    func.cold_start = Some(split_at);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_ir::{edges, BasicBlock};
    use bolt_isa::{Cond, Inst, JumpWidth, Label, Target};

    /// Chain-shaped CFG where the source order is pessimal:
    /// 0 -> 3 (hot 100) / 1 (cold 1); 3 -> 2 (hot); 1 -> 2; 2: ret.
    fn pessimal() -> BinaryFunction {
        let mut f = BinaryFunction::new("f", 0x1000);
        f.exec_count = 101;
        for _ in 0..4 {
            f.add_block(BasicBlock::new());
        }
        f.block_mut(BlockId(0)).push(Inst::Jcc {
            cond: Cond::E,
            target: Target::Label(Label(3)),
            width: JumpWidth::Near,
        });
        f.block_mut(BlockId(0)).succs = edges(&[(3, 100), (1, 1)]);
        f.block_mut(BlockId(0)).exec_count = 101;
        f.block_mut(BlockId(1)).push(Inst::Nop { len: 1 });
        f.block_mut(BlockId(1)).succs = edges(&[(2, 1)]);
        f.block_mut(BlockId(1)).exec_count = 1;
        f.block_mut(BlockId(2)).push(Inst::Ret);
        f.block_mut(BlockId(2)).exec_count = 101;
        f.block_mut(BlockId(3)).push(Inst::Nop { len: 1 });
        f.block_mut(BlockId(3)).succs = edges(&[(2, 100)]);
        f.block_mut(BlockId(3)).exec_count = 100;
        f.rebuild_preds();
        f
    }

    #[test]
    fn hot_path_becomes_contiguous() {
        for algo in [
            BlockLayout::Branch,
            BlockLayout::Cache,
            BlockLayout::CachePlus,
        ] {
            let mut f = pessimal();
            reorder_function(&mut f, algo);
            let pos = |b: u32| f.layout.iter().position(|x| x.0 == b).unwrap();
            assert_eq!(f.layout[0], BlockId(0), "{algo:?}: entry first");
            assert_eq!(
                pos(3),
                1,
                "{algo:?}: hot successor follows entry in {:?}",
                f.layout
            );
            assert!(
                pos(2) < pos(1) || pos(2) == pos(3) + 1,
                "{algo:?}: hot chain continues"
            );
            // Permutation preserved.
            let mut ids: Vec<u32> = f.layout.iter().map(|b| b.0).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn reverse_is_a_valid_pessimization() {
        let mut f = pessimal();
        reorder_function(&mut f, BlockLayout::Reverse);
        assert_eq!(f.layout[0], BlockId(0), "entry still first");
        let mut ids: Vec<u32> = f.layout.iter().map(|b| b.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn splitting_moves_cold_blocks() {
        let mut f = pessimal();
        // Make block 1 completely cold.
        f.block_mut(BlockId(1)).exec_count = 0;
        f.block_mut(BlockId(0)).succs = edges(&[(3, 100), (1, 0)]);
        reorder_function(&mut f, BlockLayout::CachePlus);
        split_function(&mut f, true, true);
        assert!(f.is_split());
        let cold = f.cold_start.unwrap();
        assert_eq!(&f.layout[cold..], &[BlockId(1)]);
    }

    #[test]
    fn ext_tsp_scoring_prefers_fallthrough() {
        let ft = ext_tsp_edge_score(100, 64.0, 64.0);
        let near_fwd = ext_tsp_edge_score(100, 64.0, 128.0);
        let far_fwd = ext_tsp_edge_score(100, 64.0, 5000.0);
        let back = ext_tsp_edge_score(100, 640.0, 0.0);
        assert!(ft > near_fwd, "fallthrough beats a short jump");
        assert!(near_fwd > far_fwd, "near jump beats far jump");
        assert_eq!(far_fwd, 0.0);
        assert!(back < ft && back >= 0.0);
    }

    #[test]
    fn zero_profile_functions_untouched() {
        let mut ctx = BinaryContext::new();
        let mut f = pessimal();
        f.exec_count = 0;
        let before = f.layout.clone();
        ctx.add_function(f);
        run_reorder_bbs(
            &mut ctx,
            BlockLayout::CachePlus,
            SplitMode::Profiled,
            true,
            true,
        );
        assert_eq!(ctx.functions[0].layout, before);
        assert!(!ctx.functions[0].is_split());
    }
}
