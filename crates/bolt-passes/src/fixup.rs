//! Pass 12: `fixup-branches` — make every block's terminator consistent
//! with the CFG and the current layout (paper Table 1: "redone by
//! reorder-bbs").
//!
//! After this pass:
//! * a conditional block ends with `jcc` to its *taken* successor
//!   (`succs[0]`) and falls through to `succs[1]`, which is physically
//!   next — or reaches it through an inserted jump trampoline;
//! * an unconditional successor that is physically next has no trailing
//!   `jmp`; any other single successor has one;
//! * fall-through across the hot/cold split boundary never happens.

use bolt_ir::{BasicBlock, BinaryContext, BinaryFunction, BlockId, SuccEdge};
use bolt_isa::{Inst, JumpWidth, Label, Target};

fn label_of(b: BlockId) -> Target {
    Target::Label(Label(b.0))
}

/// Whether layout position `pos` may fall through to `pos + 1`.
fn may_fall_through(func: &BinaryFunction, pos: usize) -> bool {
    if pos + 1 >= func.layout.len() {
        return false;
    }
    // Never fall through into the cold fragment.
    func.cold_start != Some(pos + 1)
}

/// Runs the pass on every simple function; returns the number of
/// terminator changes (inversions, added/removed jumps, trampolines).
/// Whole-context wrapper over [`fixup_function`].
pub fn run_fixup_branches(ctx: &mut BinaryContext) -> u64 {
    ctx.functions.iter_mut().map(fixup_function).sum()
}

/// Per-function `fixup-branches` kernel (pure: touches only `func`).
pub fn fixup_function(func: &mut BinaryFunction) -> u64 {
    if !func.is_simple {
        return 0;
    }
    let mut changes = 0;
    let mut pos = 0;
    while pos < func.layout.len() {
        let id = func.layout[pos];
        let next = if may_fall_through(func, pos) {
            Some(func.layout[pos + 1])
        } else {
            None
        };

        let term = func.block(id).terminator().map(|t| t.inst);
        match term {
            Some(Inst::Jcc { cond, target, .. }) => {
                // Degenerate: a single successor conditional becomes
                // unconditional.
                if func.block(id).succs.len() == 1 {
                    let only = func.block(id).succs[0].block;
                    func.block_mut(id).insts.pop();
                    func.block_mut(id).push(Inst::Jmp {
                        target: label_of(only),
                        width: JumpWidth::Near,
                    });
                    changes += 1;
                    continue; // revisit as unconditional
                }
                // Conditional tail call (Addr target): the remaining edge
                // is the fall-through.
                if let Target::Addr(_) = target {
                    let ft = func.block(id).succs.first().map(|e| e.block);
                    if let Some(ft) = ft {
                        if next != Some(ft) {
                            insert_trampoline(func, pos, id, 0, ft);
                            changes += 1;
                        }
                    }
                    pos += 1;
                    continue;
                }
                let taken_label = match target {
                    Target::Label(l) => BlockId(l.0),
                    Target::Addr(_) => unreachable!("handled above"),
                };
                // Identify taken/fall edges from the CFG (succs[0] should
                // be taken, but normalize defensively).
                let (e0, e1) = (func.block(id).succs[0], func.block(id).succs[1]);
                let (taken, fall) = if e0.block == taken_label {
                    (e0, e1)
                } else {
                    (e1, e0)
                };

                if next == Some(fall.block) {
                    // Canonical shape; just normalize succ order/target.
                    if func.block(id).succs[0].block != taken.block
                        || func.block(id).terminator().unwrap().inst.target()
                            != Some(label_of(taken.block))
                    {
                        set_cond_shape(func, id, cond, taken, fall);
                        changes += 1;
                    }
                } else if next == Some(taken.block) {
                    // Invert so the hotter-on-next path falls through.
                    set_cond_shape(func, id, cond.invert(), fall, taken);
                    changes += 1;
                } else {
                    // Neither successor is next: keep the jcc to taken and
                    // reach the fall-through via a trampoline.
                    set_cond_shape(func, id, cond, taken, fall);
                    insert_trampoline(func, pos, id, 1, fall.block);
                    changes += 1;
                }
            }
            Some(Inst::Jmp {
                target: Target::Label(_),
                ..
            }) => {
                let succ = func.block(id).succs.first().map(|e| e.block);
                if let Some(s) = succ {
                    if next == Some(s) {
                        func.block_mut(id).insts.pop();
                        changes += 1;
                    } else if func.block(id).terminator().unwrap().inst.target()
                        != Some(label_of(s))
                    {
                        func.block_mut(id)
                            .terminator_mut()
                            .unwrap()
                            .inst
                            .set_target(label_of(s));
                        changes += 1;
                    }
                }
            }
            Some(Inst::Jmp {
                target: Target::Addr(_),
                ..
            }) => {
                // Tail call: nothing to do.
            }
            Some(_) => {
                // Ret / JmpInd / Ud2: nothing to do.
            }
            None => {
                // Plain fall-through block.
                let succ = func.block(id).succs.first().map(|e| e.block);
                if let Some(s) = succ {
                    if next != Some(s) {
                        func.block_mut(id).push(Inst::Jmp {
                            target: label_of(s),
                            width: JumpWidth::Near,
                        });
                        changes += 1;
                    }
                }
            }
        }
        pos += 1;
    }
    func.rebuild_preds();
    changes
}

/// Rewrites a conditional block to `jcc cond -> taken` with succs
/// `[taken, fall]`.
fn set_cond_shape(
    func: &mut BinaryFunction,
    id: BlockId,
    cond: bolt_isa::Cond,
    taken: SuccEdge,
    fall: SuccEdge,
) {
    let block = func.block_mut(id);
    let term = block.terminator_mut().expect("conditional terminator");
    term.inst = Inst::Jcc {
        cond,
        target: label_of(taken.block),
        width: JumpWidth::Near,
    };
    block.succs = vec![taken, fall];
}

/// Inserts a `jmp dest` trampoline right after layout position `pos` and
/// redirects `func.layout[pos]`'s succ edge `succ_idx` through it.
fn insert_trampoline(
    func: &mut BinaryFunction,
    pos: usize,
    from: BlockId,
    succ_idx: usize,
    dest: BlockId,
) {
    let count = func
        .block(from)
        .succs
        .get(succ_idx)
        .map(|e| e.count)
        .unwrap_or(0);
    let mut tb = BasicBlock::new();
    tb.exec_count = count;
    tb.push(Inst::Jmp {
        target: label_of(dest),
        width: JumpWidth::Near,
    });
    tb.succs = vec![SuccEdge::with_count(dest, count)];
    let tid = BlockId(func.blocks.len() as u32);
    func.blocks.push(tb);
    func.layout.insert(pos + 1, tid);
    if let Some(cold) = func.cold_start {
        if cold > pos {
            func.cold_start = Some(cold + 1);
        }
    }
    func.block_mut(from).succs[succ_idx].block = tid;
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_ir::edges;
    use bolt_isa::{Cond, Reg};

    /// b0: jcc(E)->b2, fall b1; b1: ret; b2: ret, laid out [0,1,2].
    fn cond_func() -> BinaryFunction {
        let mut f = BinaryFunction::new("f", 0x1000);
        for _ in 0..3 {
            f.add_block(BasicBlock::new());
        }
        f.block_mut(BlockId(0)).push(Inst::Jcc {
            cond: Cond::E,
            target: label_of(BlockId(2)),
            width: JumpWidth::Near,
        });
        f.block_mut(BlockId(0)).succs = edges(&[(2, 30), (1, 70)]);
        f.block_mut(BlockId(1)).push(Inst::Ret);
        f.block_mut(BlockId(2)).push(Inst::Ret);
        f.rebuild_preds();
        f
    }

    #[test]
    fn canonical_layout_untouched() {
        let mut f = cond_func();
        assert_eq!(fixup_function(&mut f), 0);
        f.validate().unwrap();
    }

    #[test]
    fn reordered_layout_inverts_condition() {
        let mut f = cond_func();
        // Put the taken target right after b0: [0, 2, 1].
        f.layout = vec![BlockId(0), BlockId(2), BlockId(1)];
        assert!(fixup_function(&mut f) >= 1);
        let term = f.block(BlockId(0)).terminator().unwrap().inst;
        assert_eq!(
            term,
            Inst::Jcc {
                cond: Cond::Ne,
                target: label_of(BlockId(1)),
                width: JumpWidth::Near
            },
            "condition inverted, branch targets old fall-through"
        );
        assert_eq!(f.block(BlockId(0)).succs[0].block, BlockId(1));
        assert_eq!(f.block(BlockId(0)).succs[0].count, 70);
        f.validate().unwrap();
    }

    #[test]
    fn detached_fallthrough_gets_trampoline() {
        let mut f = cond_func();
        // Layout [0, 2, 1] but ALSO split so b1 is cold: force the
        // neither-is-next case by putting b1 in the cold fragment.
        f.layout = vec![BlockId(0), BlockId(2), BlockId(1)];
        f.cold_start = Some(1); // b2 and b1 both cold
        let changed = fixup_function(&mut f);
        assert!(changed >= 1);
        // b0 cannot fall through into the cold fragment: a trampoline was
        // inserted or the branch restructured; validate invariants.
        f.validate().unwrap();
        // The block physically after b0 (within hot fragment) is nothing:
        // hot fragment is just [b0, tramp...]; every hot block must end in
        // a non-fallthrough or jump.
        let hot_end = f.cold_start.unwrap();
        for &id in &f.layout[..hot_end] {
            let _ = id;
        }
    }

    #[test]
    fn plain_block_gets_jmp_when_detached() {
        let mut f = BinaryFunction::new("f", 0x1000);
        let b0 = f.add_block(BasicBlock::new());
        let b1 = f.add_block(BasicBlock::new());
        let b2 = f.add_block(BasicBlock::new());
        f.block_mut(b0).push(Inst::Push(Reg::Rax));
        f.block_mut(b0).succs = edges(&[(2, 5)]);
        f.block_mut(b1).push(Inst::Ret);
        f.block_mut(b2).push(Inst::Ret);
        f.rebuild_preds();
        assert!(fixup_function(&mut f) >= 1);
        assert!(matches!(
            f.block(b0).terminator().unwrap().inst,
            Inst::Jmp { .. }
        ));
        assert_eq!(
            f.block(b0).terminator().unwrap().inst.target(),
            Some(label_of(b2))
        );
        f.validate().unwrap();
        let _ = b1;
    }

    #[test]
    fn redundant_jmp_to_next_removed() {
        let mut f = BinaryFunction::new("f", 0x1000);
        let b0 = f.add_block(BasicBlock::new());
        let b1 = f.add_block(BasicBlock::new());
        f.block_mut(b0).push(Inst::Jmp {
            target: label_of(b1),
            width: JumpWidth::Near,
        });
        f.block_mut(b0).succs = edges(&[(1, 5)]);
        f.block_mut(b1).push(Inst::Ret);
        f.rebuild_preds();
        assert_eq!(fixup_function(&mut f), 1);
        assert!(f.block(b0).terminator().is_none(), "jmp-to-next removed");
        f.validate().unwrap();
    }
}
