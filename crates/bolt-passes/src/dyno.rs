//! `dyno-stats`: profile-weighted dynamic statistics (paper Table 2).
//!
//! These are the metrics BOLT prints with `-dyno-stats`: estimated dynamic
//! counts computed from the CFG and its edge/block profile — so the same
//! profile evaluated against two layouts shows how many taken branches
//! the layout avoided.

use bolt_ir::{BinaryContext, BinaryFunction};
use bolt_isa::{encoded_len, Inst};
use std::fmt;

/// Profile-weighted dynamic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DynoStats {
    pub executed_instructions: u64,
    pub executed_forward_branches: u64,
    pub taken_forward_branches: u64,
    pub executed_backward_branches: u64,
    pub taken_backward_branches: u64,
    pub executed_unconditional_branches: u64,
    pub total_branches: u64,
    pub taken_branches: u64,
    pub non_taken_conditional_branches: u64,
    pub taken_conditional_branches: u64,
    pub executed_calls: u64,
}

impl DynoStats {
    /// Percentage change of `self` relative to `base` for each metric
    /// (negative = reduction), formatted like paper Table 2.
    pub fn delta_report(&self, base: &DynoStats) -> String {
        fn pct(new: u64, old: u64) -> String {
            if old == 0 {
                return "    n/a".to_string();
            }
            let d = 100.0 * (new as f64 - old as f64) / old as f64;
            format!("{d:+7.1}%")
        }
        let rows = [
            (
                "executed forward branches",
                self.executed_forward_branches,
                base.executed_forward_branches,
            ),
            (
                "taken forward branches",
                self.taken_forward_branches,
                base.taken_forward_branches,
            ),
            (
                "executed backward branches",
                self.executed_backward_branches,
                base.executed_backward_branches,
            ),
            (
                "taken backward branches",
                self.taken_backward_branches,
                base.taken_backward_branches,
            ),
            (
                "executed unconditional branches",
                self.executed_unconditional_branches,
                base.executed_unconditional_branches,
            ),
            (
                "executed instructions",
                self.executed_instructions,
                base.executed_instructions,
            ),
            ("total branches", self.total_branches, base.total_branches),
            ("taken branches", self.taken_branches, base.taken_branches),
            (
                "non-taken conditional branches",
                self.non_taken_conditional_branches,
                base.non_taken_conditional_branches,
            ),
            (
                "taken conditional branches",
                self.taken_conditional_branches,
                base.taken_conditional_branches,
            ),
        ];
        let mut out = String::new();
        for (name, new, old) in rows {
            out.push_str(&format!("{:<34} {}\n", name, pct(new, old)));
        }
        out
    }

    /// Relative change of taken branches (the headline Table 2 number).
    pub fn taken_branch_delta(&self, base: &DynoStats) -> f64 {
        if base.taken_branches == 0 {
            0.0
        } else {
            100.0 * (self.taken_branches as f64 - base.taken_branches as f64)
                / base.taken_branches as f64
        }
    }
}

impl std::ops::Add for DynoStats {
    type Output = DynoStats;
    fn add(self, o: DynoStats) -> DynoStats {
        DynoStats {
            executed_instructions: self.executed_instructions + o.executed_instructions,
            executed_forward_branches: self.executed_forward_branches + o.executed_forward_branches,
            taken_forward_branches: self.taken_forward_branches + o.taken_forward_branches,
            executed_backward_branches: self.executed_backward_branches
                + o.executed_backward_branches,
            taken_backward_branches: self.taken_backward_branches + o.taken_backward_branches,
            executed_unconditional_branches: self.executed_unconditional_branches
                + o.executed_unconditional_branches,
            total_branches: self.total_branches + o.total_branches,
            taken_branches: self.taken_branches + o.taken_branches,
            non_taken_conditional_branches: self.non_taken_conditional_branches
                + o.non_taken_conditional_branches,
            taken_conditional_branches: self.taken_conditional_branches
                + o.taken_conditional_branches,
            executed_calls: self.executed_calls + o.executed_calls,
        }
    }
}

impl fmt::Display for DynoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "executed instructions : {}", self.executed_instructions)?;
        writeln!(f, "taken branches        : {}", self.taken_branches)?;
        writeln!(f, "total branches        : {}", self.total_branches)?;
        writeln!(f, "executed calls        : {}", self.executed_calls)
    }
}

/// Computes stats for one function under its current layout and profile.
pub fn function_dyno_stats(func: &BinaryFunction) -> DynoStats {
    let mut s = DynoStats::default();
    // Layout position of each block (for forward/backward classification).
    let mut pos = vec![usize::MAX; func.blocks.len()];
    for (i, b) in func.layout.iter().enumerate() {
        pos[b.index()] = i;
    }
    for (i, &id) in func.layout.iter().enumerate() {
        let b = func.block(id);
        let exec = b.exec_count;
        s.executed_instructions += exec * b.insts.len() as u64;
        for inst in &b.insts {
            if inst.inst.is_call() {
                s.executed_calls += exec;
            }
            // Count only size-affecting length once; encoded_len referenced
            // to keep byte-weighted metrics possible later.
            let _ = encoded_len(&inst.inst);
        }
        let Some(term) = b.terminator() else {
            continue;
        };
        match term.inst {
            Inst::Jcc { .. } => {
                let taken = b.succs.first().map(|e| e.count).unwrap_or(0);
                let fall = b.succs.get(1).map(|e| e.count).unwrap_or(0);
                let executed = taken + fall;
                let target_pos = b
                    .succs
                    .first()
                    .map(|e| pos[e.block.index()])
                    .unwrap_or(usize::MAX);
                let forward = target_pos > i;
                s.total_branches += executed;
                s.taken_branches += taken;
                s.taken_conditional_branches += taken;
                s.non_taken_conditional_branches += fall;
                if forward {
                    s.executed_forward_branches += executed;
                    s.taken_forward_branches += taken;
                } else {
                    s.executed_backward_branches += executed;
                    s.taken_backward_branches += taken;
                }
            }
            Inst::Jmp { .. } | Inst::JmpInd { .. } => {
                s.executed_unconditional_branches += exec;
                s.total_branches += exec;
                s.taken_branches += exec;
            }
            _ => {}
        }
    }
    s
}

/// Aggregates stats across all live simple functions.
pub fn context_dyno_stats(ctx: &BinaryContext) -> DynoStats {
    let mut total = DynoStats::default();
    for f in &ctx.functions {
        if f.is_simple && f.folded_into.is_none() {
            total = total + function_dyno_stats(f);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_ir::{edges, BasicBlock, BlockId};
    use bolt_isa::{Cond, JumpWidth, Label, Target};

    /// b0 (100 exec): jcc-> b2 (70 taken), fall b1 (30); b1: jmp b2;
    /// b2: ret.
    fn profiled_func() -> BinaryFunction {
        let mut f = BinaryFunction::new("f", 0x1000);
        f.exec_count = 100;
        for _ in 0..3 {
            f.add_block(BasicBlock::new());
        }
        f.block_mut(BlockId(0)).exec_count = 100;
        f.block_mut(BlockId(0)).push(Inst::Jcc {
            cond: Cond::E,
            target: Target::Label(Label(2)),
            width: JumpWidth::Near,
        });
        f.block_mut(BlockId(0)).succs = edges(&[(2, 70), (1, 30)]);
        f.block_mut(BlockId(1)).exec_count = 30;
        f.block_mut(BlockId(1)).push(Inst::Jmp {
            target: Target::Label(Label(2)),
            width: JumpWidth::Near,
        });
        f.block_mut(BlockId(1)).succs = edges(&[(2, 30)]);
        f.block_mut(BlockId(2)).exec_count = 100;
        f.block_mut(BlockId(2)).push(Inst::Ret);
        f.rebuild_preds();
        f
    }

    #[test]
    fn counts_match_profile() {
        let s = function_dyno_stats(&profiled_func());
        assert_eq!(s.taken_conditional_branches, 70);
        assert_eq!(s.non_taken_conditional_branches, 30);
        assert_eq!(s.executed_unconditional_branches, 30);
        assert_eq!(s.taken_branches, 100);
        assert_eq!(s.total_branches, 130);
        assert_eq!(s.executed_forward_branches, 100);
        assert_eq!(s.executed_backward_branches, 0);
    }

    #[test]
    fn better_layout_reduces_taken_branches() {
        // Same CFG, but layout [0, 2, 1]: the hot edge becomes the
        // fall-through after fixup.
        let mut f = profiled_func();
        f.layout = vec![BlockId(0), BlockId(2), BlockId(1)];
        crate::fixup::fixup_function(&mut f);
        let optimized = function_dyno_stats(&f);
        let baseline = function_dyno_stats(&profiled_func());
        assert!(
            optimized.taken_branches < baseline.taken_branches,
            "{} < {}",
            optimized.taken_branches,
            baseline.taken_branches
        );
        assert!(optimized.taken_branch_delta(&baseline) < -30.0);
    }

    #[test]
    fn delta_report_formats() {
        let base = function_dyno_stats(&profiled_func());
        let report = base.delta_report(&base);
        assert!(report.contains("taken branches"));
        assert!(report.contains("+0.0%"));
    }
}
