//! Pass 11: unreachable-code elimination.

use bolt_ir::{BinaryContext, BinaryFunction};

/// Removes blocks unreachable from the entry (following CFG edges,
/// call→landing-pad links, and jump-table targets). Returns the number of
/// blocks removed. Whole-context wrapper over [`uce_function`].
pub fn run_uce(ctx: &mut BinaryContext) -> u64 {
    ctx.functions.iter_mut().map(uce_function).sum()
}

/// Per-function UCE kernel (pure: touches only `func`).
pub fn uce_function(func: &mut BinaryFunction) -> u64 {
    if !func.is_simple || func.layout.is_empty() {
        return 0;
    }
    let reach = func.reachable();
    // Jump-table targets are reachable through their indirect jumps,
    // whose CFG edges already exist; but keep targets listed in tables
    // anyway as a belt-and-braces rule.
    let mut keep = reach;
    for jt in &func.jump_tables {
        for t in &jt.targets {
            keep[t.index()] = true;
        }
    }
    let before = func.layout.len();
    let entry = func.entry();
    func.layout.retain(|b| *b == entry || keep[b.index()]);
    let after = func.layout.len();
    if before == after {
        return 0;
    }
    // Adjust the cold split point if it pointed past removed blocks.
    if let Some(cold) = func.cold_start {
        let cold = cold.min(func.layout.len());
        if cold == 0 || cold == func.layout.len() {
            // Degenerate split — the whole layout on one side of the
            // boundary: drop it (re-derived by layout).
            func.cold_start = None;
        } else {
            func.cold_start = Some(cold);
        }
    }
    func.rebuild_preds();
    (before - after) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_ir::{BasicBlock, BinaryFunction, BinaryInst, BlockId, SuccEdge};
    use bolt_isa::{Inst, Reg, Target};

    #[test]
    fn unreachable_blocks_removed() {
        let mut f = BinaryFunction::new("f", 0x1000);
        let b0 = f.add_block(BasicBlock::new());
        let dead = f.add_block(BasicBlock::new());
        let b2 = f.add_block(BasicBlock::new());
        f.block_mut(b0).push(Inst::Jmp {
            target: Target::Label(bolt_isa::Label(2)),
            width: bolt_isa::JumpWidth::Near,
        });
        f.block_mut(b0).succs = vec![SuccEdge::cold(b2)];
        f.block_mut(dead).push(Inst::Push(Reg::Rax));
        f.block_mut(dead).push(Inst::Ret);
        f.block_mut(b2).push(Inst::Ret);
        f.rebuild_preds();
        let mut ctx = BinaryContext::new();
        ctx.add_function(f);
        assert_eq!(run_uce(&mut ctx), 1);
        assert_eq!(ctx.functions[0].layout, vec![b0, b2]);
        ctx.functions[0].validate().unwrap();
    }

    #[test]
    fn landing_pads_are_kept() {
        let mut f = BinaryFunction::new("f", 0x1000);
        let b0 = f.add_block(BasicBlock::new());
        let lp = f.add_block(BasicBlock::new());
        let mut call = BinaryInst::new(Inst::Call {
            target: Target::Addr(0x9000),
        });
        call.landing_pad = Some(lp);
        f.block_mut(b0).insts.push(call);
        f.block_mut(b0).push(Inst::Ret);
        f.block_mut(lp).push(Inst::Ud2);
        f.block_mut(lp).is_landing_pad = true;
        f.rebuild_preds();
        let mut ctx = BinaryContext::new();
        ctx.add_function(f);
        assert_eq!(run_uce(&mut ctx), 0, "landing pad is reachable via EH");
        assert!(ctx.functions[0].layout.contains(&BlockId(1)));
    }

    /// Regression: when every cold block is removed, the split point ends
    /// up at `layout.len()` — a degenerate all-hot split that must be
    /// dropped, exactly like the `Some(0)` all-cold case.
    #[test]
    fn degenerate_split_at_layout_end_is_dropped() {
        let mut f = BinaryFunction::new("f", 0x1000);
        let b0 = f.add_block(BasicBlock::new());
        let dead = f.add_block(BasicBlock::new());
        f.block_mut(b0).push(Inst::Ret);
        f.block_mut(dead).push(Inst::Ret);
        f.rebuild_preds();
        // The only cold block is the unreachable one.
        f.cold_start = Some(1);
        let mut ctx = BinaryContext::new();
        ctx.add_function(f);
        assert_eq!(run_uce(&mut ctx), 1);
        let f = &ctx.functions[0];
        assert_eq!(f.layout, vec![b0]);
        assert_eq!(
            f.cold_start, None,
            "split point at layout end is degenerate and must be cleared"
        );
        f.validate().unwrap();
    }
}
