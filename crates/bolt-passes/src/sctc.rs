//! Pass 14: simplify conditional tail calls.
//!
//! The pattern `jcc L; ... L: jmp func` (a conditional branch to a block
//! containing only a tail call) becomes a direct *conditional tail call*
//! `jcc func`, removing one taken jump from the hot path.

use bolt_ir::{BinaryContext, BinaryFunction, BlockId};
use bolt_isa::{Inst, Label, Target};

/// Runs the pass; returns the number of conditional tail calls created.
/// Whole-context wrapper over [`sctc_function`].
pub fn run_sctc(ctx: &mut BinaryContext) -> u64 {
    ctx.functions.iter_mut().map(sctc_function).sum()
}

/// Per-function SCTC kernel (pure: touches only `func`).
pub fn sctc_function(func: &mut BinaryFunction) -> u64 {
    if !func.may_transform() || func.folded_into.is_some() {
        return 0;
    }
    let mut n = 0;
    // Tail-call thunks: blocks with exactly one instruction
    // `jmp Addr(..)` (an external target).
    let mut thunk: Vec<Option<u64>> = vec![None; func.blocks.len()];
    for &id in &func.layout {
        let b = func.block(id);
        if b.insts.len() == 1 && !b.is_landing_pad {
            if let Inst::Jmp {
                target: Target::Addr(a),
                ..
            } = b.insts[0].inst
            {
                thunk[id.index()] = Some(a);
            }
        }
    }
    for pos in 0..func.layout.len() {
        let id = func.layout[pos];
        let Some(term) = func.block(id).terminator() else {
            continue;
        };
        let Inst::Jcc {
            target: Target::Label(l),
            ..
        } = term.inst
        else {
            continue;
        };
        let taken = BlockId(l.0);
        let Some(ext) = thunk[taken.index()] else {
            continue;
        };
        // Rewrite: jcc directly to the external function; drop the CFG
        // edge to the thunk (control leaves the function when taken).
        let block = func.block_mut(id);
        if let Some(term) = block.terminator_mut() {
            term.inst.set_target(Target::Addr(ext));
        }
        block.succs.retain(|e| e.block != taken);
        n += 1;
    }
    if n > 0 {
        func.rebuild_preds();
    }
    n
}

// Convenience for tests in other crates.
pub fn is_cond_tail_call(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Jcc {
            target: Target::Addr(_),
            ..
        }
    )
}

// Silence the unused-import lint for Label (used in tests).
const _: fn(u32) -> Label = Label;

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_ir::{edges, BasicBlock, BinaryFunction};
    use bolt_isa::{Cond, JumpWidth};

    #[test]
    fn conditional_tail_call_simplified() {
        // b0: jcc(E) -> b1 (thunk), fall b2; b1: jmp 0x9000; b2: ret.
        let mut f = BinaryFunction::new("f", 0x1000);
        let b0 = f.add_block(BasicBlock::new());
        let b1 = f.add_block(BasicBlock::new());
        let b2 = f.add_block(BasicBlock::new());
        f.block_mut(b0).push(Inst::Jcc {
            cond: Cond::E,
            target: Target::Label(Label(1)),
            width: JumpWidth::Near,
        });
        f.block_mut(b0).succs = edges(&[(1, 10), (2, 90)]);
        f.block_mut(b1).push(Inst::Jmp {
            target: Target::Addr(0x9000),
            width: JumpWidth::Near,
        });
        f.block_mut(b2).push(Inst::Ret);
        f.rebuild_preds();
        let mut ctx = BinaryContext::new();
        ctx.add_function(f);
        assert_eq!(run_sctc(&mut ctx), 1);
        let f = &ctx.functions[0];
        let term = f.block(b0).terminator().unwrap().inst;
        assert!(is_cond_tail_call(&term));
        assert_eq!(term.target(), Some(Target::Addr(0x9000)));
        // The edge to the thunk is gone; only the fall-through remains.
        assert_eq!(f.block(b0).succs.len(), 1);
        assert_eq!(f.block(b0).succs[0].block, b2);
        f.validate().unwrap();
        let _ = b1;
    }

    #[test]
    fn intra_function_jumps_untouched() {
        // The thunk jumps to a label (intra-function): not a tail call.
        let mut f = BinaryFunction::new("f", 0x1000);
        let b0 = f.add_block(BasicBlock::new());
        let b1 = f.add_block(BasicBlock::new());
        let b2 = f.add_block(BasicBlock::new());
        f.block_mut(b0).push(Inst::Jcc {
            cond: Cond::E,
            target: Target::Label(Label(1)),
            width: JumpWidth::Near,
        });
        f.block_mut(b0).succs = edges(&[(1, 10), (2, 90)]);
        f.block_mut(b1).push(Inst::Jmp {
            target: Target::Label(Label(2)),
            width: JumpWidth::Near,
        });
        f.block_mut(b1).succs = edges(&[(2, 10)]);
        f.block_mut(b2).push(Inst::Ret);
        f.rebuild_preds();
        let mut ctx = BinaryContext::new();
        ctx.add_function(f);
        assert_eq!(run_sctc(&mut ctx), 0);
    }
}
