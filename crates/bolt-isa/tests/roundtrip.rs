//! Property tests: every encodable instruction decodes back to the same
//! bytes, and `encoded_len` always agrees with the encoder.

use bolt_isa::{
    decode, encode_at, encoded_len, AluOp, Cond, Inst, JumpWidth, Mem, Reg, Rm, ShiftOp, Target,
};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|n| Reg::from_num(n).unwrap())
}

fn arb_index_reg() -> impl Strategy<Value = Reg> {
    arb_reg().prop_filter("index may not be rsp", |r| *r != Reg::Rsp)
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0u8..16).prop_map(|n| Cond::from_cc(n).unwrap())
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Sub),
        Just(AluOp::Xor),
        Just(AluOp::Cmp),
    ]
}

fn arb_shift_op() -> impl Strategy<Value = ShiftOp> {
    prop_oneof![Just(ShiftOp::Shl), Just(ShiftOp::Shr), Just(ShiftOp::Sar)]
}

const BASE: u64 = 0x40_0000;

/// Resolved targets near the instruction address so both widths encode.
fn arb_near_target() -> impl Strategy<Value = Target> {
    (-100i64..100).prop_map(|d| Target::Addr(BASE.wrapping_add(d as u64)))
}

fn arb_far_target() -> impl Strategy<Value = Target> {
    (-0x100000i64..0x100000).prop_map(|d| Target::Addr(BASE.wrapping_add(d as u64)))
}

fn arb_mem() -> impl Strategy<Value = Mem> {
    prop_oneof![
        (arb_reg(), any::<i32>()).prop_map(|(base, disp)| Mem::BaseDisp { base, disp }),
        (arb_reg(), arb_index_reg(), 0u8..4, any::<i32>()).prop_map(|(base, index, s, disp)| {
            Mem::BaseIndexScale {
                base,
                index,
                scale: 1 << s,
                disp,
            }
        }),
        arb_far_target().prop_map(|target| Mem::RipRel { target }),
    ]
}

fn arb_rm() -> impl Strategy<Value = Rm> {
    prop_oneof![arb_reg().prop_map(Rm::Reg), arb_mem().prop_map(Rm::Mem)]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        arb_reg().prop_map(Inst::Push),
        arb_reg().prop_map(Inst::Pop),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::MovRR { dst, src }),
        (arb_reg(), any::<i64>()).prop_map(|(dst, imm)| Inst::MovRI { dst, imm }),
        (arb_reg(), arb_mem()).prop_map(|(dst, mem)| Inst::Load { dst, mem }),
        (arb_mem(), arb_reg()).prop_map(|(mem, src)| Inst::Store { mem, src }),
        (arb_reg(), arb_mem()).prop_map(|(dst, mem)| Inst::Lea { dst, mem }),
        (arb_alu_op(), arb_reg(), arb_reg()).prop_map(|(op, dst, src)| Inst::Alu { op, dst, src }),
        (arb_alu_op(), arb_reg(), any::<i32>()).prop_map(|(op, dst, imm)| Inst::AluI {
            op,
            dst,
            imm
        }),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Inst::Test { a, b }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::Imul { dst, src }),
        (arb_shift_op(), arb_reg(), 0u8..64).prop_map(|(op, dst, amount)| Inst::Shift {
            op,
            dst,
            amount
        }),
        (arb_cond(), arb_reg()).prop_map(|(cond, dst)| Inst::Setcc { cond, dst }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::Movzx8 { dst, src }),
        (arb_cond(), arb_near_target()).prop_map(|(cond, target)| Inst::Jcc {
            cond,
            target,
            width: JumpWidth::Short
        }),
        (arb_cond(), arb_far_target()).prop_map(|(cond, target)| Inst::Jcc {
            cond,
            target,
            width: JumpWidth::Near
        }),
        arb_near_target().prop_map(|target| Inst::Jmp {
            target,
            width: JumpWidth::Short
        }),
        arb_far_target().prop_map(|target| Inst::Jmp {
            target,
            width: JumpWidth::Near
        }),
        arb_rm().prop_map(|rm| Inst::JmpInd { rm }),
        arb_far_target().prop_map(|target| Inst::Call { target }),
        arb_rm().prop_map(|rm| Inst::CallInd { rm }),
        Just(Inst::Ret),
        Just(Inst::RepzRet),
        (1u8..=9).prop_map(|len| Inst::Nop { len }),
        Just(Inst::Ud2),
        Just(Inst::Syscall),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// encode -> decode -> encode is byte-identical, and lengths agree.
    #[test]
    fn encode_decode_encode_is_identity(inst in arb_inst()) {
        let enc = encode_at(&inst, BASE).expect("arbitrary subset insts encode");
        prop_assert!(enc.fixups.is_empty());
        prop_assert_eq!(encoded_len(&inst), enc.bytes.len());

        let dec = decode(&enc.bytes, BASE).expect("own encodings decode");
        prop_assert_eq!(dec.len as usize, enc.bytes.len());

        let re = encode_at(&dec.inst, BASE).expect("decoded insts re-encode");
        prop_assert_eq!(re.bytes, enc.bytes);
    }

    /// Decoding is length-exact: feeding extra trailing bytes never changes
    /// the decoded instruction.
    #[test]
    fn trailing_bytes_do_not_change_decode(inst in arb_inst(), junk in proptest::collection::vec(any::<u8>(), 0..8)) {
        let enc = encode_at(&inst, BASE).unwrap();
        let mut padded = enc.bytes.clone();
        padded.extend(junk);
        let d1 = decode(&enc.bytes, BASE).unwrap();
        let d2 = decode(&padded, BASE).unwrap();
        prop_assert_eq!(d1, d2);
    }

    /// Truncating an instruction never decodes successfully to its own
    /// length (prefix-freedom within one instruction).
    #[test]
    fn truncation_is_detected_or_shorter(inst in arb_inst()) {
        let enc = encode_at(&inst, BASE).unwrap();
        if enc.bytes.len() > 1 {
            let cut = &enc.bytes[..enc.bytes.len() - 1];
            if let Ok(d) = decode(cut, BASE) {
                prop_assert!((d.len as usize) < enc.bytes.len());
            }
        }
    }
}
