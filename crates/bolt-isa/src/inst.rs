//! The machine instruction model (the `MCInst` analogue).

use crate::{Cond, Mem, Reg, Target};
use std::fmt;

/// Integer ALU operations available in register-register and
/// register-immediate forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Or,
    And,
    Sub,
    Xor,
    /// Compare: computes flags of `dst - src` without writing `dst`.
    Cmp,
}

impl AluOp {
    /// The `/n` opcode-extension digit used by the `0x83`/`0x81` immediate
    /// forms.
    pub fn ext_digit(self) -> u8 {
        match self {
            AluOp::Add => 0,
            AluOp::Or => 1,
            AluOp::And => 4,
            AluOp::Sub => 5,
            AluOp::Xor => 6,
            AluOp::Cmp => 7,
        }
    }

    /// Reconstructs the operation from the `/n` digit.
    pub fn from_ext_digit(d: u8) -> Option<AluOp> {
        Some(match d {
            0 => AluOp::Add,
            1 => AluOp::Or,
            4 => AluOp::And,
            5 => AluOp::Sub,
            6 => AluOp::Xor,
            7 => AluOp::Cmp,
            _ => return None,
        })
    }

    /// The primary opcode of the `r/m64, r64` (MR) register form.
    pub fn mr_opcode(self) -> u8 {
        match self {
            AluOp::Add => 0x01,
            AluOp::Or => 0x09,
            AluOp::And => 0x21,
            AluOp::Sub => 0x29,
            AluOp::Xor => 0x31,
            AluOp::Cmp => 0x39,
        }
    }

    /// Whether the operation writes its destination register.
    pub fn writes_dst(self) -> bool {
        !matches!(self, AluOp::Cmp)
    }

    /// The AT&T mnemonic (with `q` suffix).
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "addq",
            AluOp::Or => "orq",
            AluOp::And => "andq",
            AluOp::Sub => "subq",
            AluOp::Xor => "xorq",
            AluOp::Cmp => "cmpq",
        }
    }
}

/// Shift operations (`C1 /n` immediate forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// Logical left shift.
    Shl,
    /// Logical right shift.
    Shr,
    /// Arithmetic right shift.
    Sar,
}

impl ShiftOp {
    /// The `/n` opcode-extension digit.
    pub fn ext_digit(self) -> u8 {
        match self {
            ShiftOp::Shl => 4,
            ShiftOp::Shr => 5,
            ShiftOp::Sar => 7,
        }
    }

    /// Reconstructs the operation from the `/n` digit.
    pub fn from_ext_digit(d: u8) -> Option<ShiftOp> {
        Some(match d {
            4 => ShiftOp::Shl,
            5 => ShiftOp::Shr,
            7 => ShiftOp::Sar,
            _ => return None,
        })
    }

    /// The AT&T mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Shl => "shlq",
            ShiftOp::Shr => "shrq",
            ShiftOp::Sar => "sarq",
        }
    }
}

/// Register-or-memory operand for indirect calls and jumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rm {
    Reg(Reg),
    Mem(Mem),
}

impl fmt::Display for Rm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rm::Reg(r) => write!(f, "*{r}"),
            Rm::Mem(m) => write!(f, "*{m}"),
        }
    }
}

/// Encoded width selection for PC-relative branches.
///
/// x86-64 conditional branches occupy 2 bytes with a signed 8-bit offset and
/// 6 bytes with a 32-bit offset (unconditional: 2 vs 5). The choice is made
/// by branch relaxation in the emitter; `decode` reports the width that was
/// actually present.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JumpWidth {
    /// 8-bit displacement.
    Short,
    /// 32-bit displacement.
    #[default]
    Near,
}

/// A machine instruction in the supported x86-64 subset.
///
/// This is the unit the disassembler produces and the encoder consumes; the
/// binary-IR layer (`bolt-ir`) wraps it with annotations the same way BOLT
/// wraps LLVM's `MCInst`.
///
/// # Examples
///
/// ```
/// use bolt_isa::{Inst, Reg, encode_at};
/// let inst = Inst::MovRR { dst: Reg::Rbp, src: Reg::Rsp };
/// let enc = encode_at(&inst, 0x400000).unwrap();
/// assert_eq!(enc.bytes, vec![0x48, 0x89, 0xe5]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `pushq %reg`
    Push(Reg),
    /// `popq %reg`
    Pop(Reg),
    /// `movq %src, %dst`
    MovRR { dst: Reg, src: Reg },
    /// `movq $imm, %dst` (sign-extended 32-bit form or `movabs`).
    MovRI { dst: Reg, imm: i64 },
    /// `movabs $target, %dst` — materializes the absolute address of a
    /// symbol (e.g. a jump-table base).
    MovRSym { dst: Reg, target: Target },
    /// `movq mem, %dst`
    Load { dst: Reg, mem: Mem },
    /// `movq %src, mem`
    Store { mem: Mem, src: Reg },
    /// `leaq mem, %dst`
    Lea { dst: Reg, mem: Mem },
    /// ALU register-register: `op %src, %dst`.
    Alu { op: AluOp, dst: Reg, src: Reg },
    /// ALU register-immediate: `op $imm, %dst`.
    AluI { op: AluOp, dst: Reg, imm: i32 },
    /// `testq %b, %a`
    Test { a: Reg, b: Reg },
    /// `imulq %src, %dst`
    Imul { dst: Reg, src: Reg },
    /// Shift by immediate: `op $amount, %dst`.
    Shift { op: ShiftOp, dst: Reg, amount: u8 },
    /// `set<cc> %dst8` — writes 0/1 to the low byte of `dst`.
    Setcc { cond: Cond, dst: Reg },
    /// `movzbq %src8, %dst`
    Movzx8 { dst: Reg, src: Reg },
    /// Conditional branch.
    Jcc {
        cond: Cond,
        target: Target,
        width: JumpWidth,
    },
    /// Unconditional direct branch.
    Jmp { target: Target, width: JumpWidth },
    /// Indirect branch (`jmpq *%r` / `jmpq *mem`) — used for jump tables
    /// and PLT stubs.
    JmpInd { rm: Rm },
    /// Direct call (`callq target`, rel32).
    Call { target: Target },
    /// Indirect call (`callq *%r` / `callq *mem`).
    CallInd { rm: Rm },
    /// `retq`
    Ret,
    /// `repz retq` — the legacy-AMD form stripped by the `strip-rep-ret`
    /// pass (Table 1, pass 1).
    RepzRet,
    /// A canonical NOP of `len` bytes (1..=9).
    Nop { len: u8 },
    /// `ud2` — trap.
    Ud2,
    /// `syscall`
    Syscall,
}

impl Inst {
    /// Whether this instruction terminates a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Jcc { .. }
                | Inst::Jmp { .. }
                | Inst::JmpInd { .. }
                | Inst::Ret
                | Inst::RepzRet
                | Inst::Ud2
        )
    }

    /// Whether this is any kind of branch (conditional, unconditional or
    /// indirect), excluding calls and returns.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Inst::Jcc { .. } | Inst::Jmp { .. } | Inst::JmpInd { .. }
        )
    }

    /// Whether this is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Jcc { .. })
    }

    /// Whether this is an unconditional direct branch.
    pub fn is_uncond_branch(&self) -> bool {
        matches!(self, Inst::Jmp { .. })
    }

    /// Whether this is a direct or indirect call.
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. } | Inst::CallInd { .. })
    }

    /// Whether this is a return.
    pub fn is_return(&self) -> bool {
        matches!(self, Inst::Ret | Inst::RepzRet)
    }

    /// The direct control-flow target, if any.
    pub fn target(&self) -> Option<Target> {
        match self {
            Inst::Jcc { target, .. } | Inst::Jmp { target, .. } | Inst::Call { target } => {
                Some(*target)
            }
            _ => None,
        }
    }

    /// Replaces the direct control-flow target.
    ///
    /// # Panics
    ///
    /// Panics if the instruction has no direct target.
    pub fn set_target(&mut self, t: Target) {
        match self {
            Inst::Jcc { target, .. } | Inst::Jmp { target, .. } | Inst::Call { target } => {
                *target = t;
            }
            _ => panic!("set_target on non-branch instruction {self}"),
        }
    }

    /// Registers read by this instruction (conservative, excludes implicit
    /// stack-pointer reads of push/pop/call/ret which are tracked by frame
    /// analyses separately).
    pub fn regs_read(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        match self {
            Inst::Push(r) => out.push(*r),
            Inst::Pop(_) => {}
            Inst::MovRR { src, .. } => out.push(*src),
            Inst::MovRI { .. } | Inst::MovRSym { .. } => {}
            Inst::Load { mem, .. } => out.extend(mem.regs_used()),
            Inst::Store { mem, src } => {
                out.push(*src);
                out.extend(mem.regs_used());
            }
            Inst::Lea { mem, .. } => out.extend(mem.regs_used()),
            Inst::Alu { op, dst, src } => {
                out.push(*src);
                // add/sub/etc. read the destination too; cmp reads both.
                let _ = op;
                out.push(*dst);
            }
            Inst::AluI { dst, .. } => out.push(*dst),
            Inst::Test { a, b } => {
                out.push(*a);
                out.push(*b);
            }
            Inst::Imul { dst, src } => {
                out.push(*dst);
                out.push(*src);
            }
            Inst::Shift { dst, .. } => out.push(*dst),
            Inst::Setcc { .. } => {}
            Inst::Movzx8 { src, .. } => out.push(*src),
            Inst::Jcc { .. } | Inst::Jmp { .. } => {}
            Inst::JmpInd { rm } | Inst::CallInd { rm } => match rm {
                Rm::Reg(r) => out.push(*r),
                Rm::Mem(m) => out.extend(m.regs_used()),
            },
            Inst::Call { .. } => {}
            Inst::Ret | Inst::RepzRet | Inst::Nop { .. } | Inst::Ud2 | Inst::Syscall => {}
        }
        out
    }

    /// Registers written by this instruction (excluding implicit
    /// stack-pointer updates and call-clobbered sets).
    pub fn regs_written(&self) -> Vec<Reg> {
        match self {
            Inst::Pop(r) => vec![*r],
            Inst::MovRR { dst, .. }
            | Inst::MovRI { dst, .. }
            | Inst::MovRSym { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Lea { dst, .. }
            | Inst::Imul { dst, .. }
            | Inst::Movzx8 { dst, .. }
            | Inst::Setcc { dst, .. }
            | Inst::Shift { dst, .. } => vec![*dst],
            Inst::Alu { op, dst, .. } | Inst::AluI { op, dst, .. } => {
                if op.writes_dst() {
                    vec![*dst]
                } else {
                    vec![]
                }
            }
            _ => vec![],
        }
    }

    /// Whether the instruction sets the arithmetic flags. Delegates to
    /// the shared flag-effect table ([`crate::flag_effect`]); note that
    /// a shift whose masked count is zero leaves the flags untouched
    /// and reports `false`.
    pub fn writes_flags(&self) -> bool {
        crate::flags::flag_effect(self).writes.is_some()
    }

    /// Whether the instruction reads the arithmetic flags (also via the
    /// shared flag-effect table).
    pub fn reads_flags(&self) -> bool {
        crate::flags::flag_effect(self).reads
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Push(r) => write!(f, "pushq {r}"),
            Inst::Pop(r) => write!(f, "popq {r}"),
            Inst::MovRR { dst, src } => write!(f, "movq {src}, {dst}"),
            Inst::MovRI { dst, imm } => {
                write!(f, "movq ${}, {dst}", crate::mem::signed_hex(*imm))
            }
            Inst::MovRSym { dst, target } => write!(f, "movabsq ${target}, {dst}"),
            Inst::Load { dst, mem } => write!(f, "movq {mem}, {dst}"),
            Inst::Store { mem, src } => write!(f, "movq {src}, {mem}"),
            Inst::Lea { dst, mem } => write!(f, "leaq {mem}, {dst}"),
            Inst::Alu { op, dst, src } => write!(f, "{} {src}, {dst}", op.mnemonic()),
            Inst::AluI { op, dst, imm } => write!(
                f,
                "{} ${}, {dst}",
                op.mnemonic(),
                crate::mem::signed_hex(*imm as i64)
            ),
            Inst::Test { a, b } => write!(f, "testq {b}, {a}"),
            Inst::Imul { dst, src } => write!(f, "imulq {src}, {dst}"),
            Inst::Shift { op, dst, amount } => write!(f, "{} ${amount}, {dst}", op.mnemonic()),
            Inst::Setcc { cond, dst } => write!(f, "set{cond} %{}", dst.name8()),
            Inst::Movzx8 { dst, src } => write!(f, "movzbq %{}, {dst}", src.name8()),
            Inst::Jcc { cond, target, .. } => write!(f, "j{cond} {target}"),
            Inst::Jmp { target, .. } => write!(f, "jmp {target}"),
            Inst::JmpInd { rm } => write!(f, "jmpq {rm}"),
            Inst::Call { target } => write!(f, "callq {target}"),
            Inst::CallInd { rm } => write!(f, "callq {rm}"),
            Inst::Ret => write!(f, "retq"),
            Inst::RepzRet => write!(f, "repz retq"),
            Inst::Nop { len } => write!(f, "nop{len}"),
            Inst::Ud2 => write!(f, "ud2"),
            Inst::Syscall => write!(f, "syscall"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Label;

    #[test]
    fn classification() {
        let j = Inst::Jcc {
            cond: Cond::E,
            target: Target::Label(Label(1)),
            width: JumpWidth::Near,
        };
        assert!(j.is_terminator() && j.is_branch() && j.is_cond_branch());
        assert!(!j.is_call());
        assert!(Inst::Ret.is_terminator() && Inst::Ret.is_return());
        assert!(Inst::Call {
            target: Target::Addr(0)
        }
        .is_call());
        assert!(!Inst::Call {
            target: Target::Addr(0)
        }
        .is_terminator());
        assert!(Inst::JmpInd {
            rm: Rm::Reg(Reg::Rax)
        }
        .is_terminator());
    }

    #[test]
    fn target_rewriting() {
        let mut j = Inst::Jmp {
            target: Target::Label(Label(1)),
            width: JumpWidth::Short,
        };
        j.set_target(Target::Addr(0x1234));
        assert_eq!(j.target(), Some(Target::Addr(0x1234)));
    }

    #[test]
    fn def_use_sets() {
        let i = Inst::Alu {
            op: AluOp::Add,
            dst: Reg::Rax,
            src: Reg::Rbx,
        };
        assert_eq!(i.regs_written(), vec![Reg::Rax]);
        assert!(i.regs_read().contains(&Reg::Rbx));
        let c = Inst::AluI {
            op: AluOp::Cmp,
            dst: Reg::Rcx,
            imm: 5,
        };
        assert!(c.regs_written().is_empty());
        assert!(c.writes_flags());
        assert!(Inst::Jcc {
            cond: Cond::L,
            target: Target::Addr(0),
            width: JumpWidth::Near
        }
        .reads_flags());
    }

    #[test]
    fn display_att() {
        assert_eq!(
            Inst::MovRR {
                dst: Reg::Rbp,
                src: Reg::Rsp
            }
            .to_string(),
            "movq %rsp, %rbp"
        );
        assert_eq!(Inst::RepzRet.to_string(), "repz retq");
        assert_eq!(
            Inst::Setcc {
                cond: Cond::L,
                dst: Reg::Rax
            }
            .to_string(),
            "setl %al"
        );
    }
}
