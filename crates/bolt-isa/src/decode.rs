//! Linear disassembler for the x86-64 subset.
//!
//! Decodes exactly the instruction forms [`crate::encode_at`] can produce
//! (the forms our compiler substrate emits), which is the contract a static
//! binary rewriter needs: bytes it cannot decode make the containing
//! function *non-simple* and it is left untouched (paper section 3.1).

use crate::{AluOp, Cond, Inst, JumpWidth, Mem, Reg, Rm, ShiftOp, Target, NOP_SEQUENCES};
use std::fmt;

/// A successfully decoded instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedInst {
    /// The instruction, with branch targets resolved to absolute addresses.
    pub inst: Inst,
    /// Encoded length in bytes.
    pub len: u8,
}

/// Errors produced by the decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Ran out of bytes mid-instruction.
    Truncated,
    /// The byte sequence is not an instruction in the supported subset.
    Unsupported { opcode: u8, at: u64 },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated instruction"),
            DecodeError::Unsupported { opcode, at } => {
                write!(f, "unsupported opcode {opcode:#04x} at {at:#x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn i8_(&mut self) -> Result<i8, DecodeError> {
        Ok(self.u8()? as i8)
    }

    fn i32_(&mut self) -> Result<i32, DecodeError> {
        let mut buf = [0u8; 4];
        for b in &mut buf {
            *b = self.u8()?;
        }
        Ok(i32::from_le_bytes(buf))
    }

    fn i64_(&mut self) -> Result<i64, DecodeError> {
        let mut buf = [0u8; 8];
        for b in &mut buf {
            *b = self.u8()?;
        }
        Ok(i64::from_le_bytes(buf))
    }
}

#[derive(Clone, Copy, Default)]
struct Rex {
    w: bool,
    r: bool,
    x: bool,
    b: bool,
}

fn reg_of(low3: u8, ext: bool) -> Reg {
    Reg::from_num(low3 | (u8::from(ext) << 3)).expect("4-bit register number")
}

/// The memory operand decoded from ModRM/SIB; RIP-relative displacements are
/// resolved after the full instruction length is known.
enum MemOut {
    Mem(Mem),
    /// RIP-relative: carries the raw disp32; the caller resolves it against
    /// the instruction end address.
    Rip(i32),
}

enum RmOut {
    Reg(Reg),
    Mem(MemOut),
}

fn decode_modrm(c: &mut Cursor<'_>, rex: Rex) -> Result<(u8, RmOut), DecodeError> {
    let modrm = c.u8()?;
    let mode = modrm >> 6;
    let reg_field = (modrm >> 3) & 7;
    let rm = modrm & 7;
    if mode == 0b11 {
        return Ok((reg_field, RmOut::Reg(reg_of(rm, rex.b))));
    }
    if mode == 0b00 && rm == 0b101 {
        // RIP-relative.
        let disp = c.i32_()?;
        return Ok((reg_field, RmOut::Mem(MemOut::Rip(disp))));
    }
    let (base, index_scale) = if rm == 0b100 {
        let sib = c.u8()?;
        let ss = sib >> 6;
        let idx = (sib >> 3) & 7;
        let base = sib & 7;
        let index = if idx == 0b100 && !rex.x {
            None
        } else {
            Some((reg_of(idx, rex.x), 1u8 << ss))
        };
        (reg_of(base, rex.b), index)
    } else {
        (reg_of(rm, rex.b), None)
    };
    let disp = match mode {
        0b00 => 0,
        0b01 => c.i8_()? as i32,
        0b10 => c.i32_()?,
        _ => unreachable!(),
    };
    let mem = match index_scale {
        None => Mem::BaseDisp { base, disp },
        Some((index, scale)) => Mem::BaseIndexScale {
            base,
            index,
            scale,
            disp,
        },
    };
    Ok((reg_field, RmOut::Mem(MemOut::Mem(mem))))
}

fn finish_mem(m: MemOut, inst_end: u64) -> Mem {
    match m {
        MemOut::Mem(m) => m,
        MemOut::Rip(disp) => Mem::RipRel {
            target: Target::Addr(inst_end.wrapping_add(disp as i64 as u64)),
        },
    }
}

/// Decodes one instruction from `bytes`, assumed to start at virtual address
/// `addr`.
///
/// PC-relative targets are resolved to absolute addresses.
///
/// # Errors
///
/// [`DecodeError::Truncated`] if `bytes` ends mid-instruction;
/// [`DecodeError::Unsupported`] for byte sequences outside the subset.
///
/// # Examples
///
/// ```
/// use bolt_isa::{decode, Inst, Reg};
/// let d = decode(&[0x55], 0x400000)?;
/// assert_eq!(d.inst, Inst::Push(Reg::Rbp));
/// assert_eq!(d.len, 1);
/// # Ok::<(), bolt_isa::DecodeError>(())
/// ```
pub fn decode(bytes: &[u8], addr: u64) -> Result<DecodedInst, DecodeError> {
    // Multi-byte NOPs first: they overlap opcode space prefixes (0x66).
    for seq in NOP_SEQUENCES.iter().rev() {
        if bytes.len() >= seq.len() && &bytes[..seq.len()] == *seq {
            return Ok(DecodedInst {
                inst: Inst::Nop {
                    len: seq.len() as u8,
                },
                len: seq.len() as u8,
            });
        }
    }

    let mut c = Cursor { bytes, pos: 0 };
    let mut first = c.u8()?;

    // repz ret
    if first == 0xF3 {
        if c.peek() == Some(0xC3) {
            c.u8()?;
            return Ok(DecodedInst {
                inst: Inst::RepzRet,
                len: 2,
            });
        }
        return Err(DecodeError::Unsupported {
            opcode: 0xF3,
            at: addr,
        });
    }

    let mut rex = Rex::default();
    if (0x40..=0x4F).contains(&first) {
        rex = Rex {
            w: first & 8 != 0,
            r: first & 4 != 0,
            x: first & 2 != 0,
            b: first & 1 != 0,
        };
        first = c.u8()?;
    }

    let unsupported = |opcode: u8| DecodeError::Unsupported { opcode, at: addr };

    let inst = match first {
        0x50..=0x57 => Inst::Push(reg_of(first - 0x50, rex.b)),
        0x58..=0x5F => Inst::Pop(reg_of(first - 0x58, rex.b)),
        0x89 => {
            let (reg_field, rm) = decode_modrm(&mut c, rex)?;
            let src = reg_of(reg_field, rex.r);
            match rm {
                RmOut::Reg(dst) => Inst::MovRR { dst, src },
                RmOut::Mem(m) => {
                    let end = addr + c.pos as u64;
                    Inst::Store {
                        mem: finish_mem(m, end),
                        src,
                    }
                }
            }
        }
        0x8B => {
            let (reg_field, rm) = decode_modrm(&mut c, rex)?;
            let dst = reg_of(reg_field, rex.r);
            match rm {
                RmOut::Reg(src) => Inst::MovRR { dst, src },
                RmOut::Mem(m) => {
                    let end = addr + c.pos as u64;
                    Inst::Load {
                        dst,
                        mem: finish_mem(m, end),
                    }
                }
            }
        }
        0x8D => {
            let (reg_field, rm) = decode_modrm(&mut c, rex)?;
            let dst = reg_of(reg_field, rex.r);
            match rm {
                RmOut::Reg(_) => return Err(unsupported(0x8D)),
                RmOut::Mem(m) => {
                    let end = addr + c.pos as u64;
                    Inst::Lea {
                        dst,
                        mem: finish_mem(m, end),
                    }
                }
            }
        }
        0xC7 => {
            let (reg_field, rm) = decode_modrm(&mut c, rex)?;
            if reg_field != 0 {
                return Err(unsupported(0xC7));
            }
            match rm {
                RmOut::Reg(dst) => Inst::MovRI {
                    dst,
                    imm: c.i32_()? as i64,
                },
                RmOut::Mem(_) => return Err(unsupported(0xC7)),
            }
        }
        0xB8..=0xBF if rex.w => {
            let dst = reg_of(first - 0xB8, rex.b);
            Inst::MovRI {
                dst,
                imm: c.i64_()?,
            }
        }
        0x01 | 0x09 | 0x21 | 0x29 | 0x31 | 0x39 => {
            let op = crate::encode::alu_from_mr_opcode(first).expect("checked opcode");
            let (reg_field, rm) = decode_modrm(&mut c, rex)?;
            let src = reg_of(reg_field, rex.r);
            match rm {
                RmOut::Reg(dst) => Inst::Alu { op, dst, src },
                RmOut::Mem(_) => return Err(unsupported(first)),
            }
        }
        0x83 | 0x81 => {
            let (reg_field, rm) = decode_modrm(&mut c, rex)?;
            let op = AluOp::from_ext_digit(reg_field).ok_or(unsupported(first))?;
            let dst = match rm {
                RmOut::Reg(r) => r,
                RmOut::Mem(_) => return Err(unsupported(first)),
            };
            let imm = if first == 0x83 {
                c.i8_()? as i32
            } else {
                c.i32_()?
            };
            Inst::AluI { op, dst, imm }
        }
        0x85 => {
            let (reg_field, rm) = decode_modrm(&mut c, rex)?;
            let b = reg_of(reg_field, rex.r);
            match rm {
                RmOut::Reg(a) => Inst::Test { a, b },
                RmOut::Mem(_) => return Err(unsupported(first)),
            }
        }
        0xC1 => {
            let (reg_field, rm) = decode_modrm(&mut c, rex)?;
            let op = ShiftOp::from_ext_digit(reg_field).ok_or(unsupported(first))?;
            let dst = match rm {
                RmOut::Reg(r) => r,
                RmOut::Mem(_) => return Err(unsupported(first)),
            };
            Inst::Shift {
                op,
                dst,
                amount: c.u8()? & 63,
            }
        }
        0x70..=0x7F => {
            let cond = Cond::from_cc(first - 0x70).expect("4-bit cc");
            let rel = c.i8_()? as i64;
            let end = addr + c.pos as u64;
            Inst::Jcc {
                cond,
                target: Target::Addr(end.wrapping_add(rel as u64)),
                width: JumpWidth::Short,
            }
        }
        0xEB => {
            let rel = c.i8_()? as i64;
            let end = addr + c.pos as u64;
            Inst::Jmp {
                target: Target::Addr(end.wrapping_add(rel as u64)),
                width: JumpWidth::Short,
            }
        }
        0xE9 => {
            let rel = c.i32_()? as i64;
            let end = addr + c.pos as u64;
            Inst::Jmp {
                target: Target::Addr(end.wrapping_add(rel as u64)),
                width: JumpWidth::Near,
            }
        }
        0xE8 => {
            let rel = c.i32_()? as i64;
            let end = addr + c.pos as u64;
            Inst::Call {
                target: Target::Addr(end.wrapping_add(rel as u64)),
            }
        }
        0xFF => {
            let (reg_field, rm) = decode_modrm(&mut c, rex)?;
            let end_for_mem = addr + c.pos as u64;
            let rm = match rm {
                RmOut::Reg(r) => Rm::Reg(r),
                RmOut::Mem(m) => Rm::Mem(finish_mem(m, end_for_mem)),
            };
            match reg_field {
                2 => Inst::CallInd { rm },
                4 => Inst::JmpInd { rm },
                _ => return Err(unsupported(0xFF)),
            }
        }
        0xC3 => Inst::Ret,
        0x0F => {
            let second = c.u8()?;
            match second {
                0x05 => Inst::Syscall,
                0x0B => Inst::Ud2,
                0xAF => {
                    let (reg_field, rm) = decode_modrm(&mut c, rex)?;
                    let dst = reg_of(reg_field, rex.r);
                    match rm {
                        RmOut::Reg(src) => Inst::Imul { dst, src },
                        RmOut::Mem(_) => return Err(unsupported(second)),
                    }
                }
                0xB6 => {
                    let (reg_field, rm) = decode_modrm(&mut c, rex)?;
                    let dst = reg_of(reg_field, rex.r);
                    match rm {
                        RmOut::Reg(src) => Inst::Movzx8 { dst, src },
                        RmOut::Mem(_) => return Err(unsupported(second)),
                    }
                }
                0x80..=0x8F => {
                    let cond = Cond::from_cc(second - 0x80).expect("4-bit cc");
                    let rel = c.i32_()? as i64;
                    let end = addr + c.pos as u64;
                    Inst::Jcc {
                        cond,
                        target: Target::Addr(end.wrapping_add(rel as u64)),
                        width: JumpWidth::Near,
                    }
                }
                0x90..=0x9F => {
                    let cond = Cond::from_cc(second - 0x90).expect("4-bit cc");
                    let (reg_field, rm) = decode_modrm(&mut c, rex)?;
                    if reg_field != 0 {
                        return Err(unsupported(second));
                    }
                    match rm {
                        RmOut::Reg(dst) => Inst::Setcc { cond, dst },
                        RmOut::Mem(_) => return Err(unsupported(second)),
                    }
                }
                other => return Err(unsupported(other)),
            }
        }
        other => return Err(unsupported(other)),
    };

    Ok(DecodedInst {
        inst,
        len: c.pos as u8,
    })
}

/// Decodes a contiguous byte range into instructions, returning the list of
/// `(offset, DecodedInst)` pairs.
///
/// Stops at the first undecodable byte and reports it; the caller decides
/// whether that makes the enclosing function non-simple.
///
/// # Errors
///
/// Returns the offset at which decoding failed along with the error.
pub fn decode_all(bytes: &[u8], base: u64) -> Result<Vec<(u64, DecodedInst)>, (u64, DecodeError)> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let addr = base + off as u64;
        match decode(&bytes[off..], addr) {
            Ok(d) => {
                let l = d.len as usize;
                out.push((off as u64, d));
                off += l;
            }
            Err(e) => return Err((off as u64, e)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode_at, Label};

    fn round_trip(inst: Inst, addr: u64) {
        let enc = encode_at(&inst, addr).unwrap();
        assert!(enc.fixups.is_empty(), "unresolved fixups in {inst}");
        let dec = decode(&enc.bytes, addr).unwrap_or_else(|e| panic!("decode {inst}: {e}"));
        assert_eq!(dec.len as usize, enc.bytes.len(), "length of {inst}");
        let re = encode_at(&dec.inst, addr).unwrap();
        assert_eq!(
            re.bytes, enc.bytes,
            "re-encode of {inst} (decoded {})",
            dec.inst
        );
    }

    #[test]
    fn round_trips_representative_set() {
        use crate::{AluOp, Cond, ShiftOp};
        let a = 0x400123u64;
        let cases = vec![
            Inst::Push(Reg::Rbp),
            Inst::Push(Reg::R15),
            Inst::Pop(Reg::Rax),
            Inst::MovRR {
                dst: Reg::R9,
                src: Reg::Rdi,
            },
            Inst::MovRI {
                dst: Reg::Rax,
                imm: -100,
            },
            Inst::MovRI {
                dst: Reg::R12,
                imm: 0x7fff_ffff_ffff,
            },
            Inst::Load {
                dst: Reg::Rcx,
                mem: Mem::base(Reg::Rbp, -24),
            },
            Inst::Store {
                mem: Mem::base(Reg::Rsp, 1024),
                src: Reg::R8,
            },
            Inst::Lea {
                dst: Reg::Rdx,
                mem: Mem::BaseIndexScale {
                    base: Reg::Rbx,
                    index: Reg::Rsi,
                    scale: 2,
                    disp: -7,
                },
            },
            Inst::Load {
                dst: Reg::Rax,
                mem: Mem::rip(Target::Addr(0x400200)),
            },
            Inst::Alu {
                op: AluOp::Xor,
                dst: Reg::Rax,
                src: Reg::Rax,
            },
            Inst::AluI {
                op: AluOp::Cmp,
                dst: Reg::Rdi,
                imm: 1000,
            },
            Inst::Test {
                a: Reg::Rax,
                b: Reg::Rax,
            },
            Inst::Imul {
                dst: Reg::Rbx,
                src: Reg::R14,
            },
            Inst::Shift {
                op: ShiftOp::Sar,
                dst: Reg::Rax,
                amount: 13,
            },
            Inst::Setcc {
                cond: Cond::Le,
                dst: Reg::Rsi,
            },
            Inst::Movzx8 {
                dst: Reg::Rsi,
                src: Reg::Rsi,
            },
            Inst::Jcc {
                cond: Cond::Ne,
                target: Target::Addr(a + 40),
                width: JumpWidth::Short,
            },
            Inst::Jcc {
                cond: Cond::Ne,
                target: Target::Addr(a.wrapping_sub(0x2000)),
                width: JumpWidth::Near,
            },
            Inst::Jmp {
                target: Target::Addr(a + 2),
                width: JumpWidth::Short,
            },
            Inst::Jmp {
                target: Target::Addr(a + 0x10000),
                width: JumpWidth::Near,
            },
            Inst::JmpInd {
                rm: Rm::Reg(Reg::Rax),
            },
            Inst::JmpInd {
                rm: Rm::Mem(Mem::BaseIndexScale {
                    base: Reg::R11,
                    index: Reg::R10,
                    scale: 8,
                    disp: 0,
                }),
            },
            Inst::Call {
                target: Target::Addr(0x401000),
            },
            Inst::CallInd {
                rm: Rm::Mem(Mem::rip(Target::Addr(0x600000))),
            },
            Inst::Ret,
            Inst::RepzRet,
            Inst::Ud2,
            Inst::Syscall,
        ];
        for c in cases {
            round_trip(c, a);
        }
        for n in 1..=9 {
            round_trip(Inst::Nop { len: n }, a);
        }
    }

    #[test]
    fn branch_target_resolution() {
        // E9 rel32 at addr: target = addr + 5 + rel.
        let enc = encode_at(
            &Inst::Jmp {
                target: Target::Addr(0x400100),
                width: JumpWidth::Near,
            },
            0x400000,
        )
        .unwrap();
        let dec = decode(&enc.bytes, 0x400000).unwrap();
        assert_eq!(
            dec.inst.target(),
            Some(Target::Addr(0x400100)),
            "decoded target must be absolute"
        );
    }

    #[test]
    fn unsupported_bytes_are_rejected() {
        assert!(matches!(
            decode(&[0x06], 0),
            Err(DecodeError::Unsupported { .. })
        ));
        assert!(matches!(decode(&[], 0), Err(DecodeError::Truncated)));
        assert!(matches!(decode(&[0x48], 0), Err(DecodeError::Truncated)));
    }

    #[test]
    fn decode_all_walks_a_sequence() {
        let insts = [
            Inst::Push(Reg::Rbp),
            Inst::MovRR {
                dst: Reg::Rbp,
                src: Reg::Rsp,
            },
            Inst::Pop(Reg::Rbp),
            Inst::Ret,
        ];
        let mut bytes = Vec::new();
        for i in &insts {
            bytes.extend(encode_at(i, 0).unwrap().bytes);
        }
        let decoded = decode_all(&bytes, 0x1000).unwrap();
        assert_eq!(decoded.len(), insts.len());
        for ((_, d), i) in decoded.iter().zip(insts.iter()) {
            assert_eq!(&d.inst, i);
        }
    }

    #[test]
    fn labels_cannot_round_trip_without_resolution() {
        let enc = encode_at(
            &Inst::Call {
                target: Target::Label(Label(1)),
            },
            0,
        )
        .unwrap();
        // Placeholder zeros decode to *some* address; that's fine — the
        // rewriter only decodes fully linked code.
        let dec = decode(&enc.bytes, 0x400000).unwrap();
        assert_eq!(dec.inst.target(), Some(Target::Addr(0x400005)));
    }
}
