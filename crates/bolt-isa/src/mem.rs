//! Memory operands and symbolic targets.

use crate::Reg;
use std::fmt;

/// An opaque label identifier used for symbolic references during encoding.
///
/// Labels are allocated by whoever drives the encoder (the code generator or
/// the binary rewriter); the encoder only records fixups against them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".L{}", self.0)
    }
}

/// A control-flow or data target: either a not-yet-resolved [`Label`] or an
/// absolute virtual address.
///
/// Decoded instructions always carry [`Target::Addr`]; instructions under
/// construction typically carry [`Target::Label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Symbolic target, resolved later via a fixup.
    Label(Label),
    /// Resolved absolute virtual address.
    Addr(u64),
}

impl Target {
    /// Returns the absolute address if resolved.
    pub fn addr(&self) -> Option<u64> {
        match self {
            Target::Addr(a) => Some(*a),
            Target::Label(_) => None,
        }
    }

    /// Returns the label if unresolved.
    pub fn label(&self) -> Option<Label> {
        match self {
            Target::Label(l) => Some(*l),
            Target::Addr(_) => None,
        }
    }
}

impl From<Label> for Target {
    fn from(l: Label) -> Self {
        Target::Label(l)
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Label(l) => write!(f, "{l}"),
            Target::Addr(a) => write!(f, "{a:#x}"),
        }
    }
}

/// A memory operand for loads, stores, `lea`, and indirect branches.
///
/// The subset supports the three addressing shapes the BOLT pipeline needs:
/// plain base+displacement (stack slots, struct fields), base+index*scale
/// (jump tables, arrays) and RIP-relative (read-only data, GOT slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mem {
    /// `disp(base)`
    BaseDisp { base: Reg, disp: i32 },
    /// `disp(base, index, scale)`; `scale` must be 1, 2, 4 or 8 and `index`
    /// must not be `rsp`.
    BaseIndexScale {
        base: Reg,
        index: Reg,
        scale: u8,
        disp: i32,
    },
    /// `target(%rip)` — position-independent reference to data or code.
    RipRel { target: Target },
}

impl Mem {
    /// Convenience constructor for `disp(base)`.
    pub fn base(base: Reg, disp: i32) -> Mem {
        Mem::BaseDisp { base, disp }
    }

    /// Convenience constructor for a RIP-relative reference to `target`.
    pub fn rip(target: impl Into<Target>) -> Mem {
        Mem::RipRel {
            target: target.into(),
        }
    }

    /// The registers read to compute the effective address.
    pub fn regs_used(&self) -> impl Iterator<Item = Reg> + '_ {
        let (a, b) = match self {
            Mem::BaseDisp { base, .. } => (Some(*base), None),
            Mem::BaseIndexScale { base, index, .. } => (Some(*base), Some(*index)),
            Mem::RipRel { .. } => (None, None),
        };
        a.into_iter().chain(b)
    }

    /// The symbolic target if this is an unresolved RIP-relative reference.
    pub fn rip_label(&self) -> Option<Label> {
        match self {
            Mem::RipRel {
                target: Target::Label(l),
            } => Some(*l),
            _ => None,
        }
    }
}

/// Formats an integer as signed hexadecimal (`-0x8`, `0x10`).
pub(crate) fn signed_hex(v: i64) -> String {
    if v < 0 {
        format!("-{:#x}", v.unsigned_abs())
    } else {
        format!("{v:#x}")
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mem::BaseDisp { base, disp } => {
                if *disp == 0 {
                    write!(f, "({base})")
                } else {
                    write!(f, "{}({base})", signed_hex(*disp as i64))
                }
            }
            Mem::BaseIndexScale {
                base,
                index,
                scale,
                disp,
            } => {
                if *disp == 0 {
                    write!(f, "({base},{index},{scale})")
                } else {
                    write!(f, "{}({base},{index},{scale})", signed_hex(*disp as i64))
                }
            }
            Mem::RipRel { target } => write!(f, "{target}(%rip)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_att_syntax() {
        let m = Mem::base(Reg::Rbp, -8);
        assert_eq!(m.to_string(), "-0x8(%rbp)");
        let t = Mem::BaseIndexScale {
            base: Reg::Rax,
            index: Reg::Rcx,
            scale: 8,
            disp: 0,
        };
        assert_eq!(t.to_string(), "(%rax,%rcx,8)");
        let r = Mem::rip(Label(3));
        assert_eq!(r.to_string(), ".L3(%rip)");
    }

    #[test]
    fn regs_used_reports_base_and_index() {
        let m = Mem::BaseIndexScale {
            base: Reg::Rax,
            index: Reg::R9,
            scale: 4,
            disp: 16,
        };
        let used: Vec<_> = m.regs_used().collect();
        assert_eq!(used, vec![Reg::Rax, Reg::R9]);
        assert_eq!(Mem::rip(Label(0)).regs_used().count(), 0);
    }

    #[test]
    fn target_accessors() {
        assert_eq!(Target::Addr(0x400000).addr(), Some(0x400000));
        assert_eq!(Target::Label(Label(7)).label(), Some(Label(7)));
        assert_eq!(Target::Label(Label(7)).addr(), None);
    }
}
