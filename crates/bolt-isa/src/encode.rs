//! Binary encoder for the x86-64 subset.
//!
//! Instructions with symbolic [`Target::Label`] operands encode with
//! placeholder fields plus [`Fixup`] records; resolved [`Target::Addr`]
//! operands are patched immediately using the instruction address given to
//! [`encode_at`].

use crate::{AluOp, Inst, JumpWidth, Label, Mem, Reg, Rm, Target};
use std::fmt;

/// The kind of a relocation-like patch against an encoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FixupKind {
    /// Signed 8-bit PC-relative displacement (relative to the end of the
    /// instruction).
    Rel8,
    /// Signed 32-bit PC-relative displacement (relative to the end of the
    /// instruction).
    Rel32,
    /// Absolute 64-bit address.
    Abs64,
}

impl FixupKind {
    /// The width of the patched field in bytes.
    pub fn width(self) -> usize {
        match self {
            FixupKind::Rel8 => 1,
            FixupKind::Rel32 => 4,
            FixupKind::Abs64 => 8,
        }
    }
}

/// A pending patch recorded by the encoder for a symbolic operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fixup {
    /// Byte offset of the field within the encoded instruction.
    pub offset: u8,
    /// Field kind/width.
    pub kind: FixupKind,
    /// The label the field refers to.
    pub label: Label,
}

/// The result of encoding one instruction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Encoded {
    /// The instruction bytes (placeholder zeros in unresolved fields).
    pub bytes: Vec<u8>,
    /// Patches still required against labels.
    pub fixups: Vec<Fixup>,
}

/// Errors produced by the encoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A short branch displacement did not fit in 8 bits.
    Rel8OutOfRange { from: u64, to: u64 },
    /// A near branch/call displacement did not fit in 32 bits.
    Rel32OutOfRange { from: u64, to: u64 },
    /// Invalid scale in a base+index*scale operand (must be 1, 2, 4, 8).
    BadScale(u8),
    /// `%rsp` cannot be an index register.
    IndexIsRsp,
    /// NOP lengths must be in `1..=9`.
    BadNopLen(u8),
    /// `lea` requires a memory operand shape valid in ModRM.
    InvalidOperand(&'static str),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Rel8OutOfRange { from, to } => {
                write!(f, "rel8 displacement out of range: {from:#x} -> {to:#x}")
            }
            EncodeError::Rel32OutOfRange { from, to } => {
                write!(f, "rel32 displacement out of range: {from:#x} -> {to:#x}")
            }
            EncodeError::BadScale(s) => write!(f, "invalid SIB scale {s}"),
            EncodeError::IndexIsRsp => write!(f, "%rsp cannot be used as an index register"),
            EncodeError::BadNopLen(n) => write!(f, "unsupported nop length {n}"),
            EncodeError::InvalidOperand(what) => write!(f, "invalid operand: {what}"),
        }
    }
}

impl std::error::Error for EncodeError {}

struct Enc {
    bytes: Vec<u8>,
    // Pending internal fixups: (offset, kind, target).
    pending: Vec<(u8, FixupKind, Target)>,
}

impl Enc {
    fn new() -> Self {
        Enc {
            bytes: Vec::with_capacity(8),
            pending: Vec::new(),
        }
    }

    fn u8(&mut self, b: u8) {
        self.bytes.push(b);
    }

    fn i8_(&mut self, v: i8) {
        self.bytes.push(v as u8);
    }

    fn i32_(&mut self, v: i32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn i64_(&mut self, v: i64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Emits a REX prefix if any bit is set or if `force` is true.
    fn rex(&mut self, w: bool, r: bool, x: bool, b: bool, force: bool) {
        let byte =
            0x40 | (u8::from(w) << 3) | (u8::from(r) << 2) | (u8::from(x) << 1) | u8::from(b);
        if byte != 0x40 || force {
            self.u8(byte);
        }
    }

    fn modrm(&mut self, mode: u8, reg: u8, rm: u8) {
        debug_assert!(mode < 4 && reg < 8 && rm < 8);
        self.u8((mode << 6) | (reg << 3) | rm);
    }

    fn sib(&mut self, scale_bits: u8, index: u8, base: u8) {
        debug_assert!(scale_bits < 4 && index < 8 && base < 8);
        self.u8((scale_bits << 6) | (index << 3) | base);
    }

    fn field(&mut self, kind: FixupKind, target: Target) {
        let off = self.bytes.len() as u8;
        self.pending.push((off, kind, target));
        for _ in 0..kind.width() {
            self.u8(0);
        }
    }

    /// Emits ModRM (+SIB, +disp) for a memory operand with the given 3-bit
    /// reg field. REX.X/REX.B must already have been emitted via
    /// [`mem_rex_xb`].
    fn mem(&mut self, reg_field: u8, mem: &Mem) -> Result<(), EncodeError> {
        match *mem {
            Mem::RipRel { target } => {
                self.modrm(0b00, reg_field, 0b101);
                self.field(FixupKind::Rel32, target);
                Ok(())
            }
            Mem::BaseDisp { base, disp } => {
                let mode = disp_mode(disp, base);
                self.modrm(mode, reg_field, base.low3());
                if base.low3() == 4 {
                    // rsp/r12 base requires a SIB byte with "no index".
                    self.sib(0, 0b100, base.low3());
                }
                self.disp(mode, disp);
                Ok(())
            }
            Mem::BaseIndexScale {
                base,
                index,
                scale,
                disp,
            } => {
                if index == Reg::Rsp {
                    return Err(EncodeError::IndexIsRsp);
                }
                let ss = match scale {
                    1 => 0,
                    2 => 1,
                    4 => 2,
                    8 => 3,
                    s => return Err(EncodeError::BadScale(s)),
                };
                let mode = disp_mode(disp, base);
                self.modrm(mode, reg_field, 0b100);
                self.sib(ss, index.low3(), base.low3());
                self.disp(mode, disp);
                Ok(())
            }
        }
    }

    fn disp(&mut self, mode: u8, disp: i32) {
        match mode {
            0b00 => {}
            0b01 => self.i8_(disp as i8),
            0b10 => self.i32_(disp),
            _ => unreachable!("register mode has no displacement"),
        }
    }

    fn finish(self, inst_addr: u64) -> Result<Encoded, EncodeError> {
        let mut bytes = self.bytes;
        let len = bytes.len() as u64;
        let mut fixups = Vec::new();
        for (offset, kind, target) in self.pending {
            match target {
                Target::Label(label) => fixups.push(Fixup {
                    offset,
                    kind,
                    label,
                }),
                Target::Addr(to) => {
                    patch(&mut bytes, offset, kind, inst_addr, len, to)?;
                }
            }
        }
        Ok(Encoded { bytes, fixups })
    }
}

/// Chooses the ModRM `mod` field for a displacement and base register.
fn disp_mode(disp: i32, base: Reg) -> u8 {
    // rbp/r13 cannot use mod=00 (that encoding means RIP-relative or
    // base-less); fall back to an explicit zero disp8.
    if disp == 0 && base.low3() != 5 {
        0b00
    } else if i8::try_from(disp).is_ok() {
        0b01
    } else {
        0b10
    }
}

fn mem_rex_xb(mem: &Mem) -> (bool, bool) {
    match mem {
        Mem::RipRel { .. } => (false, false),
        Mem::BaseDisp { base, .. } => (false, base.needs_rex_ext()),
        Mem::BaseIndexScale { base, index, .. } => (index.needs_rex_ext(), base.needs_rex_ext()),
    }
}

fn patch(
    bytes: &mut [u8],
    offset: u8,
    kind: FixupKind,
    inst_addr: u64,
    inst_len: u64,
    to: u64,
) -> Result<(), EncodeError> {
    let off = offset as usize;
    match kind {
        FixupKind::Rel8 => {
            let rel = to.wrapping_sub(inst_addr + inst_len) as i64;
            let v = i8::try_from(rel).map_err(|_| EncodeError::Rel8OutOfRange {
                from: inst_addr,
                to,
            })?;
            bytes[off] = v as u8;
        }
        FixupKind::Rel32 => {
            let rel = to.wrapping_sub(inst_addr + inst_len) as i64;
            let v = i32::try_from(rel).map_err(|_| EncodeError::Rel32OutOfRange {
                from: inst_addr,
                to,
            })?;
            bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
        }
        FixupKind::Abs64 => {
            bytes[off..off + 8].copy_from_slice(&to.to_le_bytes());
        }
    }
    Ok(())
}

/// Patches a previously recorded [`Fixup`] once its label address is known.
///
/// `inst_addr` and `inst_len` describe the placed instruction; `to` is the
/// resolved target address.
///
/// # Errors
///
/// Returns an error if the displacement does not fit the field width.
pub fn apply_fixup(
    bytes: &mut [u8],
    fixup: &Fixup,
    inst_addr: u64,
    inst_len: usize,
    to: u64,
) -> Result<(), EncodeError> {
    patch(
        bytes,
        fixup.offset,
        fixup.kind,
        inst_addr,
        inst_len as u64,
        to,
    )
}

/// Canonical NOP byte sequences of length 1..=9 (Intel SDM recommended
/// forms).
pub const NOP_SEQUENCES: [&[u8]; 9] = [
    &[0x90],
    &[0x66, 0x90],
    &[0x0F, 0x1F, 0x00],
    &[0x0F, 0x1F, 0x40, 0x00],
    &[0x0F, 0x1F, 0x44, 0x00, 0x00],
    &[0x66, 0x0F, 0x1F, 0x44, 0x00, 0x00],
    &[0x0F, 0x1F, 0x80, 0x00, 0x00, 0x00, 0x00],
    &[0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00],
    &[0x66, 0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00],
];

/// Encodes `inst` assuming it will be placed at virtual address `addr`.
///
/// Operands that are [`Target::Addr`] are resolved immediately; operands that
/// are [`Target::Label`] produce [`Fixup`]s to be applied by the caller (see
/// [`apply_fixup`]).
///
/// # Errors
///
/// Returns an error for invalid operand combinations or displacements that
/// do not fit the selected branch width.
///
/// # Examples
///
/// ```
/// use bolt_isa::{encode_at, Inst, Reg};
/// let enc = encode_at(&Inst::Push(Reg::Rbp), 0x400000)?;
/// assert_eq!(enc.bytes, vec![0x55]);
/// # Ok::<(), bolt_isa::EncodeError>(())
/// ```
pub fn encode_at(inst: &Inst, addr: u64) -> Result<Encoded, EncodeError> {
    let mut e = Enc::new();
    match *inst {
        Inst::Push(r) => {
            e.rex(false, false, false, r.needs_rex_ext(), false);
            e.u8(0x50 + r.low3());
        }
        Inst::Pop(r) => {
            e.rex(false, false, false, r.needs_rex_ext(), false);
            e.u8(0x58 + r.low3());
        }
        Inst::MovRR { dst, src } => {
            e.rex(true, src.needs_rex_ext(), false, dst.needs_rex_ext(), false);
            e.u8(0x89);
            e.modrm(0b11, src.low3(), dst.low3());
        }
        Inst::MovRI { dst, imm } => {
            if i32::try_from(imm).is_ok() {
                e.rex(true, false, false, dst.needs_rex_ext(), false);
                e.u8(0xC7);
                e.modrm(0b11, 0, dst.low3());
                e.i32_(imm as i32);
            } else {
                e.rex(true, false, false, dst.needs_rex_ext(), false);
                e.u8(0xB8 + dst.low3());
                e.i64_(imm);
            }
        }
        Inst::MovRSym { dst, target } => {
            e.rex(true, false, false, dst.needs_rex_ext(), false);
            e.u8(0xB8 + dst.low3());
            e.field(FixupKind::Abs64, target);
        }
        Inst::Load { dst, mem } => {
            let (x, b) = mem_rex_xb(&mem);
            e.rex(true, dst.needs_rex_ext(), x, b, false);
            e.u8(0x8B);
            e.mem(dst.low3(), &mem)?;
        }
        Inst::Store { mem, src } => {
            let (x, b) = mem_rex_xb(&mem);
            e.rex(true, src.needs_rex_ext(), x, b, false);
            e.u8(0x89);
            e.mem(src.low3(), &mem)?;
        }
        Inst::Lea { dst, mem } => {
            let (x, b) = mem_rex_xb(&mem);
            e.rex(true, dst.needs_rex_ext(), x, b, false);
            e.u8(0x8D);
            e.mem(dst.low3(), &mem)?;
        }
        Inst::Alu { op, dst, src } => {
            e.rex(true, src.needs_rex_ext(), false, dst.needs_rex_ext(), false);
            e.u8(op.mr_opcode());
            e.modrm(0b11, src.low3(), dst.low3());
        }
        Inst::AluI { op, dst, imm } => {
            e.rex(true, false, false, dst.needs_rex_ext(), false);
            if i8::try_from(imm).is_ok() {
                e.u8(0x83);
                e.modrm(0b11, op.ext_digit(), dst.low3());
                e.i8_(imm as i8);
            } else {
                e.u8(0x81);
                e.modrm(0b11, op.ext_digit(), dst.low3());
                e.i32_(imm);
            }
        }
        Inst::Test { a, b } => {
            e.rex(true, b.needs_rex_ext(), false, a.needs_rex_ext(), false);
            e.u8(0x85);
            e.modrm(0b11, b.low3(), a.low3());
        }
        Inst::Imul { dst, src } => {
            e.rex(true, dst.needs_rex_ext(), false, src.needs_rex_ext(), false);
            e.u8(0x0F);
            e.u8(0xAF);
            e.modrm(0b11, dst.low3(), src.low3());
        }
        Inst::Shift { op, dst, amount } => {
            e.rex(true, false, false, dst.needs_rex_ext(), false);
            e.u8(0xC1);
            e.modrm(0b11, op.ext_digit(), dst.low3());
            e.u8(amount & 63);
        }
        Inst::Setcc { cond, dst } => {
            // Always emit REX so rsp/rbp/rsi/rdi map to spl/bpl/sil/dil.
            e.rex(false, false, false, dst.needs_rex_ext(), true);
            e.u8(0x0F);
            e.u8(0x90 + cond.cc());
            e.modrm(0b11, 0, dst.low3());
        }
        Inst::Movzx8 { dst, src } => {
            e.rex(true, dst.needs_rex_ext(), false, src.needs_rex_ext(), false);
            e.u8(0x0F);
            e.u8(0xB6);
            e.modrm(0b11, dst.low3(), src.low3());
        }
        Inst::Jcc {
            cond,
            target,
            width,
        } => match width {
            JumpWidth::Short => {
                e.u8(0x70 + cond.cc());
                e.field(FixupKind::Rel8, target);
            }
            JumpWidth::Near => {
                e.u8(0x0F);
                e.u8(0x80 + cond.cc());
                e.field(FixupKind::Rel32, target);
            }
        },
        Inst::Jmp { target, width } => match width {
            JumpWidth::Short => {
                e.u8(0xEB);
                e.field(FixupKind::Rel8, target);
            }
            JumpWidth::Near => {
                e.u8(0xE9);
                e.field(FixupKind::Rel32, target);
            }
        },
        Inst::JmpInd { rm } => encode_ff(&mut e, 4, rm)?,
        Inst::Call { target } => {
            e.u8(0xE8);
            e.field(FixupKind::Rel32, target);
        }
        Inst::CallInd { rm } => encode_ff(&mut e, 2, rm)?,
        Inst::Ret => e.u8(0xC3),
        Inst::RepzRet => {
            e.u8(0xF3);
            e.u8(0xC3);
        }
        Inst::Nop { len } => {
            let n = len as usize;
            if !(1..=9).contains(&n) {
                return Err(EncodeError::BadNopLen(len));
            }
            e.bytes.extend_from_slice(NOP_SEQUENCES[n - 1]);
        }
        Inst::Ud2 => {
            e.u8(0x0F);
            e.u8(0x0B);
        }
        Inst::Syscall => {
            e.u8(0x0F);
            e.u8(0x05);
        }
    }
    e.finish(addr)
}

fn encode_ff(e: &mut Enc, digit: u8, rm: Rm) -> Result<(), EncodeError> {
    match rm {
        Rm::Reg(r) => {
            e.rex(false, false, false, r.needs_rex_ext(), false);
            e.u8(0xFF);
            e.modrm(0b11, digit, r.low3());
        }
        Rm::Mem(m) => {
            let (x, b) = mem_rex_xb(&m);
            e.rex(false, false, x, b, false);
            e.u8(0xFF);
            e.mem(digit, &m)?;
        }
    }
    Ok(())
}

/// The encoded length of `inst` in bytes, without performing target
/// resolution.
///
/// Guaranteed to match `encode_at(inst, _).bytes.len()` for encodable
/// instructions (covered by property tests).
pub fn encoded_len(inst: &Inst) -> usize {
    // Encoding with an arbitrary address cannot fail for label targets, and
    // Addr targets can only fail range checks for Rel8; use a best-effort
    // structural computation via a throwaway encode with labels substituted.
    let mut probe = *inst;
    neutralize_targets(&mut probe);
    match encode_at(&probe, 0) {
        Ok(enc) => enc.bytes.len(),
        Err(_) => 0,
    }
}

/// Replaces resolved targets with labels so length probing cannot fail range
/// checks.
fn neutralize_targets(inst: &mut Inst) {
    let l = Target::Label(Label(u32::MAX));
    match inst {
        Inst::Jcc { target, .. } | Inst::Jmp { target, .. } | Inst::Call { target } => *target = l,
        Inst::MovRSym { target, .. } => *target = l,
        Inst::Load { mem, .. } | Inst::Store { mem, .. } | Inst::Lea { dst: _, mem } => {
            if let Mem::RipRel { target } = mem {
                *target = l;
            }
        }
        Inst::JmpInd { rm } | Inst::CallInd { rm } => {
            if let Rm::Mem(Mem::RipRel { target }) = rm {
                *target = l;
            }
        }
        _ => {}
    }
}

/// Returns `true` if `op` is an ALU opcode in MR form.
pub(crate) fn alu_from_mr_opcode(op: u8) -> Option<AluOp> {
    Some(match op {
        0x01 => AluOp::Add,
        0x09 => AluOp::Or,
        0x21 => AluOp::And,
        0x29 => AluOp::Sub,
        0x31 => AluOp::Xor,
        0x39 => AluOp::Cmp,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cond;

    fn enc(i: Inst) -> Vec<u8> {
        encode_at(&i, 0x400000).unwrap().bytes
    }

    #[test]
    fn known_encodings() {
        assert_eq!(enc(Inst::Push(Reg::Rbp)), vec![0x55]);
        assert_eq!(enc(Inst::Push(Reg::R12)), vec![0x41, 0x54]);
        assert_eq!(enc(Inst::Pop(Reg::Rbp)), vec![0x5D]);
        assert_eq!(
            enc(Inst::MovRR {
                dst: Reg::Rbp,
                src: Reg::Rsp
            }),
            vec![0x48, 0x89, 0xE5]
        );
        assert_eq!(enc(Inst::Ret), vec![0xC3]);
        assert_eq!(enc(Inst::RepzRet), vec![0xF3, 0xC3]);
        assert_eq!(enc(Inst::Syscall), vec![0x0F, 0x05]);
        assert_eq!(enc(Inst::Ud2), vec![0x0F, 0x0B]);
        // subq $0x10, %rsp => 48 83 EC 10
        assert_eq!(
            enc(Inst::AluI {
                op: AluOp::Sub,
                dst: Reg::Rsp,
                imm: 0x10
            }),
            vec![0x48, 0x83, 0xEC, 0x10]
        );
    }

    #[test]
    fn branch_widths_match_paper_sizes() {
        // Conditional: 2 bytes short, 6 bytes near (paper section 3.1).
        let short = Inst::Jcc {
            cond: Cond::E,
            target: Target::Addr(0x400010),
            width: JumpWidth::Short,
        };
        let near = Inst::Jcc {
            cond: Cond::E,
            target: Target::Addr(0x400010),
            width: JumpWidth::Near,
        };
        assert_eq!(enc(short).len(), 2);
        assert_eq!(enc(near).len(), 6);
        // Unconditional: 2 vs 5.
        let js = Inst::Jmp {
            target: Target::Addr(0x400010),
            width: JumpWidth::Short,
        };
        let jn = Inst::Jmp {
            target: Target::Addr(0x400010),
            width: JumpWidth::Near,
        };
        assert_eq!(enc(js).len(), 2);
        assert_eq!(enc(jn).len(), 5);
    }

    #[test]
    fn rel_resolution() {
        // jmp to self+2 encodes rel8 = 0.
        let b = enc(Inst::Jmp {
            target: Target::Addr(0x400002),
            width: JumpWidth::Short,
        });
        assert_eq!(b, vec![0xEB, 0x00]);
        // Backward branch.
        let b = enc(Inst::Jmp {
            target: Target::Addr(0x400000),
            width: JumpWidth::Short,
        });
        assert_eq!(b, vec![0xEB, 0xFE]);
    }

    #[test]
    fn rel8_out_of_range_is_error() {
        let r = encode_at(
            &Inst::Jmp {
                target: Target::Addr(0x400000 + 0x1000),
                width: JumpWidth::Short,
            },
            0x400000,
        );
        assert!(matches!(r, Err(EncodeError::Rel8OutOfRange { .. })));
    }

    #[test]
    fn label_targets_produce_fixups() {
        let e = encode_at(
            &Inst::Call {
                target: Target::Label(Label(9)),
            },
            0,
        )
        .unwrap();
        assert_eq!(e.bytes.len(), 5);
        assert_eq!(e.fixups.len(), 1);
        assert_eq!(e.fixups[0].kind, FixupKind::Rel32);
        assert_eq!(e.fixups[0].offset, 1);
        assert_eq!(e.fixups[0].label, Label(9));
    }

    #[test]
    fn apply_fixup_round_trip() {
        let mut e = encode_at(
            &Inst::Jmp {
                target: Target::Label(Label(1)),
                width: JumpWidth::Near,
            },
            0,
        )
        .unwrap();
        let f = e.fixups[0];
        let len = e.bytes.len();
        apply_fixup(&mut e.bytes, &f, 0x400000, len, 0x400100).unwrap();
        // rel32 = 0x400100 - 0x400005 = 0xFB
        assert_eq!(&e.bytes, &[0xE9, 0xFB, 0x00, 0x00, 0x00]);
    }

    #[test]
    fn rsp_base_uses_sib() {
        // movq 8(%rsp), %rax => 48 8B 44 24 08
        let b = enc(Inst::Load {
            dst: Reg::Rax,
            mem: Mem::base(Reg::Rsp, 8),
        });
        assert_eq!(b, vec![0x48, 0x8B, 0x44, 0x24, 0x08]);
    }

    #[test]
    fn rbp_base_zero_disp_uses_disp8() {
        // movq (%rbp), %rax cannot use mod=00: 48 8B 45 00
        let b = enc(Inst::Load {
            dst: Reg::Rax,
            mem: Mem::base(Reg::Rbp, 0),
        });
        assert_eq!(b, vec![0x48, 0x8B, 0x45, 0x00]);
        // Same constraint applies to r13.
        let b = enc(Inst::Load {
            dst: Reg::Rax,
            mem: Mem::base(Reg::R13, 0),
        });
        assert_eq!(b, vec![0x49, 0x8B, 0x45, 0x00]);
    }

    #[test]
    fn jump_table_operand() {
        // jmpq *(%rax,%rcx,8) => FF 24 C8
        let b = enc(Inst::JmpInd {
            rm: Rm::Mem(Mem::BaseIndexScale {
                base: Reg::Rax,
                index: Reg::Rcx,
                scale: 8,
                disp: 0,
            }),
        });
        assert_eq!(b, vec![0xFF, 0x24, 0xC8]);
    }

    #[test]
    fn rip_relative_load_resolves_against_inst_end() {
        // movq 0x10(%rip), %rax at 0x400000: length 7, target 0x400017.
        let b = enc(Inst::Load {
            dst: Reg::Rax,
            mem: Mem::rip(Target::Addr(0x400017)),
        });
        assert_eq!(b, vec![0x48, 0x8B, 0x05, 0x10, 0x00, 0x00, 0x00]);
    }

    #[test]
    fn nops_all_lengths() {
        for n in 1..=9u8 {
            let b = enc(Inst::Nop { len: n });
            assert_eq!(b.len(), n as usize);
            assert_eq!(b, NOP_SEQUENCES[n as usize - 1]);
        }
        assert!(encode_at(&Inst::Nop { len: 10 }, 0).is_err());
        assert!(encode_at(&Inst::Nop { len: 0 }, 0).is_err());
    }

    #[test]
    fn movabs_for_large_immediates() {
        let small = enc(Inst::MovRI {
            dst: Reg::Rax,
            imm: 1,
        });
        assert_eq!(small, vec![0x48, 0xC7, 0xC0, 0x01, 0x00, 0x00, 0x00]);
        let large = enc(Inst::MovRI {
            dst: Reg::Rax,
            imm: 0x1_0000_0000,
        });
        assert_eq!(large.len(), 10);
        assert_eq!(&large[..2], &[0x48, 0xB8]);
    }

    #[test]
    fn encoded_len_matches_encoding() {
        let cases = [
            Inst::Push(Reg::R8),
            Inst::MovRI {
                dst: Reg::R15,
                imm: -5,
            },
            Inst::Jcc {
                cond: Cond::G,
                target: Target::Label(Label(0)),
                width: JumpWidth::Near,
            },
            Inst::Load {
                dst: Reg::Rdx,
                mem: Mem::BaseIndexScale {
                    base: Reg::R12,
                    index: Reg::R13,
                    scale: 4,
                    disp: 1000,
                },
            },
        ];
        for c in cases {
            assert_eq!(
                encoded_len(&c),
                encode_at(&c, 0).unwrap().bytes.len(),
                "{c}"
            );
        }
    }
}
