//! # bolt-isa — x86-64 subset instruction set
//!
//! A from-scratch encoder/decoder for the x86-64 subset used throughout the
//! BOLT reproduction. It plays the role LLVM's MC layer plays for the real
//! BOLT: a machine-instruction model ([`Inst`]), a binary encoder with
//! symbolic fixups ([`encode_at`]), and a disassembler ([`decode`]).
//!
//! The subset is small but *binary-faithful*: encodings are the real x86-64
//! byte sequences (REX prefixes, ModRM/SIB, RIP-relative addressing), so the
//! code-layout phenomena the BOLT paper exploits are reproduced exactly —
//! e.g. conditional branches cost 2 bytes with an 8-bit displacement and 6
//! bytes with a 32-bit one (paper section 3.1), which is what makes hot/cold
//! code splitting interact with code size.
//!
//! ## Example
//!
//! ```
//! use bolt_isa::{decode, encode_at, Inst, JumpWidth, Reg, Target};
//!
//! // Encode `jmp 0x400100` placed at 0x400000 ...
//! let jmp = Inst::Jmp { target: Target::Addr(0x400100), width: JumpWidth::Near };
//! let enc = encode_at(&jmp, 0x400000)?;
//!
//! // ... and decode it back: targets come back as absolute addresses.
//! let dec = decode(&enc.bytes, 0x400000)?;
//! assert_eq!(dec.inst.target(), Some(Target::Addr(0x400100)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod cond;
mod decode;
mod encode;
mod flags;
mod inst;
mod mem;
mod reg;

pub use cond::Cond;
pub use decode::{decode, decode_all, DecodeError, DecodedInst};
pub use encode::{
    apply_fixup, encode_at, encoded_len, EncodeError, Encoded, Fixup, FixupKind, NOP_SEQUENCES,
};
pub use flags::{flag_effect, FlagClass, FlagEffect};
pub use inst::{AluOp, Inst, JumpWidth, Rm, ShiftOp};
pub use mem::{Label, Mem, Target};
pub use reg::Reg;
