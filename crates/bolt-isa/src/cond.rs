//! Condition codes for conditional branches and `setcc`.

use std::fmt;

/// An x86 condition code.
///
/// The discriminant is the 4-bit `cc` field used in `jcc`/`setcc` opcode
/// encodings (`0x70 + cc`, `0x0F 0x80 + cc`, `0x0F 0x90 + cc`).
///
/// # Examples
///
/// ```
/// use bolt_isa::Cond;
/// assert_eq!(Cond::E.invert(), Cond::Ne);
/// assert_eq!(Cond::L.cc(), 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Overflow.
    O = 0,
    /// No overflow.
    No = 1,
    /// Below (unsigned <).
    B = 2,
    /// Above or equal (unsigned >=).
    Ae = 3,
    /// Equal / zero.
    E = 4,
    /// Not equal / not zero.
    Ne = 5,
    /// Below or equal (unsigned <=).
    Be = 6,
    /// Above (unsigned >).
    A = 7,
    /// Sign (negative).
    S = 8,
    /// No sign (non-negative).
    Ns = 9,
    /// Parity even.
    P = 10,
    /// Parity odd.
    Np = 11,
    /// Less (signed <).
    L = 12,
    /// Greater or equal (signed >=).
    Ge = 13,
    /// Less or equal (signed <=).
    Le = 14,
    /// Greater (signed >).
    G = 15,
}

impl Cond {
    /// All sixteen condition codes in encoding order.
    pub const ALL: [Cond; 16] = [
        Cond::O,
        Cond::No,
        Cond::B,
        Cond::Ae,
        Cond::E,
        Cond::Ne,
        Cond::Be,
        Cond::A,
        Cond::S,
        Cond::Ns,
        Cond::P,
        Cond::Np,
        Cond::L,
        Cond::Ge,
        Cond::Le,
        Cond::G,
    ];

    /// The 4-bit condition-code field value.
    #[inline]
    pub fn cc(self) -> u8 {
        self as u8
    }

    /// Reconstructs a condition from its 4-bit encoding.
    pub fn from_cc(cc: u8) -> Option<Cond> {
        Cond::ALL.get(cc as usize).copied()
    }

    /// The logically inverted condition (`e` <-> `ne`, `l` <-> `ge`, ...).
    ///
    /// On x86 the inversion is always a flip of the low encoding bit.
    #[inline]
    pub fn invert(self) -> Cond {
        Cond::from_cc(self.cc() ^ 1).expect("cc^1 is always a valid condition")
    }

    /// The mnemonic suffix (`e`, `ne`, `l`, ...).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::O => "o",
            Cond::No => "no",
            Cond::B => "b",
            Cond::Ae => "ae",
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::S => "s",
            Cond::Ns => "ns",
            Cond::P => "p",
            Cond::Np => "np",
            Cond::L => "l",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::G => "g",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc_round_trips() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_cc(c.cc()), Some(c));
        }
        assert_eq!(Cond::from_cc(16), None);
    }

    #[test]
    fn inversion_is_involutive_and_correct() {
        for c in Cond::ALL {
            assert_eq!(c.invert().invert(), c);
        }
        assert_eq!(Cond::E.invert(), Cond::Ne);
        assert_eq!(Cond::L.invert(), Cond::Ge);
        assert_eq!(Cond::A.invert(), Cond::Be);
        assert_eq!(Cond::S.invert(), Cond::Ns);
    }
}
