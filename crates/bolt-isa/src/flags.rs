//! The shared flag-effect table: which instructions read, write, or
//! ignore the arithmetic flags, and which formula a writer's flags
//! derive from.
//!
//! Three independent consumers need exactly this information and must
//! never disagree about it:
//!
//! * the uop tier's backward flags-liveness pass (`lower_into` in
//!   `bolt-emu`), which decides which flag writes may be skipped;
//! * the structural translation validator (`validate_block`), which
//!   re-derives liveness forward and rejects unsafe marks;
//! * the symbolic translation validator (`bolt-emu::symexec`), which
//!   models each writer's flags as a symbolic term of its operands.
//!
//! Hoisting the table here means the ISA's flags semantics live in one
//! documented place; an instruction added with the wrong entry fails
//! all three consumers at once instead of drifting silently.

use crate::{AluOp, Inst};

/// Which formula a flag writer's result flags derive from — one variant
/// per `Flags::of_*` helper in the emulator. Two writers with the same
/// class and the same operands produce identical flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlagClass {
    /// `and`/`or`/`xor`/`test`: ZF/SF/PF of the result, CF = OF = 0.
    Logic,
    /// `add`: full add flags of the two operands.
    Add,
    /// `sub`/`cmp`: full subtract flags of the two operands.
    Sub,
    /// `imul`: CF = OF = signed-overflow, ZF/SF/PF of the low result.
    Imul,
    /// Nonzero-count shifts: CF = last bit shifted out, OF = 0, ZF/SF/PF
    /// of the result.
    Shift,
}

/// One instruction's arithmetic-flags behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlagEffect {
    /// Whether the instruction consumes the current flags (`jcc`,
    /// `setcc`).
    pub reads: bool,
    /// Whether — and how — the instruction replaces the flags. `None`
    /// for non-writers, including shifts whose masked count is zero:
    /// x86 leaves the flags untouched when `amount & 63 == 0`, so such
    /// a shift is architecturally not a flags writer at all.
    pub writes: Option<FlagClass>,
}

impl FlagEffect {
    const NONE: FlagEffect = FlagEffect {
        reads: false,
        writes: None,
    };

    fn writes(class: FlagClass) -> FlagEffect {
        FlagEffect {
            reads: false,
            writes: Some(class),
        }
    }

    const READS: FlagEffect = FlagEffect {
        reads: true,
        writes: None,
    };
}

/// The flag effect of one decoded instruction.
///
/// No instruction in this ISA both reads and writes the flags — the
/// liveness passes in `bolt-emu` rely on that, and the exhaustive match
/// here is where the invariant is enforced.
pub fn flag_effect(inst: &Inst) -> FlagEffect {
    match inst {
        Inst::Alu { op, .. } | Inst::AluI { op, .. } => FlagEffect::writes(match op {
            AluOp::Add => FlagClass::Add,
            AluOp::Sub | AluOp::Cmp => FlagClass::Sub,
            AluOp::And | AluOp::Or | AluOp::Xor => FlagClass::Logic,
        }),
        Inst::Test { .. } => FlagEffect::writes(FlagClass::Logic),
        Inst::Imul { .. } => FlagEffect::writes(FlagClass::Imul),
        Inst::Shift { amount, .. } => {
            if amount & 63 == 0 {
                FlagEffect::NONE
            } else {
                FlagEffect::writes(FlagClass::Shift)
            }
        }
        Inst::Jcc { .. } | Inst::Setcc { .. } => FlagEffect::READS,
        Inst::Push(_)
        | Inst::Pop(_)
        | Inst::MovRR { .. }
        | Inst::MovRI { .. }
        | Inst::MovRSym { .. }
        | Inst::Load { .. }
        | Inst::Store { .. }
        | Inst::Lea { .. }
        | Inst::Movzx8 { .. }
        | Inst::Jmp { .. }
        | Inst::JmpInd { .. }
        | Inst::Call { .. }
        | Inst::CallInd { .. }
        | Inst::Ret
        | Inst::RepzRet
        | Inst::Nop { .. }
        | Inst::Ud2
        | Inst::Syscall => FlagEffect::NONE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, Reg, ShiftOp, Target};

    #[test]
    fn classes_match_formulas() {
        let cmp = Inst::AluI {
            op: AluOp::Cmp,
            dst: Reg::Rax,
            imm: 4,
        };
        assert_eq!(flag_effect(&cmp).writes, Some(FlagClass::Sub));
        assert!(!flag_effect(&cmp).reads);
        let test = Inst::Test {
            a: Reg::Rax,
            b: Reg::Rax,
        };
        assert_eq!(flag_effect(&test).writes, Some(FlagClass::Logic));
        let imul = Inst::Imul {
            dst: Reg::Rax,
            src: Reg::Rbx,
        };
        assert_eq!(flag_effect(&imul).writes, Some(FlagClass::Imul));
    }

    #[test]
    fn zero_masked_count_shift_is_not_a_writer() {
        for amount in [0u8, 64] {
            let s = Inst::Shift {
                op: ShiftOp::Shl,
                dst: Reg::Rax,
                amount,
            };
            assert_eq!(flag_effect(&s).writes, None);
        }
        let s = Inst::Shift {
            op: ShiftOp::Sar,
            dst: Reg::Rax,
            amount: 3,
        };
        assert_eq!(flag_effect(&s).writes, Some(FlagClass::Shift));
    }

    #[test]
    fn no_instruction_reads_and_writes() {
        let readers = [
            Inst::Jcc {
                cond: Cond::E,
                target: Target::Addr(0),
                width: Default::default(),
            },
            Inst::Setcc {
                cond: Cond::Ne,
                dst: Reg::Rcx,
            },
        ];
        for r in readers {
            let e = flag_effect(&r);
            assert!(e.reads && e.writes.is_none());
        }
    }
}
