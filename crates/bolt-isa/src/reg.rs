//! General-purpose register model for the x86-64 subset.

use std::fmt;

/// A 64-bit general-purpose register.
///
/// The discriminant is the hardware register number used in ModRM/SIB/REX
/// encodings (`rax` = 0 ... `r15` = 15).
///
/// # Examples
///
/// ```
/// use bolt_isa::Reg;
/// assert_eq!(Reg::Rsp.num(), 4);
/// assert_eq!(Reg::from_num(12), Some(Reg::R12));
/// assert!(Reg::R9.needs_rex_ext());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    /// All sixteen registers in encoding order.
    pub const ALL: [Reg; 16] = [
        Reg::Rax,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rbx,
        Reg::Rsp,
        Reg::Rbp,
        Reg::Rsi,
        Reg::Rdi,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// The System V AMD64 argument registers, in order.
    pub const ARGS: [Reg; 6] = [Reg::Rdi, Reg::Rsi, Reg::Rdx, Reg::Rcx, Reg::R8, Reg::R9];

    /// Callee-saved registers under the System V AMD64 ABI.
    pub const CALLEE_SAVED: [Reg; 6] = [Reg::Rbx, Reg::Rbp, Reg::R12, Reg::R13, Reg::R14, Reg::R15];

    /// Caller-saved (volatile) registers under the System V AMD64 ABI,
    /// excluding the stack pointer.
    pub const CALLER_SAVED: [Reg; 9] = [
        Reg::Rax,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rsi,
        Reg::Rdi,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
    ];

    /// The 4-bit hardware register number.
    #[inline]
    pub fn num(self) -> u8 {
        self as u8
    }

    /// The low 3 bits used in ModRM/SIB fields.
    #[inline]
    pub fn low3(self) -> u8 {
        self as u8 & 0x7
    }

    /// Whether the register requires a REX extension bit (`r8`..`r15`).
    #[inline]
    pub fn needs_rex_ext(self) -> bool {
        self as u8 >= 8
    }

    /// Reconstructs a register from its 4-bit hardware number.
    pub fn from_num(n: u8) -> Option<Reg> {
        Reg::ALL.get(n as usize).copied()
    }

    /// The AT&T-style name of the full 64-bit register, without the `%` sigil.
    pub fn name(self) -> &'static str {
        match self {
            Reg::Rax => "rax",
            Reg::Rcx => "rcx",
            Reg::Rdx => "rdx",
            Reg::Rbx => "rbx",
            Reg::Rsp => "rsp",
            Reg::Rbp => "rbp",
            Reg::Rsi => "rsi",
            Reg::Rdi => "rdi",
            Reg::R8 => "r8",
            Reg::R9 => "r9",
            Reg::R10 => "r10",
            Reg::R11 => "r11",
            Reg::R12 => "r12",
            Reg::R13 => "r13",
            Reg::R14 => "r14",
            Reg::R15 => "r15",
        }
    }

    /// The AT&T-style name of the low byte of the register (`al`, `r8b`, ...).
    pub fn name8(self) -> &'static str {
        match self {
            Reg::Rax => "al",
            Reg::Rcx => "cl",
            Reg::Rdx => "dl",
            Reg::Rbx => "bl",
            Reg::Rsp => "spl",
            Reg::Rbp => "bpl",
            Reg::Rsi => "sil",
            Reg::Rdi => "dil",
            Reg::R8 => "r8b",
            Reg::R9 => "r9b",
            Reg::R10 => "r10b",
            Reg::R11 => "r11b",
            Reg::R12 => "r12b",
            Reg::R13 => "r13b",
            Reg::R14 => "r14b",
            Reg::R15 => "r15b",
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbering_round_trips() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_num(r.num()), Some(r));
        }
        assert_eq!(Reg::from_num(16), None);
    }

    #[test]
    fn rex_extension_split() {
        assert!(!Reg::Rdi.needs_rex_ext());
        assert!(Reg::R8.needs_rex_ext());
        assert_eq!(Reg::R13.low3(), Reg::Rbp.low3());
    }

    #[test]
    fn display_uses_att_sigil() {
        assert_eq!(Reg::Rax.to_string(), "%rax");
        assert_eq!(Reg::R15.to_string(), "%r15");
    }

    #[test]
    fn abi_sets_are_disjoint_where_expected() {
        for r in Reg::CALLEE_SAVED {
            assert!(
                !Reg::CALLER_SAVED.contains(&r),
                "{r} is both callee- and caller-saved"
            );
        }
        // All ABI argument registers are caller-saved.
        for r in Reg::ARGS {
            assert!(Reg::CALLER_SAVED.contains(&r));
        }
    }
}
