//! Shared building blocks for the synthetic workload generators.

use bolt_compiler::{
    BinOp, CmpOp, FunctionBuilder, LocalId, MirBlockId, Operand, Rvalue, ShiftKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload scale: `Test` keeps emulated runs in the low millions of
/// instructions (fast `cargo test`), `Bench` produces the larger binaries
/// and longer traces the experiments use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Test,
    Bench,
}

impl Scale {
    /// Multiplies a function-count knob.
    pub fn funcs(self, test: usize, bench: usize) -> usize {
        match self {
            Scale::Test => test,
            Scale::Bench => bench,
        }
    }

    /// Multiplies an iteration-count knob.
    pub fn iters(self, test: i64, bench: i64) -> i64 {
        match self {
            Scale::Test => test,
            Scale::Bench => bench,
        }
    }
}

/// A deterministic RNG for generator decisions.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Appends an LCG step: `x = x * A + C` (keeps values well mixed without
/// division).
pub fn lcg_step(f: &mut FunctionBuilder, x: LocalId) -> LocalId {
    let m = f.assign(Rvalue::BinOp(
        BinOp::Mul,
        Operand::Local(x),
        Operand::Const(6364136223846793005),
    ));
    f.assign(Rvalue::BinOp(
        BinOp::Add,
        Operand::Local(m),
        Operand::Const(1442695040888963407),
    ))
}

/// Appends a xorshift mix of `x` and returns the mixed local.
pub fn xorshift_mix(f: &mut FunctionBuilder, x: LocalId) -> LocalId {
    let s1 = f.assign(Rvalue::Shift(ShiftKind::Shr, Operand::Local(x), 33));
    let x1 = f.assign(Rvalue::BinOp(
        BinOp::Xor,
        Operand::Local(x),
        Operand::Local(s1),
    ));
    let s2 = f.assign(Rvalue::Shift(ShiftKind::Shl, Operand::Local(x1), 13));
    f.assign(Rvalue::BinOp(
        BinOp::Xor,
        Operand::Local(x1),
        Operand::Local(s2),
    ))
}

/// Appends a *cold guard* in the pessimal source order: the cold arm comes
/// first (so the baseline compiler lays it on the fall-through path) and
/// the hot arm second. Control continues in the returned hot block; the
/// cold block emits a sentinel and returns `sentinel`.
///
/// `cond_local` must hold 0 on the hot path (guard not triggered).
pub fn cold_guard(f: &mut FunctionBuilder, cond_local: LocalId, sentinel: i64) -> MirBlockId {
    let (cold, hot) = f.branch(Operand::Local(cond_local));
    f.switch_to(cold);
    f.emit(Operand::Const(sentinel));
    f.ret(Operand::Const(sentinel));
    f.switch_to(hot);
    hot
}

/// Generates a "never triggers" guard condition: `x < i64::MIN/2`.
pub fn impossible_guard(f: &mut FunctionBuilder, x: LocalId) -> LocalId {
    f.assign_cmp(CmpOp::Lt, Operand::Local(x), Operand::Const(i64::MIN / 2))
}

/// Builds a cold utility function that is never called at run time but
/// occupies address space between hot functions (the layout pollution
/// HFSort cleans up). Body size varies with `bulk`; constants are salted
/// with the function name so distinct utilities do not accidentally fold
/// under ICF (real cold code is near-duplicate, not identical).
pub fn cold_utility(
    name: &str,
    module: u32,
    file: &str,
    bulk: usize,
) -> bolt_compiler::MirFunction {
    let salt: i64 = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    }) as i64;
    let mut f = FunctionBuilder::new(name, module, file, 1);
    let mut x = 0;
    for k in 0..bulk.max(1) {
        let rot = f.assign(Rvalue::Shift(
            ShiftKind::Shl,
            Operand::Local(if k == 0 { 0 } else { x }),
            (k % 13 + 1) as u8,
        ));
        x = f.assign(Rvalue::BinOp(
            BinOp::Xor,
            Operand::Local(rot),
            Operand::Const((k as i64).wrapping_mul(2654435761).wrapping_add(salt)),
        ));
    }
    f.ret(Operand::Local(x));
    f.finish()
}

/// Generates skewed "bytecode"/input data: values in `0..n_symbols` where
/// a handful of symbols dominate (hot handlers), the tail is cold.
pub fn skewed_symbols(r: &mut StdRng, len: usize, n_symbols: usize) -> Vec<i64> {
    (0..len)
        .map(|_| {
            // ~80% of the stream from the first quarter of symbols.
            if r.gen_range(0..10) < 8 {
                r.gen_range(0..(n_symbols / 4).max(1)) as i64
            } else {
                r.gen_range(0..n_symbols) as i64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_compiler::{Interp, MirProgram};

    #[test]
    fn cold_guard_shape() {
        let mut p = MirProgram::with_entry("f");
        let mut f = FunctionBuilder::new("f", 0, "f.c", 1);
        let g = impossible_guard(&mut f, 0);
        cold_guard(&mut f, g, -99);
        f.ret(Operand::Const(7));
        p.add_function(f.finish());
        p.validate().unwrap();
        let mut i = Interp::new(&p, 1000);
        assert_eq!(i.run(&[5]).unwrap(), 7, "hot path taken");
        assert!(i.output.is_empty(), "cold sentinel never emitted");
    }

    #[test]
    fn skew_is_skewed() {
        let mut r = rng(42);
        let syms = skewed_symbols(&mut r, 10_000, 32);
        let hot = syms.iter().filter(|&&s| s < 8).count();
        assert!(hot > 7_000, "hot quarter dominates: {hot}");
        assert!(syms.iter().all(|&s| (0..32).contains(&s)));
    }

    #[test]
    fn cold_utility_is_valid() {
        let mut p = MirProgram::with_entry("u");
        p.add_function(cold_utility("u", 0, "u.c", 10));
        p.validate().unwrap();
    }
}
