//! The `interp` workload: a dispatch-*dominated* bytecode VM, built to
//! be hostile to block chaining — the class of code the uop execution
//! tier targets.
//!
//! Unlike the `hhvm` workload (whose handlers do real per-opcode work
//! between dispatches), almost every retired instruction here sits on a
//! dispatch path: a jump-table `switch` over a skewed opcode stream
//! (`vm_step`), immediately followed by a function-pointer dispatch to
//! the same handler set (`vm_indirect`). Both sites resolve a *different*
//! target nearly every execution, so the superblock engine's two-slot
//! chain links thrash and every transition falls back to the entry-index
//! lookup — while the uop tier still wins on the dispatch blocks
//! themselves (pre-resolved operands, no wide `Inst` match, lazy flags
//! across the dense compare ladders).

use crate::common::{rng, skewed_symbols, Scale};
use bolt_compiler::{
    BinOp, CmpOp, FunctionBuilder, Global, MirProgram, Operand, Rvalue, ShiftKind,
};
use rand::Rng;

/// Builds the workload program.
pub fn build(scale: Scale, seed: u64) -> MirProgram {
    let n_ops = scale.funcs(20, 64);
    let bytecode_len = 1024usize;
    let iterations = scale.iters(20_000, 250_000);
    let mut r = rng(seed);

    let mut p = MirProgram::with_entry("main");
    p.globals.push(Global {
        name: "bytecode".into(),
        words: skewed_symbols(&mut r, bytecode_len, n_ops),
        mutable: false,
    });
    p.globals.push(Global {
        name: "consts".into(),
        words: (0..256).map(|_| r.gen_range(1..1 << 20)).collect(),
        mutable: false,
    });
    p.globals.push(Global {
        name: "stack".into(),
        words: vec![0; 64],
        mutable: true,
    });

    // op_<j>(pc, acc): deliberately tiny handlers — just enough ALU work
    // to observably mix the accumulator — so dispatch, not handler
    // bodies, dominates the retired-instruction mix.
    for j in 0..n_ops {
        let mut f = FunctionBuilder::new(&format!("op_{j}"), 2, "ops.cpp", 1);
        let idx = f.assign(Rvalue::BinOp(
            BinOp::And,
            Operand::Local(0),
            Operand::Const(255),
        ));
        let c = f.assign(Rvalue::LoadGlobal {
            global: "consts".into(),
            index: Operand::Local(idx),
        });
        let x = f.assign(Rvalue::BinOp(
            BinOp::Xor,
            Operand::Local(1),
            Operand::Local(c),
        ));
        let s = f.assign(Rvalue::Shift(
            ShiftKind::Shr,
            Operand::Local(x),
            (j % 13 + 1) as u8,
        ));
        let out = f.assign(Rvalue::BinOp(
            BinOp::Add,
            Operand::Local(x),
            Operand::Local(s),
        ));
        f.ret(Operand::Local(out));
        p.add_function(f.finish());
    }

    // vm_step(pc, acc): jump-table dispatch straight to handler calls —
    // a dense compare/branch ladder whose target changes with every
    // opcode fetched.
    let mut f = FunctionBuilder::new("vm_step", 2, "vm.cpp", 2);
    let pcm = f.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(0),
        Operand::Const(bytecode_len as i64 - 1),
    ));
    let op = f.assign(Rvalue::LoadGlobal {
        global: "bytecode".into(),
        index: Operand::Local(pcm),
    });
    let arms = f.switch(Operand::Local(op), n_ops);
    for (j, arm) in arms.targets.clone().iter().enumerate() {
        f.switch_to(*arm);
        let ret = f.call(
            &format!("op_{j}"),
            vec![Operand::Local(0), Operand::Local(1)],
        );
        f.ret(Operand::Local(ret));
    }
    f.switch_to(arms.default);
    f.ret(Operand::Local(1));
    p.add_function(f.finish());

    // vm_indirect(pc, acc): the same handler set reached through a
    // function pointer — the dispatch site's indirect call retargets on
    // nearly every execution, which is exactly the pattern two-slot
    // chain links cannot hold.
    let mut f = FunctionBuilder::new("vm_indirect", 2, "vm.cpp", 3);
    let bumped = f.assign(Rvalue::BinOp(
        BinOp::Add,
        Operand::Local(0),
        Operand::Const(1),
    ));
    let pcm = f.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(bumped),
        Operand::Const(bytecode_len as i64 - 1),
    ));
    let op = f.assign(Rvalue::LoadGlobal {
        global: "bytecode".into(),
        index: Operand::Local(pcm),
    });
    let ptr = f.new_local();
    let join = f.new_block();
    let arms = f.switch(Operand::Local(op), n_ops);
    for (j, arm) in arms.targets.clone().iter().enumerate() {
        f.switch_to(*arm);
        f.assign_to(ptr, Rvalue::FuncAddr(format!("op_{j}")));
        f.goto(join);
    }
    f.switch_to(arms.default);
    f.assign_to(ptr, Rvalue::FuncAddr("op_0".into()));
    f.goto(join);
    f.switch_to(join);
    let out = f.call_indirect(
        Operand::Local(ptr),
        vec![Operand::Local(0), Operand::Local(1)],
    );
    f.ret(Operand::Local(out));
    p.add_function(f.finish());

    // main: the VM loop — two dispatches per iteration, a stack spill,
    // and a bounded accumulator emitted at the end.
    let mut m = FunctionBuilder::new("main", 3, "main.cpp", 0);
    let acc = m.new_local();
    let i = m.new_local();
    m.assign_to(acc, Rvalue::Use(Operand::Const(1)));
    m.assign_to(i, Rvalue::Use(Operand::Const(0)));
    let head = m.goto_new();
    m.switch_to(head);
    let c = m.assign_cmp(CmpOp::Lt, Operand::Local(i), Operand::Const(iterations));
    let (body, done) = m.branch(Operand::Local(c));
    m.switch_to(body);
    let stepped = m.call("vm_step", vec![Operand::Local(i), Operand::Local(acc)]);
    let routed = m.call(
        "vm_indirect",
        vec![Operand::Local(i), Operand::Local(stepped)],
    );
    m.assign_to(
        acc,
        Rvalue::BinOp(BinOp::Add, Operand::Local(stepped), Operand::Local(routed)),
    );
    m.assign_to(
        acc,
        Rvalue::BinOp(BinOp::And, Operand::Local(acc), Operand::Const(0xFFFF_FFFF)),
    );
    let slot = m.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(i),
        Operand::Const(63),
    ));
    m.push_stmt(bolt_compiler::Stmt::StoreGlobal {
        global: "stack".into(),
        index: Operand::Local(slot),
        value: Operand::Local(acc),
        line: 0,
    });
    m.assign_to(
        i,
        Rvalue::BinOp(BinOp::Add, Operand::Local(i), Operand::Const(1)),
    );
    m.goto(head);
    m.switch_to(done);
    m.emit(Operand::Local(acc));
    let code = m.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(acc),
        Operand::Const(0x3F),
    ));
    m.ret(Operand::Local(code));
    p.add_function(m.finish());

    p.validate().expect("generated program is valid");
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_compiler::Interp;

    #[test]
    fn builds_and_interprets() {
        let p = build(Scale::Test, 7);
        let mut i = Interp::new(&p, 200_000_000);
        let code = i.run(&[]).unwrap();
        assert_eq!(i.output.len(), 1);
        assert_eq!(code, i.output[0] & 0x3F);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(build(Scale::Test, 7), build(Scale::Test, 7));
        assert_ne!(build(Scale::Test, 7), build(Scale::Test, 8));
    }
}
