//! The `clang`/`gcc`-like workloads: a multi-module "compiler" with a
//! lexer, a recursive-descent parser, semantic checks full of cold error
//! paths, and a code generator — deep call graphs, many medium functions,
//! inline-hinted helpers (so compiler PGO/LTO have real work), and the
//! paper's Figure 2 pattern: a small hinted function called from callers
//! with *opposite* branch bias, so the AutoFDO-style aggregated profile
//! cannot lay out both inlined copies well but BOLT can.

use crate::common::{cold_guard, cold_utility, impossible_guard, rng, skewed_symbols, Scale};
use bolt_compiler::{
    BinOp, CmpOp, FunctionBuilder, Global, MirProgram, Operand, Rvalue, ShiftKind,
};
use rand::Rng;

/// Shape parameters distinguishing the clang-like and gcc-like variants.
#[derive(Debug, Clone, Copy)]
pub struct CompilerShape {
    pub seed: u64,
    pub n_checks: usize,
    pub n_emitters: usize,
    pub n_interned: usize,
    pub parse_depth: i64,
}

/// The clang-like shape.
pub fn clang_shape(scale: Scale) -> CompilerShape {
    CompilerShape {
        seed: 0xC1A6,
        n_checks: scale.funcs(10, 40),
        n_emitters: scale.funcs(8, 32),
        n_interned: 12,
        parse_depth: 4,
    }
}

/// The gcc-like shape: more, smaller functions and shallower recursion.
pub fn gcc_shape(scale: Scale) -> CompilerShape {
    CompilerShape {
        seed: 0x6CC,
        n_checks: scale.funcs(14, 56),
        n_emitters: scale.funcs(10, 40),
        n_interned: 8,
        parse_depth: 3,
    }
}

/// Builds the compiler-like workload.
pub fn build(scale: Scale, shape: CompilerShape) -> MirProgram {
    let src_len = 4096usize;
    let iterations = scale.iters(20_000, 250_000);
    let mut r = rng(shape.seed);

    let mut p = MirProgram::with_entry("main");
    p.globals.push(Global {
        name: "src".into(),
        words: skewed_symbols(&mut r, src_len, 16),
        mutable: false,
    });
    p.globals.push(Global {
        name: "strtab".into(),
        words: (0..256).map(|_| r.gen_range(0..1 << 24)).collect(),
        mutable: false,
    });
    p.globals.push(Global {
        name: "units".into(),
        words: vec![0; 32],
        mutable: true,
    });
    // The iteration bound lives in mutable data so experiments can vary
    // the "input size" (paper's input1/2/3) by patching one word.
    p.globals.push(Global {
        name: "config".into(),
        words: vec![iterations],
        mutable: true,
    });

    // --- utils module (4): inline-hinted helpers ---
    for (name, op) in [("u_mix", 0u8), ("u_fold", 1), ("u_rot", 2), ("u_clip", 3)] {
        let mut f = FunctionBuilder::new(name, 4, "utils.h", 1);
        f.inline_hint();
        let out = match op {
            0 => {
                let m = f.assign(Rvalue::BinOp(
                    BinOp::Mul,
                    Operand::Local(0),
                    Operand::Const(0x9E3779B1),
                ));
                f.assign(Rvalue::Shift(ShiftKind::Shr, Operand::Local(m), 15))
            }
            1 => {
                let s = f.assign(Rvalue::Shift(ShiftKind::Shr, Operand::Local(0), 7));
                f.assign(Rvalue::BinOp(
                    BinOp::Xor,
                    Operand::Local(0),
                    Operand::Local(s),
                ))
            }
            2 => {
                let l = f.assign(Rvalue::Shift(ShiftKind::Shl, Operand::Local(0), 3));
                let h = f.assign(Rvalue::Shift(ShiftKind::Shr, Operand::Local(0), 61));
                f.assign(Rvalue::BinOp(
                    BinOp::Or,
                    Operand::Local(l),
                    Operand::Local(h),
                ))
            }
            _ => f.assign(Rvalue::BinOp(
                BinOp::And,
                Operand::Local(0),
                Operand::Const(0xFF_FFFF),
            )),
        };
        f.ret(Operand::Local(out));
        p.add_function(f.finish());
    }

    // Figure 2 pattern: biased_helper, hinted, branch on sign.
    {
        let mut f = FunctionBuilder::new("biased_helper", 4, "utils.h", 1);
        f.inline_hint();
        let c = f.assign_cmp(CmpOp::Gt, Operand::Local(0), Operand::Const(0));
        let (pos, neg) = f.branch(Operand::Local(c));
        f.switch_to(pos);
        f.ret(Operand::Const(1));
        f.switch_to(neg);
        f.ret(Operand::Const(2));
        p.add_function(f.finish());
    }

    // --- lexer module (0) ---
    {
        let mut f = FunctionBuilder::new("lex_token", 0, "lexer.cpp", 1);
        let im = f.assign(Rvalue::BinOp(
            BinOp::And,
            Operand::Local(0),
            Operand::Const(src_len as i64 - 1),
        ));
        let ch = f.assign(Rvalue::LoadGlobal {
            global: "src".into(),
            index: Operand::Local(im),
        });
        let arms = f.switch(Operand::Local(ch), 16);
        for (k, arm) in arms.targets.clone().iter().enumerate() {
            f.switch_to(*arm);
            let t = f.assign(Rvalue::BinOp(
                BinOp::Add,
                Operand::Local(ch),
                Operand::Const((k * 7) as i64),
            ));
            let m = f.call("u_mix", vec![Operand::Local(t)]);
            f.ret(Operand::Local(m));
        }
        f.switch_to(arms.default);
        f.ret(Operand::Const(0));
        p.add_function(f.finish());
    }

    // --- parser module (1): bounded recursion ---
    {
        // parse_expr(tok, depth) -> calls parse_term; parse_term calls
        // parse_factor; parse_factor recurses into parse_expr with
        // depth-1, hot leaf at depth 0.
        let mut f = FunctionBuilder::new("parse_factor", 1, "parser.cpp", 2);
        let leaf = f.assign_cmp(CmpOp::Le, Operand::Local(1), Operand::Const(0));
        let (leaf_bb, rec_bb) = f.branch(Operand::Local(leaf));
        f.switch_to(leaf_bb);
        let v = f.call("u_fold", vec![Operand::Local(0)]);
        f.ret(Operand::Local(v));
        f.switch_to(rec_bb);
        let d1 = f.assign(Rvalue::BinOp(
            BinOp::Sub,
            Operand::Local(1),
            Operand::Const(1),
        ));
        let sub = f.call("parse_expr", vec![Operand::Local(0), Operand::Local(d1)]);
        let m = f.assign(Rvalue::BinOp(
            BinOp::Add,
            Operand::Local(sub),
            Operand::Const(3),
        ));
        f.ret(Operand::Local(m));
        p.add_function(f.finish());

        let mut f = FunctionBuilder::new("parse_term", 1, "parser.cpp", 2);
        let a = f.call("parse_factor", vec![Operand::Local(0), Operand::Local(1)]);
        let rot = f.call("u_rot", vec![Operand::Local(a)]);
        f.ret(Operand::Local(rot));
        p.add_function(f.finish());

        let mut f = FunctionBuilder::new("parse_expr", 1, "parser.cpp", 2);
        let g = impossible_guard(&mut f, 0);
        cold_guard(&mut f, g, -4000);
        let t = f.call("parse_term", vec![Operand::Local(0), Operand::Local(1)]);
        // Binary-op continuation: hot for even tokens.
        let even = f.assign(Rvalue::BinOp(
            BinOp::And,
            Operand::Local(t),
            Operand::Const(1),
        ));
        let is_odd = f.assign_cmp(CmpOp::Eq, Operand::Local(even), Operand::Const(1));
        // Odd (cold-ish) first in source order.
        let (odd_bb, even_bb) = f.branch(Operand::Local(is_odd));
        f.switch_to(odd_bb);
        let v1 = f.assign(Rvalue::BinOp(
            BinOp::Add,
            Operand::Local(t),
            Operand::Const(11),
        ));
        f.ret(Operand::Local(v1));
        f.switch_to(even_bb);
        let v2 = f.assign(Rvalue::BinOp(
            BinOp::Xor,
            Operand::Local(t),
            Operand::Const(0x5A5A),
        ));
        f.ret(Operand::Local(v2));
        p.add_function(f.finish());
    }

    // --- sema module (2): checks with cold error paths + the Figure 2
    // callers (hot positive / cold negative) ---
    for k in 0..shape.n_checks {
        let mut f = FunctionBuilder::new(&format!("check_{k}"), 2, "sema.cpp", 1);
        let g = impossible_guard(&mut f, 0);
        cold_guard(&mut f, g, -5000 - k as i64);
        // Mostly-positive argument for even checks, mostly-negative for
        // odd ones: the two inlined copies of biased_helper get opposite
        // bias (Figure 2).
        let arg = if k % 2 == 0 {
            let a = f.assign(Rvalue::BinOp(
                BinOp::And,
                Operand::Local(0),
                Operand::Const(0xFFFF),
            ));
            f.assign(Rvalue::BinOp(
                BinOp::Add,
                Operand::Local(a),
                Operand::Const(1),
            ))
        } else {
            let a = f.assign(Rvalue::BinOp(
                BinOp::And,
                Operand::Local(0),
                Operand::Const(0xFFFF),
            ));
            let neg = f.assign(Rvalue::BinOp(
                BinOp::Sub,
                Operand::Const(0),
                Operand::Local(a),
            ));
            f.assign(Rvalue::BinOp(
                BinOp::Sub,
                Operand::Local(neg),
                Operand::Const(1),
            ))
        };
        let b = f.call("biased_helper", vec![Operand::Local(arg)]);
        let folded = f.call("u_clip", vec![Operand::Local(arg)]);
        let out = f.assign(Rvalue::BinOp(
            BinOp::Add,
            Operand::Local(b),
            Operand::Local(folded),
        ));
        f.ret(Operand::Local(out));
        p.add_function(f.finish());
        if k % 3 == 0 {
            p.add_function(cold_utility(
                &format!("diag_{k}"),
                2,
                "diagnostics.cpp",
                10 + k % 16,
            ));
        }
    }

    // --- interner: identical template instantiations (ICF fodder) ---
    for k in 0..shape.n_interned {
        let mut f = FunctionBuilder::new(&format!("intern_{k}"), 2, "intern.cpp", 1);
        let h = f.assign(Rvalue::BinOp(
            BinOp::Mul,
            Operand::Local(0),
            Operand::Const(0x100000001B3u64 as i64),
        ));
        let s = f.assign(Rvalue::Shift(ShiftKind::Shr, Operand::Local(h), 24));
        let idx = f.assign(Rvalue::BinOp(
            BinOp::And,
            Operand::Local(s),
            Operand::Const(255),
        ));
        let v = f.assign(Rvalue::LoadGlobal {
            global: "strtab".into(),
            index: Operand::Local(idx),
        });
        f.ret(Operand::Local(v));
        p.add_function(f.finish());
    }

    // --- codegen module (3) ---
    for k in 0..shape.n_emitters {
        let mut f = FunctionBuilder::new(&format!("emit_{k}"), 3, "codegen.cpp", 1);
        let a = f.call(
            &format!("intern_{}", k % shape.n_interned),
            vec![Operand::Local(0)],
        );
        let mixed = f.assign(Rvalue::BinOp(
            BinOp::Xor,
            Operand::Local(a),
            Operand::Const((k as i64 + 1) * 0x01000193),
        ));
        f.ret(Operand::Local(mixed));
        p.add_function(f.finish());
    }

    // compile_one(i): the per-input pipeline.
    let mut f = FunctionBuilder::new("compile_one", 5, "driver.cpp", 1);
    let tok = f.call("lex_token", vec![Operand::Local(0)]);
    let ast = f.call(
        "parse_expr",
        vec![Operand::Local(tok), Operand::Const(shape.parse_depth)],
    );
    let which_check = f.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(0),
        Operand::Const(shape.n_checks as i64 - 1),
    ));
    let arms = f.switch(Operand::Local(which_check), shape.n_checks);
    let checked = f.new_local();
    let join = f.new_block();
    for (k, arm) in arms.targets.clone().iter().enumerate() {
        f.switch_to(*arm);
        let c = f.call(&format!("check_{k}"), vec![Operand::Local(ast)]);
        f.assign_to(checked, Rvalue::Use(Operand::Local(c)));
        f.goto(join);
    }
    f.switch_to(arms.default);
    f.assign_to(checked, Rvalue::Use(Operand::Const(0)));
    f.goto(join);
    f.switch_to(join);
    let which_emit = f.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(checked),
        Operand::Const(shape.n_emitters as i64 - 1),
    ));
    let arms = f.switch(Operand::Local(which_emit), shape.n_emitters);
    let out = f.new_local();
    let join2 = f.new_block();
    for (k, arm) in arms.targets.clone().iter().enumerate() {
        f.switch_to(*arm);
        let e = f.call(&format!("emit_{k}"), vec![Operand::Local(checked)]);
        f.assign_to(out, Rvalue::Use(Operand::Local(e)));
        f.goto(join2);
    }
    f.switch_to(arms.default);
    f.assign_to(out, Rvalue::Use(Operand::Const(0)));
    f.goto(join2);
    f.switch_to(join2);
    f.ret(Operand::Local(out));
    p.add_function(f.finish());

    // main loop.
    let mut m = FunctionBuilder::new("main", 5, "main.cpp", 0);
    let acc = m.new_local();
    let i = m.new_local();
    m.assign_to(acc, Rvalue::Use(Operand::Const(0)));
    m.assign_to(i, Rvalue::Use(Operand::Const(0)));
    let bound = m.assign(Rvalue::LoadGlobal {
        global: "config".into(),
        index: Operand::Const(0),
    });
    let head = m.goto_new();
    m.switch_to(head);
    let c = m.assign_cmp(CmpOp::Lt, Operand::Local(i), Operand::Local(bound));
    let (body, done) = m.branch(Operand::Local(c));
    m.switch_to(body);
    let v = m.call("compile_one", vec![Operand::Local(i)]);
    m.assign_to(
        acc,
        Rvalue::BinOp(BinOp::Add, Operand::Local(acc), Operand::Local(v)),
    );
    m.assign_to(
        acc,
        Rvalue::BinOp(BinOp::And, Operand::Local(acc), Operand::Const(0xFFFF_FFFF)),
    );
    m.push_stmt(bolt_compiler::Stmt::StoreGlobal {
        global: "units".into(),
        index: Operand::Const(0),
        value: Operand::Local(acc),
        line: 0,
    });
    m.assign_to(
        i,
        Rvalue::BinOp(BinOp::Add, Operand::Local(i), Operand::Const(1)),
    );
    m.goto(head);
    m.switch_to(done);
    m.emit(Operand::Local(acc));
    let code = m.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(acc),
        Operand::Const(0x3F),
    ));
    m.ret(Operand::Local(code));
    p.add_function(m.finish());

    p.validate().expect("compiler-like program valid");
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_compiler::Interp;

    #[test]
    fn clang_like_builds_and_runs() {
        let p = build(Scale::Test, clang_shape(Scale::Test));
        let mut i = Interp::new(&p, 1_000_000_000);
        i.run(&[]).unwrap();
        assert_eq!(i.output.len(), 1);
    }

    #[test]
    fn gcc_like_differs_from_clang_like() {
        let c = build(Scale::Test, clang_shape(Scale::Test));
        let g = build(Scale::Test, gcc_shape(Scale::Test));
        assert_ne!(c, g);
    }

    #[test]
    fn figure2_callers_have_opposite_bias() {
        // check_0 passes positive arguments, check_1 negative: after the
        // compiler inlines biased_helper into both, the aggregated branch
        // profile is mixed (the Figure 2 precision loss).
        let p = build(Scale::Test, clang_shape(Scale::Test));
        let mut i0 = Interp::new(&p, 10_000_000);
        let r0 = i0.call_function("check_0", &[12345]).unwrap();
        let mut i1 = Interp::new(&p, 10_000_000);
        let r1 = i1.call_function("check_1", &[12345]).unwrap();
        // biased_helper returns 1 on positive, 2 on negative.
        assert!(r0 % 4 != r1 % 4, "different arms taken: {r0} vs {r1}");
    }
}
