//! The `tao`-like (in-memory cache service), `proxygen`-like (state-machine
//! protocol parser), and `multifeed`-like (feed ranking) workloads
//! (paper section 6.1).

use crate::common::{cold_guard, cold_utility, impossible_guard, rng, skewed_symbols, Scale};
use bolt_compiler::{
    BinOp, CmpOp, FunctionBuilder, Global, MirProgram, Operand, Rvalue, ShiftKind,
};
use rand::Rng;

/// `tao`-like: hash-lookup request service with hot hit paths, cold miss
/// and error paths, and a shard-dispatch switch.
pub fn build_tao(scale: Scale, seed: u64) -> MirProgram {
    let n_shards = scale.funcs(8, 32);
    let table_len = 512usize;
    let iterations = scale.iters(40_000, 500_000);
    let mut r = rng(seed);

    let mut p = MirProgram::with_entry("main");
    p.globals.push(Global {
        name: "keys".into(),
        words: (0..table_len).map(|i| (i as i64) * 2 + 1).collect(),
        mutable: false,
    });
    p.globals.push(Global {
        name: "values".into(),
        words: (0..table_len).map(|_| r.gen_range(0..1 << 30)).collect(),
        mutable: false,
    });
    p.globals.push(Global {
        name: "stats".into(),
        words: vec![0; 8],
        mutable: true,
    });

    // hash(x): multiply-shift.
    let mut f = FunctionBuilder::new("hash_key", 0, "hash.cpp", 1);
    let m = f.assign(Rvalue::BinOp(
        BinOp::Mul,
        Operand::Local(0),
        Operand::Const(0x9E3779B97F4A7C15u64 as i64),
    ));
    let s = f.assign(Rvalue::Shift(ShiftKind::Shr, Operand::Local(m), 17));
    f.ret(Operand::Local(s));
    p.add_function(f.finish());

    // Per-shard lookup: probe two slots; hit is hot, miss cold. Cold arm
    // first in source order (pessimal).
    for sh in 0..n_shards {
        let mut f = FunctionBuilder::new(&format!("shard_lookup_{sh}"), 1, "shard.cpp", 1);
        let g = impossible_guard(&mut f, 0);
        cold_guard(&mut f, g, -2000 - sh as i64);
        let h = f.call("hash_key", vec![Operand::Local(0)]);
        let idx = f.assign(Rvalue::BinOp(
            BinOp::And,
            Operand::Local(h),
            Operand::Const(table_len as i64 - 1),
        ));
        let key = f.assign(Rvalue::LoadGlobal {
            global: "keys".into(),
            index: Operand::Local(idx),
        });
        let wanted = f.assign(Rvalue::BinOp(
            BinOp::Or,
            Operand::Local(0),
            Operand::Const(1),
        ));
        // Compare against a key derived from the request; misses happen
        // for a minority of requests.
        let masked = f.assign(Rvalue::BinOp(
            BinOp::And,
            Operand::Local(wanted),
            Operand::Const(table_len as i64 * 2 - 1),
        ));
        let hit = f.assign_cmp(CmpOp::Eq, Operand::Local(key), Operand::Local(masked));
        // Miss (cold-ish) first in source order.
        let (miss, hit_bb) = {
            let (t, e) = f.branch(Operand::Local(hit));
            (e, t)
        };
        // note: `hit == 1` goes to `t` = hit_bb; miss block laid first by
        // swapping roles below.
        f.switch_to(miss);
        let fallback = f.assign(Rvalue::BinOp(
            BinOp::Xor,
            Operand::Local(h),
            Operand::Const(0x5bd1e995),
        ));
        f.ret(Operand::Local(fallback));
        f.switch_to(hit_bb);
        let v = f.assign(Rvalue::LoadGlobal {
            global: "values".into(),
            index: Operand::Local(idx),
        });
        f.ret(Operand::Local(v));
        p.add_function(f.finish());
        p.add_function(cold_utility(
            &format!("tao_cold_{sh}"),
            1,
            "cold.cpp",
            6 + sh % 12,
        ));
    }

    // handle_request(i): shard dispatch by key bits.
    let mut f = FunctionBuilder::new("handle_request", 2, "server.cpp", 1);
    let shard = f.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(0),
        Operand::Const(n_shards as i64 - 1),
    ));
    let arms = f.switch(Operand::Local(shard), n_shards);
    for (sh, arm) in arms.targets.clone().iter().enumerate() {
        f.switch_to(*arm);
        let v = f.call(&format!("shard_lookup_{sh}"), vec![Operand::Local(0)]);
        f.ret(Operand::Local(v));
    }
    f.switch_to(arms.default);
    f.ret(Operand::Const(0));
    p.add_function(f.finish());

    build_service_main(&mut p, "handle_request", iterations);
    p.validate().expect("tao program valid");
    p
}

/// `proxygen`-like: a protocol state machine over a byte stream.
pub fn build_proxygen(scale: Scale, seed: u64) -> MirProgram {
    let n_states = scale.funcs(10, 24);
    let input_len = 2048usize;
    let iterations = scale.iters(50_000, 600_000);
    let mut r = rng(seed);

    let mut p = MirProgram::with_entry("main");
    p.globals.push(Global {
        name: "input".into(),
        words: skewed_symbols(&mut r, input_len, 8),
        mutable: false,
    });
    p.globals.push(Global {
        name: "sessions".into(),
        words: vec![0; 16],
        mutable: true,
    });

    // Per-state transition functions: branchy chains over the character
    // class, with cold error arms first.
    for st in 0..n_states {
        let mut f = FunctionBuilder::new(&format!("state_{st}"), 0, "parser.cpp", 1);
        // param 0 = char class (0..8); return next state.
        let g = impossible_guard(&mut f, 0);
        cold_guard(&mut f, g, -3000 - st as i64);
        // Chain: if ch == st%8 -> advance; elif ch == (st+1)%8 -> hot next;
        // else -> stay.
        let want = (st % 8) as i64;
        let c1 = f.assign_cmp(CmpOp::Eq, Operand::Local(0), Operand::Const(want));
        let (adv, rest) = f.branch(Operand::Local(c1));
        f.switch_to(adv);
        f.ret(Operand::Const(((st + 1) % n_states) as i64));
        f.switch_to(rest);
        let c2 = f.assign_cmp(CmpOp::Eq, Operand::Local(0), Operand::Const((want + 1) % 8));
        let (skip, stay) = f.branch(Operand::Local(c2));
        f.switch_to(skip);
        f.ret(Operand::Const(((st + 2) % n_states) as i64));
        f.switch_to(stay);
        f.ret(Operand::Const(st as i64));
        p.add_function(f.finish());
        if st % 2 == 0 {
            p.add_function(cold_utility(
                &format!("pxy_cold_{st}"),
                0,
                "cold.cpp",
                5 + st % 9,
            ));
        }
    }

    // step(state, i): read input, dispatch on state.
    let mut f = FunctionBuilder::new("parse_step", 1, "driver.cpp", 2);
    let im = f.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(1),
        Operand::Const(input_len as i64 - 1),
    ));
    let ch = f.assign(Rvalue::LoadGlobal {
        global: "input".into(),
        index: Operand::Local(im),
    });
    let arms = f.switch(Operand::Local(0), n_states);
    for (st, arm) in arms.targets.clone().iter().enumerate() {
        f.switch_to(*arm);
        let next = f.call(&format!("state_{st}"), vec![Operand::Local(ch)]);
        f.ret(Operand::Local(next));
    }
    f.switch_to(arms.default);
    f.ret(Operand::Const(0));
    p.add_function(f.finish());

    // main: fold the state machine over the input.
    let mut m = FunctionBuilder::new("main", 2, "main.cpp", 0);
    let state = m.new_local();
    let i = m.new_local();
    let acc = m.new_local();
    m.assign_to(state, Rvalue::Use(Operand::Const(0)));
    m.assign_to(i, Rvalue::Use(Operand::Const(0)));
    m.assign_to(acc, Rvalue::Use(Operand::Const(0)));
    let head = m.goto_new();
    m.switch_to(head);
    let c = m.assign_cmp(CmpOp::Lt, Operand::Local(i), Operand::Const(iterations));
    let (body, done) = m.branch(Operand::Local(c));
    m.switch_to(body);
    let next = m.call("parse_step", vec![Operand::Local(state), Operand::Local(i)]);
    m.assign_to(state, Rvalue::Use(Operand::Local(next)));
    m.assign_to(
        acc,
        Rvalue::BinOp(BinOp::Add, Operand::Local(acc), Operand::Local(state)),
    );
    m.assign_to(
        i,
        Rvalue::BinOp(BinOp::Add, Operand::Local(i), Operand::Const(1)),
    );
    m.goto(head);
    m.switch_to(done);
    m.emit(Operand::Local(acc));
    let code = m.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(acc),
        Operand::Const(0x3F),
    ));
    m.ret(Operand::Local(code));
    p.add_function(m.finish());
    p.validate().expect("proxygen program valid");
    p
}

/// `multifeed`-like: feature-scoring and ranking loops. Two variants
/// differ in weights, story count, and seed.
pub fn build_multifeed(scale: Scale, seed: u64, variant: u8) -> MirProgram {
    let n_scorers = scale.funcs(6, 20);
    let stories = 256usize;
    let iterations = scale.iters(30_000, 350_000);
    let mut r = rng(seed ^ (variant as u64) << 32);

    let mut p = MirProgram::with_entry("main");
    p.globals.push(Global {
        name: "features".into(),
        words: (0..stories * 8).map(|_| r.gen_range(-100..100)).collect(),
        mutable: false,
    });
    p.globals.push(Global {
        name: "ranked".into(),
        words: vec![0; 8],
        mutable: true,
    });

    // Scorers: weighted sums over 8 features, unrolled.
    for sc in 0..n_scorers {
        let mut f = FunctionBuilder::new(&format!("score_{sc}"), 0, "scorer.cpp", 1);
        let base = f.assign(Rvalue::BinOp(
            BinOp::And,
            Operand::Local(0),
            Operand::Const(stories as i64 - 1),
        ));
        let off = f.assign(Rvalue::Shift(ShiftKind::Shl, Operand::Local(base), 3));
        let mut total = f.assign(Rvalue::Use(Operand::Const(0)));
        for feat in 0..8 {
            let idx = f.assign(Rvalue::BinOp(
                BinOp::Add,
                Operand::Local(off),
                Operand::Const(feat),
            ));
            let v = f.assign(Rvalue::LoadGlobal {
                global: "features".into(),
                index: Operand::Local(idx),
            });
            let w = ((sc as i64 + 1) * (feat + 3) * (variant as i64 + 1)) % 17 - 8;
            let weighted = f.assign(Rvalue::BinOp(
                BinOp::Mul,
                Operand::Local(v),
                Operand::Const(w),
            ));
            total = f.assign(Rvalue::BinOp(
                BinOp::Add,
                Operand::Local(total),
                Operand::Local(weighted),
            ));
        }
        f.ret(Operand::Local(total));
        p.add_function(f.finish());
        if sc % 2 == variant as usize % 2 {
            p.add_function(cold_utility(
                &format!("mf{variant}_cold_{sc}"),
                0,
                "cold.cpp",
                4 + sc % 8,
            ));
        }
    }

    // rank(i): pick the scorer by story bits, keep a running max with a
    // skewed branch (new-max is rare).
    let mut f = FunctionBuilder::new("rank_one", 1, "rank.cpp", 2);
    // params: 0 = story id, 1 = current max
    let which = f.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(0),
        Operand::Const(n_scorers as i64 - 1),
    ));
    let arms = f.switch(Operand::Local(which), n_scorers);
    let score = f.new_local();
    let join = f.new_block();
    for (sc, arm) in arms.targets.clone().iter().enumerate() {
        f.switch_to(*arm);
        let s = f.call(&format!("score_{sc}"), vec![Operand::Local(0)]);
        f.assign_to(score, Rvalue::Use(Operand::Local(s)));
        f.goto(join);
    }
    f.switch_to(arms.default);
    f.assign_to(score, Rvalue::Use(Operand::Const(0)));
    f.goto(join);
    f.switch_to(join);
    let better = f.assign_cmp(CmpOp::Gt, Operand::Local(score), Operand::Local(1));
    // New-max (rare) first in source order: pessimal.
    let (new_max, keep) = f.branch(Operand::Local(better));
    f.switch_to(new_max);
    f.ret(Operand::Local(score));
    f.switch_to(keep);
    f.ret(Operand::Local(1));
    p.add_function(f.finish());

    // main loop: rank everything repeatedly.
    let mut m = FunctionBuilder::new("main", 2, "main.cpp", 0);
    let best = m.new_local();
    let i = m.new_local();
    m.assign_to(best, Rvalue::Use(Operand::Const(i64::MIN / 4)));
    m.assign_to(i, Rvalue::Use(Operand::Const(0)));
    let head = m.goto_new();
    m.switch_to(head);
    let c = m.assign_cmp(CmpOp::Lt, Operand::Local(i), Operand::Const(iterations));
    let (body, done) = m.branch(Operand::Local(c));
    m.switch_to(body);
    let nb = m.call("rank_one", vec![Operand::Local(i), Operand::Local(best)]);
    m.assign_to(best, Rvalue::Use(Operand::Local(nb)));
    m.assign_to(
        i,
        Rvalue::BinOp(BinOp::Add, Operand::Local(i), Operand::Const(1)),
    );
    m.goto(head);
    m.switch_to(done);
    m.emit(Operand::Local(best));
    let code = m.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(best),
        Operand::Const(0x3F),
    ));
    m.ret(Operand::Local(code));
    p.add_function(m.finish());
    p.validate().expect("multifeed program valid");
    p
}

/// Shared request-loop main for service workloads.
fn build_service_main(p: &mut MirProgram, handler: &str, iterations: i64) {
    let mut m = FunctionBuilder::new("main", 9, "main.cpp", 0);
    let acc = m.new_local();
    let i = m.new_local();
    m.assign_to(acc, Rvalue::Use(Operand::Const(0)));
    m.assign_to(i, Rvalue::Use(Operand::Const(0)));
    let head = m.goto_new();
    m.switch_to(head);
    let c = m.assign_cmp(CmpOp::Lt, Operand::Local(i), Operand::Const(iterations));
    let (body, done) = m.branch(Operand::Local(c));
    m.switch_to(body);
    let v = m.call(handler, vec![Operand::Local(i)]);
    m.assign_to(
        acc,
        Rvalue::BinOp(BinOp::Add, Operand::Local(acc), Operand::Local(v)),
    );
    m.assign_to(
        acc,
        Rvalue::BinOp(BinOp::And, Operand::Local(acc), Operand::Const(0xFFFF_FFFF)),
    );
    m.assign_to(
        i,
        Rvalue::BinOp(BinOp::Add, Operand::Local(i), Operand::Const(1)),
    );
    m.goto(head);
    m.switch_to(done);
    m.emit(Operand::Local(acc));
    let code = m.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(acc),
        Operand::Const(0x3F),
    ));
    m.ret(Operand::Local(code));
    p.add_function(m.finish());
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_compiler::Interp;

    #[test]
    fn tao_builds_and_runs() {
        let p = build_tao(Scale::Test, 11);
        let mut i = Interp::new(&p, 400_000_000);
        i.run(&[]).unwrap();
        assert_eq!(i.output.len(), 1);
    }

    #[test]
    fn proxygen_builds_and_runs() {
        let p = build_proxygen(Scale::Test, 12);
        let mut i = Interp::new(&p, 400_000_000);
        i.run(&[]).unwrap();
        assert_eq!(i.output.len(), 1);
    }

    #[test]
    fn multifeed_variants_differ() {
        let p1 = build_multifeed(Scale::Test, 13, 1);
        let p2 = build_multifeed(Scale::Test, 13, 2);
        assert_ne!(p1, p2);
        let mut i1 = Interp::new(&p1, 400_000_000);
        i1.run(&[]).unwrap();
        let mut i2 = Interp::new(&p2, 400_000_000);
        i2.run(&[]).unwrap();
        assert_eq!(i1.output.len(), 1);
        assert_eq!(i2.output.len(), 1);
    }
}
