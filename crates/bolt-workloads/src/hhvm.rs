//! The `hhvm`-like workload: a bytecode interpreter with a large handler
//! set, jump-table dispatch, function-pointer dispatch to "jitted"
//! regions, duplicate template-like helpers (ICF fodder), and cold
//! utility code interleaved between hot handlers (paper section 6.1:
//! HHVM is the largest, most front-end-bound binary and benefits most).

use crate::common::{
    cold_guard, cold_utility, impossible_guard, lcg_step, rng, skewed_symbols, Scale,
};
use bolt_compiler::{
    BinOp, CmpOp, FunctionBuilder, Global, MirProgram, Operand, Rvalue, ShiftKind,
};
use rand::Rng;

/// Builds the workload program.
pub fn build(scale: Scale, seed: u64) -> MirProgram {
    let n_handlers = scale.funcs(24, 192);
    let n_cold_per_handler = scale.funcs(2, 6);
    let bytecode_len = 2048usize;
    let iterations = scale.iters(30_000, 400_000);
    let mut r = rng(seed);

    let mut p = MirProgram::with_entry("main");
    p.globals.push(Global {
        name: "bytecode".into(),
        words: skewed_symbols(&mut r, bytecode_len, n_handlers),
        mutable: false,
    });
    p.globals.push(Global {
        name: "consts".into(),
        words: (0..256).map(|_| r.gen_range(1..1 << 20)).collect(),
        mutable: false,
    });
    p.globals.push(Global {
        name: "heap".into(),
        words: vec![0; 64],
        mutable: true,
    });

    // Template instantiations: accessor_<k> functions stamped from a few
    // body templates — the duplicate mass BOLT's ICF folds (paper: ~3% of
    // HHVM text on top of linker ICF). They are called rarely (cold-ish)
    // but are real, reachable code.
    let n_accessors = scale.funcs(16, 96);
    for a in 0..n_accessors {
        let template = a % 8;
        let mut f = FunctionBuilder::new(&format!("accessor_{a}"), 0, "templates.cpp", 1);
        let mut x = 0u32;
        for step in 0..14 {
            let rot = f.assign(Rvalue::Shift(
                ShiftKind::Shl,
                Operand::Local(x),
                ((step + template) % 9 + 1) as u8,
            ));
            let idx = f.assign(Rvalue::BinOp(
                BinOp::And,
                Operand::Local(rot),
                Operand::Const(255),
            ));
            let v = f.assign(Rvalue::LoadGlobal {
                global: "consts".into(),
                index: Operand::Local(idx),
            });
            x = f.assign(Rvalue::BinOp(
                BinOp::Xor,
                Operand::Local(v),
                Operand::Const((template as i64 + 2) * 0x9E37),
            ));
        }
        f.ret(Operand::Local(x));
        p.add_function(f.finish());
    }

    // Template-like helpers: 16 names from 4 bodies (ICF folds 12).
    let n_helpers = 16usize;
    for h in 0..n_helpers {
        let template = h % 4;
        let mut f = FunctionBuilder::new(&format!("helper_{h}"), 0, "helpers.cpp", 1);
        let mixed = lcg_step(&mut f, 0);
        let shifted = f.assign(Rvalue::Shift(
            ShiftKind::Shr,
            Operand::Local(mixed),
            (7 + template * 3) as u8,
        ));
        let out = f.assign(Rvalue::BinOp(
            BinOp::And,
            Operand::Local(shifted),
            Operand::Const(0xFFFF),
        ));
        f.ret(Operand::Local(out));
        p.add_function(f.finish());
    }

    // Handlers + interleaved cold utilities (pessimal source order).
    for k in 0..n_handlers {
        let mut f = FunctionBuilder::new(&format!("handler_{k}"), 1, "handlers.cpp", 2);
        // params: 0 = pc, 1 = acc
        let guard = impossible_guard(&mut f, 1);
        cold_guard(&mut f, guard, -1000 - k as i64);
        // Hot body: mix the accumulator with a constant-table read.
        let idx = f.assign(Rvalue::BinOp(
            BinOp::And,
            Operand::Local(0),
            Operand::Const(255),
        ));
        let c = f.assign(Rvalue::LoadGlobal {
            global: "consts".into(),
            index: Operand::Local(idx),
        });
        let mixed = f.assign(Rvalue::BinOp(
            BinOp::Xor,
            Operand::Local(1),
            Operand::Local(c),
        ));
        let acc2 = f.assign(Rvalue::BinOp(
            BinOp::Add,
            Operand::Local(mixed),
            Operand::Const(k as i64 + 1),
        ));
        // A quarter of handlers call a helper (cross-function hot edges).
        if k % 4 == 0 {
            let h = f.call(
                &format!("helper_{}", k % n_helpers),
                vec![Operand::Local(acc2)],
            );
            let merged = f.assign(Rvalue::BinOp(
                BinOp::Add,
                Operand::Local(acc2),
                Operand::Local(h),
            ));
            f.ret(Operand::Local(merged));
        } else {
            f.ret(Operand::Local(acc2));
        }
        p.add_function(f.finish());
        // Cold pollution between handlers.
        for c in 0..n_cold_per_handler {
            p.add_function(cold_utility(
                &format!("cold_{k}_{c}"),
                1,
                "cold.cpp",
                16 + (k + c) % 40,
            ));
        }
    }

    // interp_step(pc, acc): jump-table dispatch to handlers.
    let mut f = FunctionBuilder::new("interp_step", 2, "interp.cpp", 2);
    let pcm = f.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(0),
        Operand::Const(bytecode_len as i64 - 1),
    ));
    let op = f.assign(Rvalue::LoadGlobal {
        global: "bytecode".into(),
        index: Operand::Local(pcm),
    });
    let arms = f.switch(Operand::Local(op), n_handlers);
    for (k, arm) in arms.targets.clone().iter().enumerate() {
        f.switch_to(*arm);
        let ret = f.call(
            &format!("handler_{k}"),
            vec![Operand::Local(0), Operand::Local(1)],
        );
        f.ret(Operand::Local(ret));
    }
    f.switch_to(arms.default);
    f.ret(Operand::Local(1));
    p.add_function(f.finish());

    // jit_enter(i, acc): function-pointer dispatch, heavily skewed to
    // region_hot (ICP fodder).
    for (name, delta) in [("region_hot", 17i64), ("region_warm", 29)] {
        let mut f = FunctionBuilder::new(name, 2, "jit.cpp", 1);
        let v = f.assign(Rvalue::BinOp(
            BinOp::Add,
            Operand::Local(0),
            Operand::Const(delta),
        ));
        let m = f.assign(Rvalue::BinOp(
            BinOp::Mul,
            Operand::Local(v),
            Operand::Const(0x9E3779B97F4A7C15u64 as i64),
        ));
        let s = f.assign(Rvalue::Shift(ShiftKind::Shr, Operand::Local(m), 40));
        f.ret(Operand::Local(s));
        p.add_function(f.finish());
    }
    let mut f = FunctionBuilder::new("jit_enter", 2, "jit.cpp", 2);
    let hot_ptr = f.assign(Rvalue::FuncAddr("region_hot".into()));
    let warm_ptr = f.assign(Rvalue::FuncAddr("region_warm".into()));
    let bits = f.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(0),
        Operand::Const(127),
    ));
    let rare = f.assign_cmp(CmpOp::Eq, Operand::Local(bits), Operand::Const(77));
    let ptr = f.new_local();
    let (warm_bb, hot_bb) = f.branch(Operand::Local(rare));
    let join = f.new_block();
    f.switch_to(warm_bb);
    // The warm path also exercises one accessor (keeps them reachable).
    let acc_v = f.call("accessor_0", vec![Operand::Local(0)]);
    let _ = f.assign(Rvalue::BinOp(
        BinOp::Add,
        Operand::Local(acc_v),
        Operand::Const(0),
    ));
    f.assign_to(ptr, Rvalue::Use(Operand::Local(warm_ptr)));
    f.goto(join);
    f.switch_to(hot_bb);
    f.assign_to(ptr, Rvalue::Use(Operand::Local(hot_ptr)));
    f.goto(join);
    f.switch_to(join);
    let out = f.call_indirect(Operand::Local(ptr), vec![Operand::Local(1)]);
    f.ret(Operand::Local(out));
    p.add_function(f.finish());

    // main: the VM loop.
    let mut m = FunctionBuilder::new("main", 3, "main.cpp", 0);
    let acc = m.new_local();
    let i = m.new_local();
    m.assign_to(acc, Rvalue::Use(Operand::Const(1)));
    m.assign_to(i, Rvalue::Use(Operand::Const(0)));
    let head = m.goto_new();
    m.switch_to(head);
    let c = m.assign_cmp(CmpOp::Lt, Operand::Local(i), Operand::Const(iterations));
    let (body, done) = m.branch(Operand::Local(c));
    m.switch_to(body);
    let stepped = m.call("interp_step", vec![Operand::Local(i), Operand::Local(acc)]);
    let jit = m.call(
        "jit_enter",
        vec![Operand::Local(i), Operand::Local(stepped)],
    );
    m.assign_to(
        acc,
        Rvalue::BinOp(BinOp::Add, Operand::Local(stepped), Operand::Local(jit)),
    );
    // Keep the accumulator bounded.
    m.assign_to(
        acc,
        Rvalue::BinOp(BinOp::And, Operand::Local(acc), Operand::Const(0xFFFF_FFFF)),
    );
    m.push_stmt(bolt_compiler::Stmt::StoreGlobal {
        global: "heap".into(),
        index: Operand::Const(0),
        value: Operand::Local(acc),
        line: 0,
    });
    m.assign_to(
        i,
        Rvalue::BinOp(BinOp::Add, Operand::Local(i), Operand::Const(1)),
    );
    m.goto(head);
    m.switch_to(done);
    m.emit(Operand::Local(acc));
    let code = m.assign(Rvalue::BinOp(
        BinOp::And,
        Operand::Local(acc),
        Operand::Const(0x3F),
    ));
    m.ret(Operand::Local(code));
    p.add_function(m.finish());

    p.validate().expect("generated program is valid");
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_compiler::Interp;

    #[test]
    fn builds_and_interprets() {
        let p = build(Scale::Test, 7);
        let mut i = Interp::new(&p, 200_000_000);
        let code = i.run(&[]).unwrap();
        assert_eq!(i.output.len(), 1);
        assert_eq!(code, i.output[0] & 0x3F);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(build(Scale::Test, 7), build(Scale::Test, 7));
        assert_ne!(build(Scale::Test, 7), build(Scale::Test, 8));
    }
}
