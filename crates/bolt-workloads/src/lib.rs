//! # bolt-workloads — synthetic workload generators
//!
//! Seeded generators producing MIR programs with the structural character
//! of the paper's evaluation subjects (section 6.1): the five Facebook
//! data-center binaries (HHVM, TAO, Proxygen, two Multifeed services) and
//! the Clang/GCC self-compilation workloads (section 6.2).
//!
//! Every program is deterministic per seed, front-end bound by
//! construction (hot/cold interleaving, pessimal source-order branch
//! layout, cold utility pollution between hot functions), and observable
//! (emits a checksum), so BOLT's semantics preservation is checkable on
//! every workload.

pub mod common;
pub mod compiler_like;
pub mod hhvm;
pub mod interp;
pub mod services;

pub use common::Scale;
pub use compiler_like::{clang_shape, gcc_shape, CompilerShape};

use bolt_compiler::MirProgram;

/// The evaluation workloads (paper section 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// The PHP virtual machine (largest, most front-end bound).
    Hhvm,
    /// The distributed social-graph cache.
    Tao,
    /// The cluster load balancer / HTTP library.
    Proxygen,
    /// News Feed selection service, first variant.
    Multifeed1,
    /// News Feed selection service, second variant.
    Multifeed2,
    /// The Clang self-build workload.
    ClangLike,
    /// The GCC self-build workload.
    GccLike,
    /// A dispatch-dominated bytecode VM (jump-table plus
    /// function-pointer dispatch on every iteration) — hostile to block
    /// chaining, the stress case for the uop execution tier.
    Interp,
}

impl Workload {
    /// All data-center workloads of paper Figure 5.
    pub const DATACENTER: [Workload; 5] = [
        Workload::Hhvm,
        Workload::Tao,
        Workload::Proxygen,
        Workload::Multifeed1,
        Workload::Multifeed2,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Hhvm => "HHVM",
            Workload::Tao => "TAO",
            Workload::Proxygen => "Proxygen",
            Workload::Multifeed1 => "Multifeed1",
            Workload::Multifeed2 => "Multifeed2",
            Workload::ClangLike => "Clang",
            Workload::GccLike => "GCC",
            Workload::Interp => "Interp",
        }
    }

    /// Builds the workload's program at the given scale.
    pub fn build(self, scale: Scale) -> MirProgram {
        match self {
            Workload::Hhvm => hhvm::build(scale, 0x44BB),
            Workload::Tao => services::build_tao(scale, 0x7A0),
            Workload::Proxygen => services::build_proxygen(scale, 0x9487),
            Workload::Multifeed1 => services::build_multifeed(scale, 0xFEED, 1),
            Workload::Multifeed2 => services::build_multifeed(scale, 0xFEED, 2),
            Workload::ClangLike => compiler_like::build(scale, clang_shape(scale)),
            Workload::GccLike => compiler_like::build(scale, gcc_shape(scale)),
            Workload::Interp => interp::build(scale, 0x1D15),
        }
    }
}
