//! Crash-safe process-level shard supervision.
//!
//! [`run_batch`](crate::run_batch) scales shards across *threads* in
//! one process — which means one wedged or aborting shard takes the
//! whole run (and every in-flight observation) with it. This module is
//! the next rung: each shard runs as its own OS process that writes a
//! durable artifact ([`crate::artifact`]), and a supervising reducer
//!
//! * enforces a per-attempt wall-clock deadline (hung workers are
//!   killed, not waited on),
//! * detects crashed / nonzero-exit / garbage-output workers by
//!   validating the artifact they were supposed to produce,
//! * retries failures on a capped exponential backoff schedule whose
//!   delays derive only from a seed (no wall-clock randomness — a
//!   failing run replays with the same schedule),
//! * quarantines shards that fail persistently, in the spirit of the
//!   optimizer's quarantine ladder: degrade and report, never abort,
//! * journals completion into a run manifest so an interrupted run
//!   (Ctrl-C, OOM-kill, power loss) resumes by re-executing only the
//!   missing or invalid shards.
//!
//! The module is payload-agnostic: it spawns commands, validates
//! artifact framing, and tracks completeness. What a worker puts in
//! its artifact — and how surviving artifacts merge — is the caller's
//! business (`bolt-run` merges profiles and counters in shard-index
//! order, byte-identical to the in-process path).

use crate::artifact;
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Manifest header tag; bump when the manifest format changes.
const MANIFEST_TAG: &str = "bolt-supervise v1";
/// Scheduler poll interval. Purely a liveness knob: completion is
/// detected by `try_wait`, so the value trades latency for wakeups.
const POLL: Duration = Duration::from_millis(5);

/// Shape of one supervised run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisePlan {
    /// Number of shards (one worker process per shard attempt).
    pub shards: usize,
    /// Maximum concurrently-running worker processes.
    pub procs: usize,
    /// Per-attempt wall-clock deadline; a worker still running when it
    /// expires is killed and the attempt counts as failed.
    pub deadline: Duration,
    /// Total attempts per shard (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before retry `a` (1-based) is
    /// `min(cap, base * 2^(a-1)) + jitter(seed, shard, a) % base`.
    pub backoff_base: Duration,
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
    /// State directory: artifacts and the run manifest live here.
    pub dir: PathBuf,
    /// Run identity. A resumed run only reuses artifacts when the
    /// manifest's fingerprint matches exactly, so artifacts from a
    /// different binary, shard count, or knob set are never merged.
    /// Must be a single line.
    pub fingerprint: String,
}

impl SupervisePlan {
    pub fn new(shards: usize, dir: PathBuf, fingerprint: String) -> SupervisePlan {
        SupervisePlan {
            shards: shards.max(1),
            procs: 1,
            deadline: Duration::from_secs(300),
            max_attempts: 3,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            seed: 0,
            dir,
            fingerprint,
        }
    }

    /// Where shard `k`'s artifact lives.
    pub fn artifact_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard}.bolta"))
    }

    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join("MANIFEST")
    }

    /// The deterministic delay before retry attempt `attempt`
    /// (1-based: the retry after the first failure is attempt 1's
    /// backoff). Capped exponential plus seeded jitter — no wall
    /// clock, no OS randomness, so a replayed run backs off on the
    /// identical schedule.
    pub fn backoff_delay(&self, shard: usize, attempt: u32) -> Duration {
        let base = self.backoff_base.as_millis() as u64;
        let cap = self.backoff_cap.as_millis() as u64;
        let exp = base
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(20))
            .min(cap);
        let jitter = if base == 0 {
            0
        } else {
            // splitmix64-style mix of (seed, shard, attempt).
            let mut x = self
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64 + 1))
                .wrapping_add(u64::from(attempt));
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (x ^ (x >> 31)) % base
        };
        Duration::from_millis(exp + jitter)
    }

    fn manifest_header(&self) -> String {
        format!(
            "{MANIFEST_TAG}\nfingerprint {}\nshards {}\n",
            self.fingerprint, self.shards
        )
    }
}

/// What happened to one shard attempt — the supervisor's structured
/// event stream, mirroring the optimizer's `QuarantineEvent` style:
/// every degradation is reported, none aborts the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardEventKind {
    /// A valid artifact from a previous run was reused; the shard was
    /// never spawned.
    Resumed,
    /// A stale artifact from a previous run failed validation and was
    /// discarded; the shard re-runs.
    StaleArtifact,
    /// The worker exited cleanly and its artifact validated.
    Completed,
    /// The worker exited abnormally (nonzero status or signal).
    Crashed,
    /// The worker outlived the deadline and was killed.
    TimedOut,
    /// The worker exited cleanly but its artifact is missing,
    /// truncated, or corrupt — it is never merged.
    BadArtifact,
    /// The shard was rescheduled after a failure.
    Retry,
    /// The shard exhausted its attempts and is excluded from the
    /// merge.
    Quarantined,
}

impl ShardEventKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ShardEventKind::Resumed => "resumed",
            ShardEventKind::StaleArtifact => "stale-artifact",
            ShardEventKind::Completed => "completed",
            ShardEventKind::Crashed => "crashed",
            ShardEventKind::TimedOut => "timeout",
            ShardEventKind::BadArtifact => "bad-artifact",
            ShardEventKind::Retry => "retry",
            ShardEventKind::Quarantined => "quarantined",
        }
    }
}

impl fmt::Display for ShardEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One supervision event: which shard, which attempt (0-based), what
/// happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEvent {
    pub shard: usize,
    pub attempt: u32,
    pub kind: ShardEventKind,
    pub detail: String,
}

impl fmt::Display for ShardEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] shard {} attempt {}: {}",
            self.kind, self.shard, self.attempt, self.detail
        )
    }
}

/// Everything the supervisor did during a run. A healthy fresh run
/// has one `Completed` event per shard and nothing else.
#[derive(Debug, Clone, Default)]
pub struct SuperviseReport {
    /// Every event, in the order it was observed.
    pub events: Vec<ShardEvent>,
    /// Shards with a valid artifact at the end of the run.
    pub completed: usize,
    /// Of those, shards reused from a previous run's artifacts.
    pub resumed: usize,
    /// Attempts beyond the first, summed over shards.
    pub retries: u32,
    /// Shards excluded from the merge, in shard-index order.
    pub quarantined: Vec<usize>,
    /// Set when an existing state directory belonged to a different
    /// run and was reset instead of resumed.
    pub manifest_reset: Option<String>,
}

impl SuperviseReport {
    /// No degradations: nothing retried, nothing quarantined, no
    /// state-dir surprises. (Resuming completed shards is not a
    /// degradation.)
    pub fn is_clean(&self) -> bool {
        self.retries == 0 && self.quarantined.is_empty() && self.manifest_reset.is_none()
    }

    /// `QuarantineReport::render`-style text block.
    pub fn render(&self) -> String {
        let mut out = format!(
            "supervise: {} completed ({} resumed), {} retr{}, {} quarantined\n",
            self.completed,
            self.resumed,
            self.retries,
            if self.retries == 1 { "y" } else { "ies" },
            self.quarantined.len()
        );
        if let Some(why) = &self.manifest_reset {
            out.push_str(&format!("  [manifest-reset] {why}\n"));
        }
        for e in &self.events {
            out.push_str(&format!("  {e}\n"));
        }
        out
    }
}

/// The result of a supervised run: per-shard artifact paths (present
/// for every non-quarantined shard, in shard-index order) plus the
/// event report.
#[derive(Debug)]
pub struct SuperviseOutcome {
    pub artifacts: Vec<Option<PathBuf>>,
    pub report: SuperviseReport,
}

/// One queued shard attempt.
struct Pending {
    shard: usize,
    attempt: u32,
    not_before: Instant,
}

/// One live worker process.
struct Running {
    shard: usize,
    attempt: u32,
    child: Child,
    kill_at: Instant,
}

/// Runs `plan.shards` worker processes under supervision and returns
/// the surviving artifacts. `make_cmd(shard, attempt, artifact_path)`
/// builds the worker invocation; the supervisor silences its
/// stdout/stderr (everything observable must flow through the
/// artifact) and validates the artifact file after a clean exit.
///
/// The only `Err` is an environment-level failure (state directory
/// not creatable, manifest unwritable, worker binary unspawnable at
/// every attempt is *not* one — that quarantines the shard).
pub fn run_supervised(
    plan: &SupervisePlan,
    make_cmd: impl Fn(usize, u32, &Path) -> Command,
) -> std::io::Result<SuperviseOutcome> {
    assert!(
        !plan.fingerprint.contains('\n'),
        "fingerprint must be a single line"
    );
    std::fs::create_dir_all(&plan.dir)?;
    let mut report = SuperviseReport::default();
    let resuming = prepare_manifest(plan, &mut report)?;

    // Sweep staging leftovers from interrupted writers.
    sweep_tmp_files(&plan.dir);

    // Resume scan: a shard whose artifact validates is done — the
    // artifact file itself (CRC + length + version) is authoritative,
    // so a run interrupted between the worker's atomic rename and the
    // journal append still resumes correctly.
    let mut artifacts: Vec<Option<PathBuf>> = vec![None; plan.shards];
    let mut queue: Vec<Pending> = Vec::new();
    let now = Instant::now();
    for (shard, slot) in artifacts.iter_mut().enumerate() {
        let path = plan.artifact_path(shard);
        if path.exists() {
            match artifact::validate_file(&path) {
                Ok(_) => {
                    *slot = Some(path);
                    report.resumed += 1;
                    if resuming {
                        report.events.push(ShardEvent {
                            shard,
                            attempt: 0,
                            kind: ShardEventKind::Resumed,
                            detail: "valid artifact from a previous run".into(),
                        });
                    }
                    continue;
                }
                Err(e) => {
                    let _ = std::fs::remove_file(&path);
                    report.events.push(ShardEvent {
                        shard,
                        attempt: 0,
                        kind: ShardEventKind::StaleArtifact,
                        detail: format!("discarded: {e}"),
                    });
                }
            }
        }
        queue.push(Pending {
            shard,
            attempt: 0,
            not_before: now,
        });
    }

    let mut running: Vec<Running> = Vec::new();
    while !queue.is_empty() || !running.is_empty() {
        let now = Instant::now();

        // Launch eligible attempts, lowest shard index first.
        while running.len() < plan.procs.max(1) {
            let Some(i) = queue
                .iter()
                .enumerate()
                .filter(|(_, p)| p.not_before <= now)
                .min_by_key(|(_, p)| p.shard)
                .map(|(i, _)| i)
            else {
                break;
            };
            let p = queue.swap_remove(i);
            let path = plan.artifact_path(p.shard);
            let mut cmd = make_cmd(p.shard, p.attempt, &path);
            cmd.stdout(Stdio::null()).stderr(Stdio::null());
            match cmd.spawn() {
                Ok(child) => running.push(Running {
                    shard: p.shard,
                    attempt: p.attempt,
                    child,
                    kill_at: Instant::now() + plan.deadline,
                }),
                Err(e) => {
                    // Spawn failure counts as a crashed attempt.
                    fail(
                        plan,
                        &mut report,
                        &mut queue,
                        p.shard,
                        p.attempt,
                        ShardEventKind::Crashed,
                        format!("spawn failed: {e}"),
                    );
                }
            }
        }

        // Poll live workers.
        let mut i = 0;
        while i < running.len() {
            let now = Instant::now();
            let r = &mut running[i];
            match r.child.try_wait() {
                Ok(Some(status)) => {
                    let r = running.swap_remove(i);
                    let path = plan.artifact_path(r.shard);
                    if status.success() {
                        match artifact::validate_file(&path) {
                            Ok(_) => {
                                artifacts[r.shard] = Some(path);
                                report.events.push(ShardEvent {
                                    shard: r.shard,
                                    attempt: r.attempt,
                                    kind: ShardEventKind::Completed,
                                    detail: "artifact validated".into(),
                                });
                                journal_done(plan, r.shard)?;
                            }
                            Err(e) => {
                                let _ = std::fs::remove_file(&path);
                                fail(
                                    plan,
                                    &mut report,
                                    &mut queue,
                                    r.shard,
                                    r.attempt,
                                    ShardEventKind::BadArtifact,
                                    format!("worker exited 0 but artifact rejected: {e}"),
                                );
                            }
                        }
                    } else {
                        // A crashed worker may have left a direct
                        // (non-atomic) write behind; never trust it.
                        let _ = std::fs::remove_file(&path);
                        fail(
                            plan,
                            &mut report,
                            &mut queue,
                            r.shard,
                            r.attempt,
                            ShardEventKind::Crashed,
                            format!("worker exited abnormally: {status}"),
                        );
                    }
                    continue;
                }
                Ok(None) if now >= r.kill_at => {
                    let mut r = running.swap_remove(i);
                    let _ = r.child.kill();
                    let _ = r.child.wait();
                    let _ = std::fs::remove_file(plan.artifact_path(r.shard));
                    fail(
                        plan,
                        &mut report,
                        &mut queue,
                        r.shard,
                        r.attempt,
                        ShardEventKind::TimedOut,
                        format!("exceeded {} ms deadline, killed", plan.deadline.as_millis()),
                    );
                    continue;
                }
                Ok(None) => {}
                Err(e) => {
                    let mut r = running.swap_remove(i);
                    let _ = r.child.kill();
                    let _ = r.child.wait();
                    fail(
                        plan,
                        &mut report,
                        &mut queue,
                        r.shard,
                        r.attempt,
                        ShardEventKind::Crashed,
                        format!("wait failed: {e}"),
                    );
                    continue;
                }
            }
            i += 1;
        }

        if !queue.is_empty() || !running.is_empty() {
            std::thread::sleep(POLL);
        }
    }

    report.completed = artifacts.iter().filter(|a| a.is_some()).count();
    report.quarantined = (0..plan.shards)
        .filter(|&s| artifacts[s].is_none())
        .collect();
    Ok(SuperviseOutcome { artifacts, report })
}

/// Records a failed attempt: retry with deterministic backoff while
/// attempts remain, else quarantine the shard.
fn fail(
    plan: &SupervisePlan,
    report: &mut SuperviseReport,
    queue: &mut Vec<Pending>,
    shard: usize,
    attempt: u32,
    kind: ShardEventKind,
    detail: String,
) {
    report.events.push(ShardEvent {
        shard,
        attempt,
        kind,
        detail,
    });
    let next = attempt + 1;
    if next < plan.max_attempts.max(1) {
        let delay = plan.backoff_delay(shard, next);
        report.retries += 1;
        report.events.push(ShardEvent {
            shard,
            attempt: next,
            kind: ShardEventKind::Retry,
            detail: format!("backoff {} ms", delay.as_millis()),
        });
        queue.push(Pending {
            shard,
            attempt: next,
            not_before: Instant::now() + delay,
        });
    } else {
        report.events.push(ShardEvent {
            shard,
            attempt,
            kind: ShardEventKind::Quarantined,
            detail: format!("failed {} attempt(s), excluded from merge", next),
        });
    }
}

/// Loads or initializes the run manifest. Returns whether this run is
/// resuming a matching previous run. On mismatch the state directory
/// is reset (manifest and `shard-*.bolta` removed) and the reason is
/// recorded — artifacts of a different run must never be merged.
fn prepare_manifest(plan: &SupervisePlan, report: &mut SuperviseReport) -> std::io::Result<bool> {
    let path = plan.manifest_path();
    let header = plan.manifest_header();
    match std::fs::read_to_string(&path) {
        Ok(existing) => {
            if existing.starts_with(&header) {
                return Ok(true);
            }
            let found = existing.lines().take(3).collect::<Vec<_>>().join(" | ");
            report.manifest_reset = Some(format!(
                "state dir {} belonged to a different run ({found}); starting fresh",
                plan.dir.display()
            ));
            reset_state_dir(plan);
            std::fs::write(&path, &header)?;
            Ok(false)
        }
        Err(_) => {
            // No manifest: a fresh directory, or one interrupted
            // before the manifest was first written. Any artifacts
            // present are unidentifiable — discard them.
            if (0..plan.shards).any(|s| plan.artifact_path(s).exists()) {
                report.manifest_reset = Some(format!(
                    "state dir {} has artifacts but no manifest; starting fresh",
                    plan.dir.display()
                ));
                reset_state_dir(plan);
            }
            std::fs::write(&path, &header)?;
            Ok(false)
        }
    }
}

fn reset_state_dir(plan: &SupervisePlan) {
    let _ = std::fs::remove_file(plan.manifest_path());
    if let Ok(entries) = std::fs::read_dir(&plan.dir) {
        for e in entries.flatten() {
            let name = e.file_name().to_string_lossy().into_owned();
            if name.starts_with("shard-") && (name.ends_with(".bolta") || name.contains(".tmp.")) {
                let _ = std::fs::remove_file(e.path());
            }
        }
    }
}

fn sweep_tmp_files(dir: &Path) {
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            if e.file_name().to_string_lossy().contains(".bolta.tmp.") {
                let _ = std::fs::remove_file(e.path());
            }
        }
    }
}

/// Appends a completion record to the manifest journal. Append-only:
/// a crash between the artifact rename and this append loses nothing,
/// because resume trusts validated artifact files over the journal.
fn journal_done(plan: &SupervisePlan, shard: usize) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(plan.manifest_path())?;
    writeln!(f, "done {shard}")?;
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{frame, KIND_COUNTERS};

    fn test_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bolt-supervise-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn fast_plan(shards: usize, dir: PathBuf) -> SupervisePlan {
        let mut p = SupervisePlan::new(shards, dir, "test-run".into());
        p.procs = 4;
        p.deadline = Duration::from_secs(10);
        p.max_attempts = 3;
        p.backoff_base = Duration::from_millis(1);
        p.backoff_cap = Duration::from_millis(4);
        p
    }

    /// A worker that atomically writes a valid artifact via `sh`:
    /// stage then rename, like a real worker.
    fn ok_cmd(src: &Path, out: &Path) -> Command {
        let mut c = Command::new("sh");
        c.arg("-c").arg(format!(
            "cp {} {}.stage && mv {}.stage {}",
            src.display(),
            out.display(),
            out.display(),
            out.display()
        ));
        c
    }

    fn write_src(dir: &Path, payload: &[u8]) -> PathBuf {
        let src = dir.join("src.bin");
        std::fs::write(&src, frame(KIND_COUNTERS, payload)).unwrap();
        src
    }

    #[test]
    fn all_shards_complete_cleanly() {
        let dir = test_dir("clean");
        let src = write_src(&dir, b"payload");
        let plan = fast_plan(5, dir.clone());
        let out = run_supervised(&plan, |_, _, path| ok_cmd(&src, path)).unwrap();
        assert!(out.report.is_clean(), "{}", out.report.render());
        assert_eq!(out.report.completed, 5);
        assert!(out.artifacts.iter().all(|a| a.is_some()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crashing_worker_is_retried_then_succeeds() {
        let dir = test_dir("flaky");
        let src = write_src(&dir, b"payload");
        let plan = fast_plan(3, dir.clone());
        let out = run_supervised(&plan, |shard, attempt, path| {
            if shard == 1 && attempt == 0 {
                let mut c = Command::new("sh");
                c.arg("-c").arg("exit 7");
                c
            } else {
                ok_cmd(&src, path)
            }
        })
        .unwrap();
        assert_eq!(out.report.completed, 3);
        assert_eq!(out.report.retries, 1);
        assert!(out.report.quarantined.is_empty());
        let kinds: Vec<_> = out
            .report
            .events
            .iter()
            .filter(|e| e.shard == 1)
            .map(|e| e.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                ShardEventKind::Crashed,
                ShardEventKind::Retry,
                ShardEventKind::Completed
            ]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persistent_failure_is_quarantined_and_others_survive() {
        let dir = test_dir("quarantine");
        let src = write_src(&dir, b"payload");
        let mut plan = fast_plan(4, dir.clone());
        plan.max_attempts = 2;
        let out = run_supervised(&plan, |shard, _, path| {
            if shard == 2 {
                let mut c = Command::new("sh");
                c.arg("-c").arg("kill -ABRT $$");
                c
            } else {
                ok_cmd(&src, path)
            }
        })
        .unwrap();
        assert_eq!(out.report.completed, 3);
        assert_eq!(out.report.quarantined, vec![2]);
        assert!(out.artifacts[2].is_none());
        assert!(out
            .report
            .events
            .iter()
            .any(|e| e.shard == 2 && e.kind == ShardEventKind::Quarantined));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hung_worker_is_killed_at_deadline() {
        let dir = test_dir("hang");
        let src = write_src(&dir, b"payload");
        let mut plan = fast_plan(2, dir.clone());
        plan.deadline = Duration::from_millis(200);
        let out = run_supervised(&plan, |shard, attempt, path| {
            if shard == 0 && attempt == 0 {
                let mut c = Command::new("sh");
                c.arg("-c").arg("sleep 30");
                c
            } else {
                ok_cmd(&src, path)
            }
        })
        .unwrap();
        assert_eq!(out.report.completed, 2);
        assert!(out
            .report
            .events
            .iter()
            .any(|e| e.shard == 0 && e.kind == ShardEventKind::TimedOut));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_artifact_from_clean_exit_is_rejected_never_merged() {
        let dir = test_dir("garbage");
        let src = write_src(&dir, b"payload");
        let mut plan = fast_plan(2, dir.clone());
        plan.max_attempts = 1;
        let out = run_supervised(&plan, |shard, _, path| {
            if shard == 0 {
                // Exit 0 with a garbage artifact: only validation can
                // catch this.
                let mut c = Command::new("sh");
                c.arg("-c")
                    .arg(format!("echo not-an-artifact > {}", path.display()));
                c
            } else {
                ok_cmd(&src, path)
            }
        })
        .unwrap();
        assert!(out.artifacts[0].is_none(), "garbage must not survive");
        assert!(!plan.artifact_path(0).exists(), "garbage file removed");
        assert!(out
            .report
            .events
            .iter()
            .any(|e| e.shard == 0 && e.kind == ShardEventKind::BadArtifact));
        assert_eq!(out.report.quarantined, vec![0]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_reuses_valid_artifacts_and_runs_only_missing() {
        let dir = test_dir("resume");
        let src = write_src(&dir, b"payload");
        let plan = fast_plan(3, dir.clone());
        // First run completes everything.
        let out = run_supervised(&plan, |_, _, path| ok_cmd(&src, path)).unwrap();
        assert_eq!(out.report.completed, 3);
        // Interruption: shard 1's artifact vanishes (as if the run
        // died before producing it).
        std::fs::remove_file(plan.artifact_path(1)).unwrap();
        // Second run: shards 0 and 2 must resume — their worker
        // command is poisoned, so spawning them would quarantine.
        let out = run_supervised(&plan, |shard, _, path| {
            if shard == 1 {
                ok_cmd(&src, path)
            } else {
                let mut c = Command::new("sh");
                c.arg("-c").arg("exit 1");
                c
            }
        })
        .unwrap();
        assert_eq!(out.report.completed, 3);
        assert_eq!(out.report.resumed, 2);
        assert!(out.report.quarantined.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_artifact_on_disk_is_discarded_and_rerun() {
        let dir = test_dir("truncated");
        let src = write_src(&dir, b"payload");
        let plan = fast_plan(2, dir.clone());
        let out = run_supervised(&plan, |_, _, path| ok_cmd(&src, path)).unwrap();
        assert_eq!(out.report.completed, 2);
        // Torn write: shard 0's artifact loses its tail.
        let path = plan.artifact_path(0);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let out = run_supervised(&plan, |_, _, path| ok_cmd(&src, path)).unwrap();
        assert_eq!(out.report.completed, 2);
        assert_eq!(out.report.resumed, 1, "only the intact shard resumes");
        assert!(out
            .report
            .events
            .iter()
            .any(|e| e.shard == 0 && e.kind == ShardEventKind::StaleArtifact));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_resets_the_state_dir() {
        let dir = test_dir("mismatch");
        let src = write_src(&dir, b"payload");
        let plan = fast_plan(2, dir.clone());
        run_supervised(&plan, |_, _, path| ok_cmd(&src, path)).unwrap();
        let mut other = plan.clone();
        other.fingerprint = "different-run".into();
        let out = run_supervised(&other, |_, _, path| ok_cmd(&src, path)).unwrap();
        assert!(out.report.manifest_reset.is_some());
        assert_eq!(out.report.resumed, 0, "stale artifacts never reused");
        assert_eq!(out.report.completed, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn backoff_schedule_is_deterministic_capped_and_seeded() {
        let plan = fast_plan(4, PathBuf::from("/nonexistent"));
        for shard in 0..4 {
            for attempt in 1..6 {
                assert_eq!(
                    plan.backoff_delay(shard, attempt),
                    plan.backoff_delay(shard, attempt),
                    "same inputs, same delay"
                );
                assert!(
                    plan.backoff_delay(shard, attempt) <= plan.backoff_cap + plan.backoff_base,
                    "cap plus jitter bound"
                );
            }
        }
        let mut seeded = plan.clone();
        seeded.seed = 99;
        seeded.backoff_base = Duration::from_millis(64);
        let mut base = plan.clone();
        base.backoff_base = Duration::from_millis(64);
        assert_ne!(
            (1..8)
                .map(|a| seeded.backoff_delay(0, a))
                .collect::<Vec<_>>(),
            (1..8).map(|a| base.backoff_delay(0, a)).collect::<Vec<_>>(),
            "seed moves the jitter"
        );
    }
}
