//! Translate-time lowering to pre-resolved micro-ops — the `--engine=uop`
//! tier behind [`Machine::run_uops`].
//!
//! The block and superblock engines eliminated the per-instruction fetch
//! probe and sink call, which left the interpreter's wide `match inst`
//! in `exec_inst` as the dominant cost: every retired instruction
//! re-matches the [`Inst`] enum, re-matches its nested `Mem`/`Target`
//! operand shapes, re-sign-extends immediates, and unconditionally
//! recomputes the full arithmetic flags (including the per-byte parity
//! popcount) whether or not anything ever reads them.
//!
//! This module pays all of that once, at translation time. Each packed
//! block's decoded instructions are lowered to a flat [`MicroOp`] array:
//!
//! * **operands pre-resolved** — register operands become direct
//!   register-file indices (`u8`), immediates and displacements are
//!   sign-extended into one `i64` slot, and rip-relative targets are
//!   already absolute addresses;
//! * **effective-address recipes split per shape** — `base+disp`,
//!   `base+index*scale+disp`, and absolute each get their own opcode, so
//!   the executor never re-matches a `Mem`;
//! * **one dense `#[repr(u8)]` tag per op** — [`UopKind`] is a flat
//!   enum of specialized operations (ALU split by operation *and*
//!   operand form), so the executor's `match` compiles to a dense jump
//!   table instead of the decoder-shaped `Inst` dispatch;
//! * **flags liveness precomputed** — a backward pass over the block
//!   marks each flag-writing op with whether any later op actually
//!   consumes its flags ([`MicroOp::fl`]). Live writers record two or
//!   three operand words of pending state (materialized at the first
//!   consumer through the shared `Flags::of_*` helpers); dead writers
//!   skip flags work entirely. The pass is conservative across block
//!   boundaries: the *last* writer in a block is always live, because a
//!   chained successor block may consume the flags.
//!
//! Everything else — the [`BlockCache`] spanning/chaining machinery, SMC
//! dirty checks, mid-block `MaxSteps` fallback, and the `CaptureSink`
//! event interleave — carries over from the superblock engine unchanged;
//! the uop pool is simply a third per-instruction pool parallel to the
//! decoded `insts`.
//!
//! [`Machine::run_uops`]: crate::Machine::run_uops
//! [`BlockCache`]: crate::block::BlockCache
//! [`Inst`]: bolt_isa::Inst

use bolt_isa::{flag_effect, AluOp, Inst, Mem, Rm, ShiftOp, Target};

/// The micro-op operation tag. One dense `#[repr(u8)]` discriminant per
/// specialized operation: ALU ops are split by operation and operand
/// form, memory ops by effective-address shape, so executing a micro-op
/// is a single jump-table dispatch with no nested operand matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum UopKind {
    /// `regs[a] = regs[b]`
    MovRR,
    /// `regs[a] = imm` (also lowers `MovRSym` and absolute `lea`).
    MovRI,
    /// `regs[a] = load(regs[b] + imm)`
    LoadBD,
    /// `regs[a] = load(regs[b] + regs[c]*d + imm)`
    LoadBIS,
    /// `regs[a] = load(imm)` (rip-relative, pre-resolved absolute).
    LoadAbs,
    /// `store(regs[b] + imm) = regs[a]`
    StoreBD,
    /// `store(regs[b] + regs[c]*d + imm) = regs[a]`
    StoreBIS,
    /// `store(imm) = regs[a]`
    StoreAbs,
    /// `regs[a] = regs[b] + imm`
    LeaBD,
    /// `regs[a] = regs[b] + regs[c]*d + imm`
    LeaBIS,
    /// `push regs[a]`
    Push,
    /// `regs[a] = pop`
    Pop,
    /// `regs[a] += regs[b]`
    AddRR,
    /// `regs[a] += imm`
    AddRI,
    /// `regs[a] -= regs[b]`
    SubRR,
    /// `regs[a] -= imm`
    SubRI,
    /// `regs[a] &= regs[b]`
    AndRR,
    /// `regs[a] &= imm`
    AndRI,
    /// `regs[a] |= regs[b]`
    OrRR,
    /// `regs[a] |= imm`
    OrRI,
    /// `regs[a] ^= regs[b]`
    XorRR,
    /// `regs[a] ^= imm`
    XorRI,
    /// flags of `regs[a] - regs[b]`
    CmpRR,
    /// flags of `regs[a] - imm`
    CmpRI,
    /// flags of `regs[a] & regs[b]`
    Test,
    /// `regs[a] = regs[a] * regs[b]` (signed)
    Imul,
    /// `regs[a] <<= c` (`c` in 1..=63)
    Shl,
    /// `regs[a] >>= c` (logical)
    Shr,
    /// `regs[a] >>= c` (arithmetic)
    Sar,
    /// `regs[a].low8 = cond(c)`
    Setcc,
    /// `regs[a] = regs[b] & 0xFF`
    Movzx8,
    /// conditional branch to `imm` on `cond(c)`
    Jcc,
    /// unconditional branch to `imm`
    Jmp,
    /// `jmp regs[b]`
    JmpIndReg,
    /// `jmp load(regs[b] + imm)`
    JmpIndMemBD,
    /// `jmp load(regs[b] + regs[c]*d + imm)`
    JmpIndMemBIS,
    /// `jmp load(imm)`
    JmpIndMemAbs,
    /// direct call to `imm`
    Call,
    /// `call regs[b]`
    CallIndReg,
    /// `call load(regs[b] + imm)`
    CallIndMemBD,
    /// `call load(regs[b] + regs[c]*d + imm)`
    CallIndMemBIS,
    /// `call load(imm)`
    CallIndMemAbs,
    /// return (`ret` / `repz ret`)
    Ret,
    /// no effect (also lowers zero-count shifts, which write neither
    /// their register nor flags)
    Nop,
    /// trap
    Ud2,
    /// syscall
    Syscall,
}

///// One lowered micro-op: 16 bytes, operands pre-resolved. Field meaning
/// is per-[`UopKind`] (documented there); unused fields are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    pub kind: UopKind,
    /// Primary register index (destination, or store/push source).
    pub a: u8,
    /// Secondary register index (source, or EA base).
    pub b: u8,
    /// Index register, condition code, or shift count.
    pub c: u8,
    /// EA scale.
    pub d: u8,
    /// Encoded instruction length (to advance `rip`).
    pub len: u8,
    /// Whether this op's flags write is live (consumed by a later
    /// reader, possibly in a chained successor block). Dead writers
    /// skip flags work entirely.
    pub fl: bool,
    /// Sign-extended immediate / displacement / pre-resolved absolute
    /// address.
    pub imm: i64,
}

impl MicroOp {
    pub(crate) fn nop(len: u8) -> MicroOp {
        MicroOp {
            kind: UopKind::Nop,
            a: 0,
            b: 0,
            c: 0,
            d: 0,
            len,
            fl: false,
            imm: 0,
        }
    }
}

/// Splits a `Mem` into its pre-resolved recipe: `(base, index, scale,
/// disp, shape)` where `shape` selects among the caller's three
/// per-shape opcodes `[BD, BIS, Abs]`.
pub(crate) fn lower_mem(mem: &Mem) -> (u8, u8, u8, i64, usize) {
    match mem {
        Mem::BaseDisp { base, disp } => (base.num(), 0, 0, *disp as i64, 0),
        Mem::BaseIndexScale {
            base,
            index,
            scale,
            disp,
        } => (base.num(), index.num(), *scale, *disp as i64, 1),
        Mem::RipRel { target } => match target {
            Target::Addr(a) => (0, 0, 0, *a as i64, 2),
            Target::Label(_) => panic!("unresolved label reached the emulator"),
        },
    }
}

fn target_addr(t: &Target) -> i64 {
    t.addr().expect("decoded branches are resolved") as i64
}

/// Lowers one decoded instruction. `fl` is the precomputed flags
/// liveness for flag-writing instructions (ignored otherwise).
fn lower_inst(inst: &Inst, len: u8, fl: bool) -> MicroOp {
    let mut op = MicroOp::nop(len);
    op.fl = fl;
    match inst {
        Inst::Push(r) => {
            op.kind = UopKind::Push;
            op.a = r.num();
        }
        Inst::Pop(r) => {
            op.kind = UopKind::Pop;
            op.a = r.num();
        }
        Inst::MovRR { dst, src } => {
            op.kind = UopKind::MovRR;
            op.a = dst.num();
            op.b = src.num();
        }
        Inst::MovRI { dst, imm } => {
            op.kind = UopKind::MovRI;
            op.a = dst.num();
            op.imm = *imm;
        }
        Inst::MovRSym { dst, target } => {
            op.kind = UopKind::MovRI;
            op.a = dst.num();
            op.imm = target_addr(target);
        }
        Inst::Load { dst, mem } => {
            let (b, c, d, imm, shape) = lower_mem(mem);
            op.kind = [UopKind::LoadBD, UopKind::LoadBIS, UopKind::LoadAbs][shape];
            op.a = dst.num();
            op.b = b;
            op.c = c;
            op.d = d;
            op.imm = imm;
        }
        Inst::Store { mem, src } => {
            let (b, c, d, imm, shape) = lower_mem(mem);
            op.kind = [UopKind::StoreBD, UopKind::StoreBIS, UopKind::StoreAbs][shape];
            op.a = src.num();
            op.b = b;
            op.c = c;
            op.d = d;
            op.imm = imm;
        }
        Inst::Lea { dst, mem } => {
            let (b, c, d, imm, shape) = lower_mem(mem);
            // An absolute lea is just an immediate move.
            op.kind = [UopKind::LeaBD, UopKind::LeaBIS, UopKind::MovRI][shape];
            op.a = dst.num();
            op.b = b;
            op.c = c;
            op.d = d;
            op.imm = imm;
        }
        Inst::Alu { op: alu, dst, src } => {
            op.kind = match alu {
                AluOp::Add => UopKind::AddRR,
                AluOp::Sub => UopKind::SubRR,
                AluOp::And => UopKind::AndRR,
                AluOp::Or => UopKind::OrRR,
                AluOp::Xor => UopKind::XorRR,
                AluOp::Cmp => UopKind::CmpRR,
            };
            op.a = dst.num();
            op.b = src.num();
        }
        Inst::AluI { op: alu, dst, imm } => {
            op.kind = match alu {
                AluOp::Add => UopKind::AddRI,
                AluOp::Sub => UopKind::SubRI,
                AluOp::And => UopKind::AndRI,
                AluOp::Or => UopKind::OrRI,
                AluOp::Xor => UopKind::XorRI,
                AluOp::Cmp => UopKind::CmpRI,
            };
            op.a = dst.num();
            op.imm = *imm as i64;
        }
        Inst::Test { a, b } => {
            op.kind = UopKind::Test;
            op.a = a.num();
            op.b = b.num();
        }
        Inst::Imul { dst, src } => {
            op.kind = UopKind::Imul;
            op.a = dst.num();
            op.b = src.num();
        }
        Inst::Shift {
            op: shift,
            dst,
            amount,
        } => {
            let c = amount & 63;
            if c == 0 {
                // A zero-count shift writes neither register nor flags:
                // exactly a nop (and, crucially, *not* a flags writer —
                // the liveness pass treats it the same way).
                return MicroOp::nop(len);
            }
            op.kind = match shift {
                ShiftOp::Shl => UopKind::Shl,
                ShiftOp::Shr => UopKind::Shr,
                ShiftOp::Sar => UopKind::Sar,
            };
            op.a = dst.num();
            op.c = c;
        }
        Inst::Setcc { cond, dst } => {
            op.kind = UopKind::Setcc;
            op.a = dst.num();
            op.c = cond.cc();
        }
        Inst::Movzx8 { dst, src } => {
            op.kind = UopKind::Movzx8;
            op.a = dst.num();
            op.b = src.num();
        }
        Inst::Jcc { cond, target, .. } => {
            op.kind = UopKind::Jcc;
            op.c = cond.cc();
            op.imm = target_addr(target);
        }
        Inst::Jmp { target, .. } => {
            op.kind = UopKind::Jmp;
            op.imm = target_addr(target);
        }
        Inst::JmpInd { rm } => match rm {
            Rm::Reg(r) => {
                op.kind = UopKind::JmpIndReg;
                op.b = r.num();
            }
            Rm::Mem(mem) => {
                let (b, c, d, imm, shape) = lower_mem(mem);
                op.kind = [
                    UopKind::JmpIndMemBD,
                    UopKind::JmpIndMemBIS,
                    UopKind::JmpIndMemAbs,
                ][shape];
                op.b = b;
                op.c = c;
                op.d = d;
                op.imm = imm;
            }
        },
        Inst::Call { target } => {
            op.kind = UopKind::Call;
            op.imm = target_addr(target);
        }
        Inst::CallInd { rm } => match rm {
            Rm::Reg(r) => {
                op.kind = UopKind::CallIndReg;
                op.b = r.num();
            }
            Rm::Mem(mem) => {
                let (b, c, d, imm, shape) = lower_mem(mem);
                op.kind = [
                    UopKind::CallIndMemBD,
                    UopKind::CallIndMemBIS,
                    UopKind::CallIndMemAbs,
                ][shape];
                op.b = b;
                op.c = c;
                op.d = d;
                op.imm = imm;
            }
        },
        Inst::Ret | Inst::RepzRet => op.kind = UopKind::Ret,
        Inst::Nop { .. } => {}
        Inst::Ud2 => op.kind = UopKind::Ud2,
        Inst::Syscall => op.kind = UopKind::Syscall,
    }
    op
}

/// Lowers one block's decoded `(inst, len)` entries into `pool`,
/// appending exactly `insts.len()` micro-ops (the pools stay parallel).
///
/// Flags liveness is a single backward pass over the shared
/// [`flag_effect`] table: a flag-writing instruction is live iff some
/// later instruction reads the flags before the next writer — or no
/// writer follows it at all, since a chained successor block may
/// consume flags across the transition (the conservative
/// block-boundary rule). Memory-*writing* instructions are also
/// liveness barriers: a store (or push) can patch cached text, which
/// truncates the block mid-flight and retranslates its tail — and the
/// *patched* tail may read flags the pre-patch instructions never did,
/// so the preceding writer's flags must stay recoverable at every
/// potential truncation point. No instruction in this ISA both reads
/// and writes flags (the table enforces it), so the scan is a simple
/// two-state walk.
pub fn lower_into(pool: &mut Vec<MicroOp>, insts: &[(Inst, u8)]) {
    let start = pool.len();
    for &(inst, len) in insts {
        pool.push(lower_inst(&inst, len, false));
    }
    // Backward liveness: `need` = "are flags live here?" — true at the
    // block's end (successors may read them).
    let mut need = true;
    for (i, (inst, _)) in insts.iter().enumerate().rev() {
        let effect = flag_effect(inst);
        if effect.reads {
            need = true;
        } else if effect.writes.is_some() {
            pool[start + i].fl = need;
            need = false;
        } else if matches!(inst, Inst::Push(_) | Inst::Store { .. }) {
            // Potential self-modifying-text truncation point (see
            // above). Calls push too, but always terminate a block, so
            // the end-of-block rule already covers them.
            need = true;
        }
    }
}

// ---------------------------------------------------------------------------
// Translate-time validation (`--validate-uops` / `BOLT_UOP_VALIDATE=1`).

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = not yet resolved, 1 = off, 2 = on.
static UOP_VALIDATE: AtomicU8 = AtomicU8::new(0);

/// Turns on translate-time micro-op validation for the process (the
/// `--validate-uops` CLI surface). Every lowered block is then checked
/// instruction-by-instruction against its source decode; a mismatch
/// panics with the offending instruction.
pub fn enable_uop_validation() {
    UOP_VALIDATE.store(2, Ordering::Relaxed);
}

/// Whether validation is on — via [`enable_uop_validation`] or the
/// `BOLT_UOP_VALIDATE` environment override (any value but `0`).
pub fn uop_validation_enabled() -> bool {
    match UOP_VALIDATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = std::env::var_os("BOLT_UOP_VALIDATE").is_some_and(|v| v != "0");
            UOP_VALIDATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Structurally checks one lowered block against its source decode:
/// pools parallel, every operand index / sign-extended immediate /
/// effective-address recipe faithful, and the flags-liveness marks safe
/// (re-derived forward from the shared [`flag_effect`] table,
/// independently of `lower_into`'s backward pass: every writer whose
/// flags some later reader, store barrier, or block exit may consume
/// must be marked live). The *semantic* counterpart — symbolic
/// execution of both sequences — is [`crate::transval`].
pub fn validate_block(insts: &[(Inst, u8)], uops: &[MicroOp]) -> Result<(), String> {
    if insts.len() != uops.len() {
        return Err(format!(
            "pool length mismatch: {} insts vs {} uops",
            insts.len(),
            uops.len()
        ));
    }
    for (i, ((inst, len), uop)) in insts.iter().zip(uops).enumerate() {
        check_uop(inst, *len, uop).map_err(|e| format!("uop {i} for `{inst}`: {e}"))?;
    }

    // Forward flags-liveness re-derivation: walking the block in
    // execution order, any event that may consume the current flags —
    // a reader, a store/push (SMC truncation point), or falling off the
    // block's end into a chained successor — requires the most recent
    // writer to be marked live. (Extra liveness is safe; a dead-marked
    // writer whose flags are consumed is not.)
    let mut last_writer: Option<usize> = None;
    let demand = |w: Option<usize>, uops: &[MicroOp], what: &str| -> Result<(), String> {
        match w {
            Some(i) if !uops[i].fl => Err(format!(
                "uop {i} for `{}` is marked flags-dead but {what} consumes its flags",
                insts[i].0
            )),
            _ => Ok(()),
        }
    };
    for (i, (inst, _)) in insts.iter().enumerate() {
        let effect = flag_effect(inst);
        if effect.reads {
            demand(last_writer, uops, &format!("uop {i}"))?;
        } else if matches!(inst, Inst::Push(_) | Inst::Store { .. }) {
            demand(last_writer, uops, "a store barrier")?;
        }
        if effect.writes.is_some() {
            last_writer = Some(i);
        }
    }
    demand(last_writer, uops, "the block exit")
}

/// Asserts one micro-op faithfully encodes its source instruction.
fn check_uop(inst: &Inst, len: u8, u: &MicroOp) -> Result<(), String> {
    let kind = |want: UopKind| -> Result<(), String> {
        if u.kind != want {
            return Err(format!("kind is {:?}, expected {want:?}", u.kind));
        }
        Ok(())
    };
    let reg = |got: u8, want: u8, slot: &str| -> Result<(), String> {
        if got != want {
            return Err(format!("operand {slot} is r{got}, expected r{want}"));
        }
        Ok(())
    };
    let imm = |want: i64| -> Result<(), String> {
        if u.imm != want {
            return Err(format!("imm is {:#x}, expected {want:#x}", u.imm));
        }
        Ok(())
    };
    let addr = |t: &Target| -> Result<i64, String> {
        t.addr()
            .map(|a| a as i64)
            .ok_or_else(|| "unresolved label target".to_string())
    };
    // Effective-address recipe: the three per-shape opcodes in
    // [BaseDisp, BaseIndexScale, RipRel] order.
    let mem = |m: &Mem, kinds: [UopKind; 3]| -> Result<(), String> {
        match m {
            Mem::BaseDisp { base, disp } => {
                kind(kinds[0])?;
                reg(u.b, base.num(), "b")?;
                imm(*disp as i64)
            }
            Mem::BaseIndexScale {
                base,
                index,
                scale,
                disp,
            } => {
                kind(kinds[1])?;
                reg(u.b, base.num(), "b")?;
                reg(u.c, index.num(), "c")?;
                if u.d != *scale {
                    return Err(format!("scale is {}, expected {scale}", u.d));
                }
                imm(*disp as i64)
            }
            Mem::RipRel { target } => {
                kind(kinds[2])?;
                imm(addr(target)?)
            }
        }
    };

    if u.len != len {
        return Err(format!("len is {}, expected {len}", u.len));
    }
    match inst {
        Inst::Push(r) => kind(UopKind::Push).and_then(|_| reg(u.a, r.num(), "a")),
        Inst::Pop(r) => kind(UopKind::Pop).and_then(|_| reg(u.a, r.num(), "a")),
        Inst::MovRR { dst, src } => {
            kind(UopKind::MovRR)?;
            reg(u.a, dst.num(), "a")?;
            reg(u.b, src.num(), "b")
        }
        Inst::MovRI { dst, imm: v } => {
            kind(UopKind::MovRI)?;
            reg(u.a, dst.num(), "a")?;
            imm(*v)
        }
        Inst::MovRSym { dst, target } => {
            kind(UopKind::MovRI)?;
            reg(u.a, dst.num(), "a")?;
            imm(addr(target)?)
        }
        Inst::Load { dst, mem: m } => {
            reg(u.a, dst.num(), "a")?;
            mem(m, [UopKind::LoadBD, UopKind::LoadBIS, UopKind::LoadAbs])
        }
        Inst::Store { mem: m, src } => {
            reg(u.a, src.num(), "a")?;
            mem(m, [UopKind::StoreBD, UopKind::StoreBIS, UopKind::StoreAbs])
        }
        Inst::Lea { dst, mem: m } => {
            reg(u.a, dst.num(), "a")?;
            // An absolute lea lowers to an immediate move.
            mem(m, [UopKind::LeaBD, UopKind::LeaBIS, UopKind::MovRI])
        }
        Inst::Alu { op, dst, src } => {
            kind(match op {
                AluOp::Add => UopKind::AddRR,
                AluOp::Sub => UopKind::SubRR,
                AluOp::And => UopKind::AndRR,
                AluOp::Or => UopKind::OrRR,
                AluOp::Xor => UopKind::XorRR,
                AluOp::Cmp => UopKind::CmpRR,
            })?;
            reg(u.a, dst.num(), "a")?;
            reg(u.b, src.num(), "b")
        }
        Inst::AluI { op, dst, imm: v } => {
            kind(match op {
                AluOp::Add => UopKind::AddRI,
                AluOp::Sub => UopKind::SubRI,
                AluOp::And => UopKind::AndRI,
                AluOp::Or => UopKind::OrRI,
                AluOp::Xor => UopKind::XorRI,
                AluOp::Cmp => UopKind::CmpRI,
            })?;
            reg(u.a, dst.num(), "a")?;
            // The i32 immediate must arrive sign-extended.
            imm(*v as i64)
        }
        Inst::Test { a, b } => {
            kind(UopKind::Test)?;
            reg(u.a, a.num(), "a")?;
            reg(u.b, b.num(), "b")
        }
        Inst::Imul { dst, src } => {
            kind(UopKind::Imul)?;
            reg(u.a, dst.num(), "a")?;
            reg(u.b, src.num(), "b")
        }
        Inst::Shift { op, dst, amount } => {
            let c = amount & 63;
            if c == 0 {
                // Architecturally a no-op: must lower to one.
                return kind(UopKind::Nop);
            }
            kind(match op {
                ShiftOp::Shl => UopKind::Shl,
                ShiftOp::Shr => UopKind::Shr,
                ShiftOp::Sar => UopKind::Sar,
            })?;
            reg(u.a, dst.num(), "a")?;
            if u.c != c {
                return Err(format!("shift count is {}, expected {c}", u.c));
            }
            Ok(())
        }
        Inst::Setcc { cond, dst } => {
            kind(UopKind::Setcc)?;
            reg(u.a, dst.num(), "a")?;
            if u.c != cond.cc() {
                return Err(format!("cc is {}, expected {}", u.c, cond.cc()));
            }
            Ok(())
        }
        Inst::Movzx8 { dst, src } => {
            kind(UopKind::Movzx8)?;
            reg(u.a, dst.num(), "a")?;
            reg(u.b, src.num(), "b")
        }
        Inst::Jcc { cond, target, .. } => {
            kind(UopKind::Jcc)?;
            if u.c != cond.cc() {
                return Err(format!("cc is {}, expected {}", u.c, cond.cc()));
            }
            imm(addr(target)?)
        }
        Inst::Jmp { target, .. } => kind(UopKind::Jmp).and_then(|_| imm(addr(target)?)),
        Inst::JmpInd { rm } => match rm {
            Rm::Reg(r) => kind(UopKind::JmpIndReg).and_then(|_| reg(u.b, r.num(), "b")),
            Rm::Mem(m) => mem(
                m,
                [
                    UopKind::JmpIndMemBD,
                    UopKind::JmpIndMemBIS,
                    UopKind::JmpIndMemAbs,
                ],
            ),
        },
        Inst::Call { target } => kind(UopKind::Call).and_then(|_| imm(addr(target)?)),
        Inst::CallInd { rm } => match rm {
            Rm::Reg(r) => kind(UopKind::CallIndReg).and_then(|_| reg(u.b, r.num(), "b")),
            Rm::Mem(m) => mem(
                m,
                [
                    UopKind::CallIndMemBD,
                    UopKind::CallIndMemBIS,
                    UopKind::CallIndMemAbs,
                ],
            ),
        },
        Inst::Ret | Inst::RepzRet => kind(UopKind::Ret),
        Inst::Nop { .. } => kind(UopKind::Nop),
        Inst::Ud2 => kind(UopKind::Ud2),
        Inst::Syscall => kind(UopKind::Syscall),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_isa::{Cond, JumpWidth, Reg};

    fn lower(insts: &[Inst]) -> Vec<MicroOp> {
        let with_len: Vec<(Inst, u8)> = insts
            .iter()
            .map(|&i| (i, bolt_isa::encoded_len(&i) as u8))
            .collect();
        let mut pool = Vec::new();
        lower_into(&mut pool, &with_len);
        pool
    }

    #[test]
    fn micro_op_stays_small() {
        assert!(
            std::mem::size_of::<MicroOp>() <= 16,
            "MicroOp must stay cache-friendly: {} bytes",
            std::mem::size_of::<MicroOp>()
        );
    }

    #[test]
    fn operands_pre_resolved() {
        let ops = lower(&[
            Inst::Load {
                dst: Reg::Rdx,
                mem: Mem::BaseIndexScale {
                    base: Reg::R10,
                    index: Reg::Rax,
                    scale: 8,
                    disp: -16,
                },
            },
            Inst::AluI {
                op: AluOp::Add,
                dst: Reg::Rcx,
                imm: -1,
            },
        ]);
        assert_eq!(ops[0].kind, UopKind::LoadBIS);
        assert_eq!(
            (ops[0].a, ops[0].b, ops[0].c, ops[0].d, ops[0].imm),
            (Reg::Rdx.num(), Reg::R10.num(), Reg::Rax.num(), 8, -16)
        );
        assert_eq!(ops[1].kind, UopKind::AddRI);
        assert_eq!(ops[1].imm, -1, "immediate sign-extended at lowering");
    }

    #[test]
    fn flags_liveness_marks_consumed_writers_only() {
        // add (dead: overwritten by cmp before any reader), cmp (live:
        // jcc reads), jcc.
        let ops = lower(&[
            Inst::AluI {
                op: AluOp::Add,
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::AluI {
                op: AluOp::Cmp,
                dst: Reg::Rax,
                imm: 4,
            },
            Inst::Jcc {
                cond: Cond::Ne,
                target: Target::Addr(0x400000),
                width: JumpWidth::Near,
            },
        ]);
        assert!(!ops[0].fl, "add's flags die at the cmp");
        assert!(ops[1].fl, "cmp's flags feed the jcc");
    }

    #[test]
    fn last_writer_in_block_is_always_live() {
        // The block's final flags state may be consumed by a chained
        // successor (cross-block setcc/jcc), so the last writer must
        // record flags even with no reader in sight.
        let ops = lower(&[
            Inst::AluI {
                op: AluOp::Add,
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::AluI {
                op: AluOp::Sub,
                dst: Reg::Rax,
                imm: 2,
            },
            Inst::Ret,
        ]);
        assert!(!ops[0].fl, "superseded writer dead");
        assert!(ops[1].fl, "block's last writer conservatively live");
    }

    #[test]
    fn zero_count_shift_lowers_to_nop_and_is_not_a_writer() {
        let ops = lower(&[
            Inst::AluI {
                op: AluOp::Cmp,
                dst: Reg::Rax,
                imm: 0,
            },
            Inst::Shift {
                op: ShiftOp::Shl,
                dst: Reg::Rax,
                amount: 64, // & 63 == 0: architecturally a no-op
            },
            Inst::Setcc {
                cond: Cond::E,
                dst: Reg::Rcx,
            },
        ]);
        assert_eq!(ops[1].kind, UopKind::Nop);
        assert!(
            ops[0].fl,
            "cmp stays live across the no-op shift to the setcc"
        );
    }

    #[test]
    fn stores_are_liveness_barriers() {
        // add, store, cmp, ret: the cmp supersedes the add before any
        // reader, but the store between them can truncate the block
        // (SMC) and hand control to *patched* code that reads flags —
        // the add must stay live.
        let ops = lower(&[
            Inst::AluI {
                op: AluOp::Add,
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Store {
                mem: Mem::BaseDisp {
                    base: Reg::R10,
                    disp: 0,
                },
                src: Reg::Rax,
            },
            Inst::AluI {
                op: AluOp::Cmp,
                dst: Reg::Rax,
                imm: 4,
            },
            Inst::Ret,
        ]);
        assert!(ops[0].fl, "writer before a store stays live");
        assert!(ops[2].fl, "last writer live as usual");
    }

    /// Every lowered block must pass its own validator (here over a
    /// block exercising one of each operand shape).
    #[test]
    fn validator_accepts_faithful_lowering() {
        let insts = [
            Inst::Push(Reg::Rbp),
            Inst::MovRSym {
                dst: Reg::Rdi,
                target: Target::Addr(0x601000),
            },
            Inst::Load {
                dst: Reg::Rdx,
                mem: Mem::BaseIndexScale {
                    base: Reg::R10,
                    index: Reg::Rax,
                    scale: 8,
                    disp: -16,
                },
            },
            Inst::AluI {
                op: AluOp::Cmp,
                dst: Reg::Rdx,
                imm: -1,
            },
            Inst::Jcc {
                cond: Cond::Ne,
                target: Target::Addr(0x400040),
                width: JumpWidth::Near,
            },
        ];
        let with_len: Vec<(Inst, u8)> = insts
            .iter()
            .map(|&i| (i, bolt_isa::encoded_len(&i) as u8))
            .collect();
        let mut pool = Vec::new();
        lower_into(&mut pool, &with_len);
        validate_block(&with_len, &pool).expect("faithful lowering validates");
    }

    /// The validator rejects corrupted operands, immediates, and
    /// flags-liveness marks.
    #[test]
    fn validator_catches_corruptions() {
        let insts = [
            Inst::AluI {
                op: AluOp::Cmp,
                dst: Reg::Rax,
                imm: 4,
            },
            Inst::Jcc {
                cond: Cond::E,
                target: Target::Addr(0x400000),
                width: JumpWidth::Near,
            },
        ];
        let with_len: Vec<(Inst, u8)> = insts
            .iter()
            .map(|&i| (i, bolt_isa::encoded_len(&i) as u8))
            .collect();
        let mut pool = Vec::new();
        lower_into(&mut pool, &with_len);

        let mut bad = pool.clone();
        bad[0].a = Reg::Rbx.num();
        assert!(
            validate_block(&with_len, &bad)
                .unwrap_err()
                .contains("operand a"),
            "swapped register index caught"
        );

        let mut bad = pool.clone();
        bad[0].imm = 5;
        assert!(
            validate_block(&with_len, &bad).unwrap_err().contains("imm"),
            "corrupted immediate caught"
        );

        let mut bad = pool.clone();
        bad[0].fl = false;
        assert!(
            validate_block(&with_len, &bad)
                .unwrap_err()
                .contains("flags-dead"),
            "liveness violation caught: the jcc consumes the cmp's flags"
        );

        let mut bad = pool;
        bad.pop();
        assert!(
            validate_block(&with_len, &bad)
                .unwrap_err()
                .contains("length mismatch"),
            "pool divergence caught"
        );
    }

    #[test]
    fn setcc_keeps_earlier_writer_live_mid_block() {
        let ops = lower(&[
            Inst::Test {
                a: Reg::Rax,
                b: Reg::Rax,
            },
            Inst::Setcc {
                cond: Cond::Ne,
                dst: Reg::Rcx,
            },
            Inst::AluI {
                op: AluOp::Add,
                dst: Reg::Rcx,
                imm: 7,
            },
            Inst::Ret,
        ]);
        assert!(ops[0].fl, "test feeds the setcc");
        assert!(ops[2].fl, "trailing add is the last writer: live");
    }
}
