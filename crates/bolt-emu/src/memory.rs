//! Sparse paged memory for the emulator.

use std::cell::Cell;
use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = PAGE_SIZE - 1;

/// Slots in the direct-mapped page memo. Eight ways keep a handful of
/// concurrently hot pages (code, stack, a couple of data regions)
/// resolving without a hash.
const MEMO_WAYS: usize = 8;

/// Memo slot sentinel: no page number is `u64::MAX` (it would imply an
/// address past the top of the 64-bit space).
const NO_PAGE: u64 = u64::MAX;

/// A sparse 64-bit address space backed by 4 KiB pages allocated on
/// demand.
///
/// Pages live in a stable arena (`pages`) reached through a page-number
/// index; a small direct-mapped memo caches recent page resolutions so
/// the emulator's hot paths — stack traffic, a loop's data, straight-line
/// code — skip the hash map entirely. Every memory access used to pay a
/// SipHash lookup, which dominated the interpreter's per-instruction
/// cost for memory-heavy code under every engine.
#[derive(Debug)]
pub struct Memory {
    /// Page storage; slots are never freed until [`clear`](Memory::clear).
    pages: Vec<Box<[u8; PAGE_SIZE as usize]>>,
    /// Page number → arena slot.
    index: HashMap<u64, u32>,
    /// Direct-mapped `(page number, arena slot)` memo, keyed by the page
    /// number's low bits. Interior-mutable so reads can refresh it.
    memo: [Cell<(u64, u32)>; MEMO_WAYS],
}

impl Default for Memory {
    fn default() -> Memory {
        Memory {
            pages: Vec::new(),
            index: HashMap::new(),
            memo: std::array::from_fn(|_| Cell::new((NO_PAGE, 0))),
        }
    }
}

impl Memory {
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Resolves a page number to its arena slot, if resident.
    #[inline]
    fn page_slot(&self, page_no: u64) -> Option<u32> {
        let way = (page_no as usize) & (MEMO_WAYS - 1);
        let (memo_no, slot) = self.memo[way].get();
        if memo_no == page_no {
            return Some(slot);
        }
        let slot = *self.index.get(&page_no)?;
        self.memo[way].set((page_no, slot));
        Some(slot)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE as usize] {
        let page_no = addr >> PAGE_SHIFT;
        let slot = match self.page_slot(page_no) {
            Some(s) => s,
            None => {
                let s = self.pages.len() as u32;
                self.pages.push(Box::new([0; PAGE_SIZE as usize]));
                self.index.insert(page_no, s);
                self.memo[(page_no as usize) & (MEMO_WAYS - 1)].set((page_no, s));
                s
            }
        };
        &mut self.pages[slot as usize]
    }

    /// Reads one byte (unmapped memory reads as zero).
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page_slot(addr >> PAGE_SHIFT) {
            Some(s) => self.pages[s as usize][(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = v;
    }

    /// Reads `buf.len()` bytes starting at `addr`. Cross-page accesses
    /// are chunked into one `copy_from_slice` span per page.
    pub fn read(&self, addr: u64, mut buf: &mut [u8]) {
        let mut addr = addr;
        while !buf.is_empty() {
            let off = (addr & PAGE_MASK) as usize;
            let n = buf.len().min(PAGE_SIZE as usize - off);
            match self.page_slot(addr >> PAGE_SHIFT) {
                Some(s) => buf[..n].copy_from_slice(&self.pages[s as usize][off..off + n]),
                None => buf[..n].fill(0),
            }
            buf = &mut buf[n..];
            addr += n as u64;
        }
    }

    /// Writes `data` starting at `addr`, one `copy_from_slice` span per
    /// page.
    pub fn write(&mut self, addr: u64, mut data: &[u8]) {
        let mut addr = addr;
        while !data.is_empty() {
            let off = (addr & PAGE_MASK) as usize;
            let n = data.len().min(PAGE_SIZE as usize - off);
            self.page_mut(addr)[off..off + n].copy_from_slice(&data[..n]);
            data = &data[n..];
            addr += n as u64;
        }
    }

    /// Drops every resident page, returning the address space to
    /// all-zeros (used by [`Machine::reset`](crate::Machine::reset)).
    pub fn clear(&mut self) {
        self.pages.clear();
        self.index.clear();
        for way in &self.memo {
            way.set((NO_PAGE, 0));
        }
    }

    /// Reads a little-endian u64. Accesses inside one page (the hot
    /// case: stack slots, aligned data) skip the chunking loop.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        let off = (addr & PAGE_MASK) as usize;
        if off <= PAGE_SIZE as usize - 8 {
            return match self.page_slot(addr >> PAGE_SHIFT) {
                Some(s) => {
                    u64::from_le_bytes(self.pages[s as usize][off..off + 8].try_into().unwrap())
                }
                None => 0,
            };
        }
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Writes a little-endian u64 (single-page fast path like
    /// [`read_u64`](Memory::read_u64)).
    #[inline]
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        let off = (addr & PAGE_MASK) as usize;
        if off <= PAGE_SIZE as usize - 8 {
            self.page_mut(addr)[off..off + 8].copy_from_slice(&v.to_le_bytes());
            return;
        }
        self.write(addr, &v.to_le_bytes());
    }

    /// Number of resident pages (for tests and stats).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_round_trip() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.read_u64(0x1000), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.read_u8(0x1000), 0x0D);
    }

    #[test]
    fn unmapped_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0x5000_0000), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = 0x1FFC; // straddles the 0x1000/0x2000 page boundary
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
        assert_eq!(m.read_u8(0x2000), 0x44, "5th little-endian byte");
    }

    #[test]
    fn multi_page_span_with_unmapped_hole() {
        let mut m = Memory::new();
        // Map the first and third page of a three-page read; the middle
        // page stays unmapped and must read as zeros.
        m.write(0x1FF0, &[0xAA; 16]);
        m.write(0x3000, &[0xBB; 16]);
        assert_eq!(m.resident_pages(), 2);
        let mut buf = vec![0xCCu8; 0x1020];
        m.read(0x1FF0, &mut buf);
        assert_eq!(&buf[..16], &[0xAA; 16]);
        assert!(buf[16..0x1010].iter().all(|&b| b == 0), "hole reads zero");
        assert_eq!(&buf[0x1010..], &[0xBB; 16]);
        // Reading must not have materialized the hole page.
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn clear_drops_all_pages() {
        let mut m = Memory::new();
        m.write(0x1000, &[1, 2, 3]);
        m.write(0x9000, &[4, 5, 6]);
        m.clear();
        assert_eq!(m.resident_pages(), 0);
        assert_eq!(m.read_u8(0x1000), 0);
    }

    #[test]
    fn bulk_write_spanning_pages() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write(0x1F80, &data);
        let mut back = vec![0u8; 256];
        m.read(0x1F80, &mut back);
        assert_eq!(back, data);
    }
}
