//! Sparse paged memory for the emulator.

use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = PAGE_SIZE - 1;

/// A sparse 64-bit address space backed by 4 KiB pages allocated on demand.
#[derive(Debug, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl Memory {
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE as usize] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]))
    }

    /// Reads one byte (unmapped memory reads as zero).
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = v;
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        // Fast path: single page.
        let off = (addr & PAGE_MASK) as usize;
        if off + buf.len() <= PAGE_SIZE as usize {
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(p) => buf.copy_from_slice(&p[off..off + buf.len()]),
                None => buf.fill(0),
            }
            return;
        }
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
    }

    /// Writes `data` starting at `addr`.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let off = (addr & PAGE_MASK) as usize;
        if off + data.len() <= PAGE_SIZE as usize {
            self.page_mut(addr)[off..off + data.len()].copy_from_slice(data);
            return;
        }
        for (i, b) in data.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads a little-endian u64.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Number of resident pages (for tests and stats).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_round_trip() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.read_u64(0x1000), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.read_u8(0x1000), 0x0D);
    }

    #[test]
    fn unmapped_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0x5000_0000), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = 0x1FFC; // straddles the 0x1000/0x2000 page boundary
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
        assert_eq!(m.read_u8(0x2000), 0x44, "5th little-endian byte");
    }

    #[test]
    fn bulk_write_spanning_pages() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write(0x1F80, &data);
        let mut back = vec![0u8; 256];
        m.read(0x1F80, &mut back);
        assert_eq!(back, data);
    }
}
