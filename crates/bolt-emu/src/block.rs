//! The basic-block translation cache behind [`Machine::run_blocks`] and
//! [`Machine::run_superblocks`].
//!
//! Per-instruction emulation pays a decode-cache probe, an interpreter
//! dispatch, and a sink callback for every retired instruction. Real
//! binary translators amortize that cost across basic blocks: decode a
//! straight-line run once, then execute the pre-decoded entries in a
//! tight loop. This module holds the cache itself — packed [`Block`]
//! descriptors indexed by entry `rip` over the machine's flat text span
//! (with a sorted spill index for out-of-span code), with the decoded
//! instructions, per-instruction fetch records, static memory-op
//! shapes, and the precomputed I-side line footprint in shared pools.
//!
//! The cache translates in three modes (see [`ensure_span`]):
//!
//! * **Block mode** (`Machine::run_blocks`): blocks end at the first
//!   control transfer *or* memory-touching instruction. Every
//!   `on_mem`/`on_branch` event a block produces therefore comes from
//!   its final instruction, so charging the whole fetch footprint up
//!   front (one [`BlockEvent`] before the block executes) presents
//!   sinks with exactly the event order of per-instruction stepping.
//! * **Superblock mode** (`Machine::run_superblocks`): blocks span
//!   memory-touching instructions and end only at control transfers.
//!   Each memory-touching instruction's static D-side shape (which
//!   instruction, read or write — the width is fixed by the ISA; only
//!   the effective address and its line crossing are resolved at
//!   execute time) is recorded at translation time, and the engine
//!   captures the resolved addresses while the block executes, emitting
//!   one [`BlockEvent`] whose interleaved fetch + memory records
//!   reproduce the step engine's event order exactly. Superblocks also
//!   *chain*: a block's terminator caches up to two `(successor rip →
//!   block index)` links so the hot loop follows direct jumps and
//!   fall-throughs without consulting the entry index at all.
//! * **Uop mode** (`Machine::run_uops`): superblock packing, and in
//!   addition each decoded instruction is lowered to a pre-resolved
//!   [`MicroOp`] in a pool parallel to the decoded entries — see
//!   [`crate::uop`]. The decoded `insts` stay populated too: the
//!   mid-block `MaxSteps` fallback steps through them exactly.
//!
//! **Blocks self-invalidate on stores into cached text** (flat span or
//! spill bounds). In block mode a store is always a block's last
//! instruction; in superblock mode the engine checks the dirty flag
//! after every executed instruction and abandons the packed entries
//! mid-block. Either way the pools (and every chain link with them) are
//! reclaimed at the next block boundary and the patched bytes are
//! retranslated, matching the step engine's (also invalidated) decode
//! cache.
//!
//! [`Machine::run_blocks`]: crate::Machine::run_blocks
//! [`Machine::run_superblocks`]: crate::Machine::run_superblocks
//! [`ensure_span`]: BlockCache::ensure_span

use crate::spill::SpillIndex;
use crate::uop::MicroOp;
use crate::{BlockEvent, EmuError, MemRecord, Memory, MAX_INST_LEN};
use bolt_isa::{decode, Inst, Rm};
use std::ops::Range;

/// Longest straight-line run a single block may hold. Blocks usually end
/// far earlier (at a branch — or, in block mode, a memory access); the
/// cap bounds translation latency for degenerate compute-only runs.
const MAX_BLOCK_INSTS: usize = 64;

/// Chain-link slot holding no successor yet.
const NO_LINK: (u64, u32) = (u64::MAX, 0);

/// How the cache translates — pinned per span by
/// [`ensure_span`](BlockCache::ensure_span) since the three engines
/// pack blocks differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum TranslationMode {
    /// Blocks end at the first control transfer *or* memory access.
    #[default]
    Block,
    /// Blocks span memory accesses (shapes recorded) and chain.
    Superblock,
    /// Superblock packing, plus each instruction lowered to a
    /// pre-resolved [`MicroOp`] in a parallel pool.
    Uop,
}

impl TranslationMode {
    /// Whether blocks span memory-touching instructions (and therefore
    /// record static D-side shapes and support chaining).
    #[inline]
    fn spans_mems(self) -> bool {
        !matches!(self, TranslationMode::Block)
    }
}

/// The execution tier a translated block runs at. Blocks normally run
/// [`Full`](BlockTier::Full); a translation-validation finding at
/// translate time degrades the block one or two tiers instead of
/// aborting the run — the fault-tolerance counterpart of per-function
/// quarantine on the optimize path. Degradation is strictly local: the
/// rest of the cache keeps running at full speed, and every tier is
/// observationally identical, so four-way engine invariance holds even
/// with degraded blocks in the mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockTier {
    /// Execute at the cache's translation mode (micro-ops in uop mode,
    /// packed decoded entries otherwise).
    #[default]
    Full,
    /// Uop mode only: the lowered micro-ops failed validation but the
    /// decoded entries re-validated clean — execute those (superblock
    /// semantics) and leave the untrusted uops unread.
    Decoded,
    /// The packed translation itself is untrusted: single-step the
    /// block's instructions through the interpreter's fetch path,
    /// which never consults the pools.
    Step,
}

/// Cumulative per-tier block counts: how many translations landed at
/// each [`BlockTier`]. Diagnostics only — never part of a
/// [`RunResult`](crate::RunResult), so engine-invariance comparisons
/// are unaffected. Survives pool reclaims (SMC invalidation); reset by
/// `Machine::reset`/`load_elf`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierCounts {
    pub full: u64,
    pub decoded: u64,
    pub step: u64,
}

impl TierCounts {
    /// Total translations that could not run at full tier.
    pub fn degraded(&self) -> u64 {
        self.decoded + self.step
    }
}

/// A deterministic translation fault to inject (the emulate-path
/// counterpart of the poison pass): fires on the Nth `translate` call,
/// forcing the same degradation path a real validation finding of that
/// kind would take. Per-cache state — parallel tests never interfere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Pretend the uop structural validator rejected the lowering
    /// (degrades the block to [`BlockTier::Decoded`] in uop mode).
    UopInvalid,
    /// Pretend semantic validation found a disagreement that survives
    /// re-validation (degrades the block to [`BlockTier::Step`]).
    SemInvalid,
}

/// Static shape of one data-memory access inside a block: which
/// instruction performs it and its direction, recorded at translation
/// time (superblock mode). The access width is fixed at 8 bytes by the
/// ISA; the effective address — and hence any line crossing — is only
/// resolvable at execute time and is captured into a [`MemRecord`] then.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemShape {
    /// Instruction index within the block.
    pub inst: u32,
    /// `true` for stores.
    pub write: bool,
}

/// Records the static D-side shape(s) of `inst`, in the order the
/// executor emits its `on_mem` events.
fn push_shapes_for(inst_idx: u32, inst: &Inst, out: &mut Vec<MemShape>) {
    let mut push = |write| {
        out.push(MemShape {
            inst: inst_idx,
            write,
        })
    };
    match inst {
        Inst::Push(_) | Inst::Store { .. } => push(true),
        Inst::Pop(_) | Inst::Load { .. } | Inst::Ret | Inst::RepzRet => push(false),
        // A call pushes its return address; an indirect call through
        // memory first loads the target.
        Inst::Call { .. } => push(true),
        Inst::CallInd { rm } => {
            if matches!(rm, Rm::Mem(_)) {
                push(false);
            }
            push(true);
        }
        Inst::JmpInd { rm } => {
            if matches!(rm, Rm::Mem(_)) {
                push(false);
            }
        }
        _ => {}
    }
}

/// The static memory-shape list a spanning translation records for
/// `insts` — the same recording [`BlockCache::translate`] performs,
/// exposed so the semantic validator's tests and mutation harness build
/// shape lists from the single source of truth.
pub fn translation_shapes(insts: &[(Inst, u8)]) -> Vec<MemShape> {
    let mut out = Vec::new();
    for (i, (inst, _)) in insts.iter().enumerate() {
        push_shapes_for(i as u32, inst, &mut out);
    }
    out
}

/// One translated basic block: a packed descriptor into the cache's
/// shared pools.
#[derive(Debug)]
struct Block {
    /// Address of the first instruction.
    entry: u64,
    /// Range into the instruction/fetch pools.
    insts: Range<u32>,
    /// Range into the line-footprint pool: the 64-byte-aligned line
    /// addresses `[entry, entry + byte_len)` spans, ascending.
    lines: Range<u32>,
    /// Range into the memory-shape pool (superblock mode).
    mems: Range<u32>,
    /// Total bytes the block's instructions occupy.
    byte_len: u32,
    inst_count: u32,
    /// Fetches straddling a 64-byte line boundary.
    crossings64: u32,
    /// Chain links: `(successor rip, successor block index)`, installed
    /// by the superblock engine when a transition resolves. Two slots
    /// cover a conditional branch's taken and fall-through successors;
    /// dynamic terminators (indirect jumps, returns) memoize their most
    /// recent targets. Links never outlive the blocks vector — every
    /// invalidation path clears it wholesale.
    links: [(u64, u32); 2],
    /// Execution tier (degraded when translation validation failed).
    tier: BlockTier,
}

/// Whether `inst` must be the last instruction of its block: control
/// transfers and program exits always (so a block has at most one
/// dynamic successor per execution); in block mode also memory-touching
/// instructions (so all D-side events come from a block's final
/// instruction — the ordering guarantee up-front batched I-side
/// charging depends on).
fn ends_block(inst: &Inst, spans_mems: bool) -> bool {
    match inst {
        Inst::Jcc { .. }
        | Inst::Jmp { .. }
        | Inst::JmpInd { .. }
        | Inst::Call { .. }
        | Inst::CallInd { .. }
        | Inst::Ret
        | Inst::RepzRet
        | Inst::Ud2
        | Inst::Syscall => true,
        Inst::Push(_) | Inst::Pop(_) | Inst::Load { .. } | Inst::Store { .. } => !spans_mems,
        _ => false,
    }
}

/// The translation cache: entry-`rip`-indexed [`Block`]s over the
/// machine's flat text span plus a sorted spill index for out-of-span
/// entries, with pooled storage.
#[derive(Debug)]
pub(crate) struct BlockCache {
    /// `entry_rip - base` → block index + 1 (`0` = untranslated). Sized
    /// lazily to the machine's flat text span on the first block-engine
    /// run, so step-only machines pay nothing.
    index: Vec<u32>,
    base: u64,
    /// Translation mode (see [`TranslationMode`]).
    mode: TranslationMode,
    blocks: Vec<Block>,
    /// Decoded `(inst, len)` entries, packed across all blocks.
    insts: Vec<(Inst, u8)>,
    /// Lowered micro-ops, parallel to `insts` entry-for-entry (uop mode
    /// only; empty otherwise).
    uops: Vec<MicroOp>,
    /// Per-instruction `(addr, len)` fetch records, parallel to `insts`.
    fetches: Vec<(u64, u8)>,
    /// Pooled 64-byte line footprints.
    lines: Vec<u64>,
    /// Pooled static memory-op shapes (superblock mode).
    mem_shapes: Vec<MemShape>,
    /// Entry index for blocks outside the flat span — the same sorted
    /// spill index (last-hit memo, bounded out-of-order pending buffer)
    /// as the step engine's decode cache, so cold out-of-order
    /// translation of a wide image stays amortized.
    spill: SpillIndex<u32>,
    /// Precomputed text-write watch range: the union of the flat span
    /// and all spill-block bytes, each with [`MAX_INST_LEN`] slack past
    /// its end. A store outside `[watch_lo, watch_hi)` provably cannot
    /// overlap cached text, so [`note_write`](Self::note_write) is two
    /// compares on the hot path (coarse — a store in a gap between the
    /// regions over-invalidates, which is safe).
    watch_lo: u64,
    watch_hi: u64,
    /// Set by [`invalidate`](Self::invalidate); pools are rebuilt at the
    /// next block boundary ([`reclaim`](Self::reclaim)), never while a
    /// block is executing out of them.
    dirty: bool,
    /// Cumulative per-tier translation counts (survive reclaims).
    tiers: TierCounts,
    /// Pending injected fault: `(translations remaining, kind)`. Fires
    /// once when the countdown hits zero.
    fault: Option<(u64, InjectedFault)>,
}

impl Default for BlockCache {
    fn default() -> BlockCache {
        BlockCache {
            index: Vec::new(),
            base: 0,
            mode: TranslationMode::Block,
            blocks: Vec::new(),
            insts: Vec::new(),
            uops: Vec::new(),
            fetches: Vec::new(),
            lines: Vec::new(),
            mem_shapes: Vec::new(),
            spill: SpillIndex::default(),
            // An empty interval (`lo > hi`) until something is cached.
            watch_lo: u64::MAX,
            watch_hi: 0,
            dirty: false,
            tiers: TierCounts::default(),
            fault: None,
        }
    }
}

impl BlockCache {
    /// Drops everything — called by `Machine::reset`.
    pub(crate) fn clear(&mut self) {
        self.index.clear();
        self.base = 0;
        self.blocks.clear();
        self.insts.clear();
        self.uops.clear();
        self.fetches.clear();
        self.lines.clear();
        self.mem_shapes.clear();
        self.spill.clear();
        self.watch_lo = u64::MAX;
        self.watch_hi = 0;
        self.dirty = false;
        self.tiers = TierCounts::default();
        self.fault = None;
    }

    /// Cumulative per-tier translation counts.
    pub(crate) fn tier_counts(&self) -> TierCounts {
        self.tiers
    }

    /// The execution tier of block `idx`.
    #[inline]
    pub(crate) fn tier(&self, idx: u32) -> BlockTier {
        self.blocks[idx as usize].tier
    }

    /// Arms a deterministic injected translation fault: the `nth`
    /// subsequent `translate` call (0-based) degrades as if a real
    /// validation finding of `kind` had fired.
    pub(crate) fn inject_fault(&mut self, nth: u64, kind: InjectedFault) {
        self.fault = Some((nth, kind));
    }

    /// Advances the injected-fault countdown for one translation;
    /// returns the fault kind if it fires now.
    fn take_fault(&mut self) -> Option<InjectedFault> {
        match &mut self.fault {
            Some((0, kind)) => {
                let k = *kind;
                self.fault = None;
                Some(k)
            }
            Some((n, _)) => {
                *n -= 1;
                None
            }
            None => None,
        }
    }

    /// Sizes the entry index to the machine's flat text span and pins
    /// the translation mode (no-op when both already match, e.g. a
    /// machine reused across runs of one image under one engine).
    pub(crate) fn ensure_span(&mut self, base: u64, span: usize, mode: TranslationMode) {
        if self.base != base || self.index.len() != span || self.mode != mode {
            // A full clear, except that an armed injected fault and the
            // cumulative tier counters survive: both are per-machine
            // diagnostics configured/read across the run boundary this
            // method sits on (`Machine::reset` clears them for real).
            let fault = self.fault.take();
            let tiers = self.tiers;
            self.clear();
            self.fault = fault;
            self.tiers = tiers;
            self.base = base;
            self.mode = mode;
            self.index = vec![0; span];
            if span > 0 {
                self.watch_lo = base;
                self.watch_hi = base + span as u64 + MAX_INST_LEN;
            }
        }
    }

    /// Whether `rip` lies inside the flat indexed text span (out-of-span
    /// entries live in the sorted spill index instead).
    pub(crate) fn in_span(&self, rip: u64) -> bool {
        rip.checked_sub(self.base)
            .is_some_and(|o| (o as usize) < self.index.len())
    }

    /// The translated block entered at `rip`, if any: flat index for
    /// in-span rips, the sorted spill index otherwise.
    pub(crate) fn lookup(&mut self, rip: u64) -> Option<u32> {
        if let Some(o) = rip
            .checked_sub(self.base)
            .map(|o| o as usize)
            .filter(|&o| o < self.index.len())
        {
            let e = self.index[o];
            return (e != 0).then(|| e - 1);
        }
        self.spill.lookup(rip)
    }

    /// Unmaps every block (a store landed in cached text). Pool storage
    /// stays intact until [`reclaim`](Self::reclaim) so a
    /// currently-executing block's packed entries remain valid; chain
    /// links die with the blocks at reclaim.
    pub(crate) fn invalidate(&mut self) {
        if !self.blocks.is_empty() {
            self.index.fill(0);
            self.spill.clear();
            // The watch range persists: retranslated blocks will cover
            // the same regions, and a too-wide watch is merely slower.
            self.dirty = true;
        }
    }

    /// Whether an invalidation is pending (the superblock engine checks
    /// this after every executed instruction to abandon a block whose
    /// later entries a store may have patched).
    #[inline]
    pub(crate) fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Invalidates everything if the store `[addr, addr + len)` can
    /// overlap cached text — the precomputed watch range over the flat
    /// span and spill-block bytes (with one instruction length of slack
    /// past each region's end: a cached instruction starting inside can
    /// extend that far). The fast path — stores to data/stack, or no
    /// blocks cached — is two compares.
    #[inline]
    pub(crate) fn note_write(&mut self, addr: u64, len: u64) {
        if addr < self.watch_hi && addr + len > self.watch_lo {
            self.invalidate();
        }
    }

    /// Rebuilds the pools after an invalidation. Called between blocks;
    /// returns whether anything was reclaimed (chain state held by the
    /// caller is stale if so).
    pub(crate) fn reclaim(&mut self) -> bool {
        if self.dirty {
            self.blocks.clear();
            self.insts.clear();
            self.uops.clear();
            self.fetches.clear();
            self.lines.clear();
            self.mem_shapes.clear();
            self.dirty = false;
            true
        } else {
            false
        }
    }

    /// Translates the straight-line run starting at `entry`: decodes up
    /// to the first block-ending instruction or [`MAX_BLOCK_INSTS`],
    /// packs the entries, and precomputes the 64-byte line footprint,
    /// crossing count, and (superblock mode) static memory-op shapes.
    /// In-span entries land in the flat index; out-of-span entries in
    /// the sorted spill index.
    ///
    /// # Errors
    ///
    /// [`EmuError::BadInstruction`] if the bytes at `entry` itself do
    /// not decode — exactly when a step-engine fetch would fail. A later
    /// undecodable instruction just ends the block early; execution
    /// reaches it as its own (failing) entry only if control actually
    /// gets there.
    pub(crate) fn translate(&mut self, mem: &Memory, entry: u64) -> Result<u32, EmuError> {
        let entry_in_span = self.in_span(entry);
        let insts_start = self.insts.len();
        let mems_start = self.mem_shapes.len();
        let mut at = entry;
        let mut crossings = 0u32;
        let mut buf = [0u8; 16];
        loop {
            mem.read(at, &mut buf);
            let d = match decode(&buf, at) {
                Ok(d) => d,
                Err(_) if at == entry => return Err(EmuError::BadInstruction { rip: entry }),
                Err(_) => break,
            };
            if self.mode.spans_mems() {
                push_shapes_for(
                    (self.insts.len() - insts_start) as u32,
                    &d.inst,
                    &mut self.mem_shapes,
                );
            }
            self.insts.push((d.inst, d.len));
            self.fetches.push((at, d.len));
            if (at >> 6) != ((at + d.len as u64 - 1) >> 6) {
                crossings += 1;
            }
            at += d.len as u64;
            // A block never crosses the flat-span boundary in either
            // direction: flat-index and spill blocks have different
            // text-write invalidation bounds, so each block must lie
            // wholly inside one region.
            if ends_block(&d.inst, self.mode.spans_mems())
                || self.insts.len() - insts_start >= MAX_BLOCK_INSTS
                || self.in_span(at) != entry_in_span
            {
                break;
            }
        }
        let injected = self.take_fault();
        let mut tier = BlockTier::Full;
        if self.mode == TranslationMode::Uop {
            // Lower the whole block at once: the flags-liveness pass
            // needs to see every instruction. The pools stay parallel —
            // `uops[i]` always pairs with `insts[i]`.
            crate::uop::lower_into(&mut self.uops, &self.insts[insts_start..]);
            debug_assert_eq!(self.uops.len(), self.insts.len());
            let structurally_bad = injected == Some(InjectedFault::UopInvalid)
                || (crate::uop::uop_validation_enabled()
                    && crate::uop::validate_block(
                        &self.insts[insts_start..],
                        &self.uops[insts_start..],
                    )
                    .is_err());
            if structurally_bad {
                // The lowering is untrusted but the decoded entries it
                // came from are independently checkable — degrade one
                // tier and leave the uop pool entries unread.
                tier = BlockTier::Decoded;
            }
        }
        let lines_start = self.lines.len();
        let mut line = (entry >> 6) << 6;
        while line < at {
            self.lines.push(line);
            line += 64;
        }
        let idx = self.blocks.len() as u32;
        self.blocks.push(Block {
            entry,
            insts: insts_start as u32..self.insts.len() as u32,
            lines: lines_start as u32..self.lines.len() as u32,
            mems: mems_start as u32..self.mem_shapes.len() as u32,
            byte_len: (at - entry) as u32,
            inst_count: (self.insts.len() - insts_start) as u32,
            crossings64: crossings,
            links: [NO_LINK; 2],
            tier,
        });
        if entry_in_span {
            self.index[(entry - self.base) as usize] = idx + 1;
        } else {
            self.spill.insert(entry, idx);
            self.watch_lo = self.watch_lo.min(entry);
            self.watch_hi = self.watch_hi.max(at + MAX_INST_LEN);
        }
        // Semantic validation degrades rather than aborts: a finding at
        // the uop tier first re-proves the decoded entries alone (the
        // lowering may be the only culprit); a finding that survives
        // re-validation — or one at any other tier — sends the block to
        // per-instruction stepping, which never reads the pools.
        if injected == Some(InjectedFault::SemInvalid) {
            tier = BlockTier::Step;
        } else if crate::transval::sem_validation_enabled() {
            let with_uops = self.mode == TranslationMode::Uop && tier == BlockTier::Full;
            if !self.validate_tier(mem, idx, with_uops).is_empty() {
                tier = if with_uops && self.validate_tier(mem, idx, false).is_empty() {
                    BlockTier::Decoded
                } else {
                    BlockTier::Step
                };
            }
        }
        self.blocks[idx as usize].tier = tier;
        match tier {
            BlockTier::Full => self.tiers.full += 1,
            BlockTier::Decoded => self.tiers.decoded += 1,
            BlockTier::Step => self.tiers.step += 1,
        }
        Ok(idx)
    }

    /// Symbolically proves the cached translation of block `idx`
    /// equivalent to the step semantics of a *fresh decode* of the same
    /// bytes — so a corrupted cache entry is caught even when its pools
    /// are internally consistent. Returns the disagreements (empty =
    /// proven equivalent).
    pub(crate) fn validate_semantics(
        &self,
        mem: &Memory,
        idx: u32,
    ) -> Vec<crate::transval::SemFinding> {
        self.validate_tier(mem, idx, self.mode == TranslationMode::Uop)
    }

    /// [`validate_semantics`](Self::validate_semantics) against a
    /// chosen tier: with `with_uops` false the micro-op pool is left
    /// out of the proof — exactly what a [`BlockTier::Decoded`] block
    /// executes, so the degrade ladder re-validates the tier it is
    /// about to fall back to, not the one that just failed.
    fn validate_tier(
        &self,
        mem: &Memory,
        idx: u32,
        with_uops: bool,
    ) -> Vec<crate::transval::SemFinding> {
        use crate::transval::{SemFinding, SemFindingKind};
        let (range, entry) = self.inst_range(idx);
        let mut reference = Vec::with_capacity(range.len());
        let mut at = entry;
        let mut buf = [0u8; 16];
        for _ in range.clone() {
            mem.read(at, &mut buf);
            match decode(&buf, at) {
                Ok(d) => {
                    reference.push((d.inst, d.len));
                    at += d.len as u64;
                }
                Err(_) => {
                    return vec![SemFinding {
                        kind: SemFindingKind::DecodeMismatch,
                        entry,
                        inst: reference.len() as u32,
                        detail: format!(
                            "cached block holds {} instructions but the bytes at {at:#x} \
                             do not decode",
                            range.len()
                        ),
                    }];
                }
            }
        }
        let cached = &self.insts[range.clone()];
        let uops =
            (with_uops && self.mode == TranslationMode::Uop).then(|| &self.uops[range.clone()]);
        let shapes = self.mode.spans_mems().then(|| self.shapes(idx));
        crate::transval::validate_translation(entry, &reference, cached, uops, shapes)
    }

    /// Total bytes block `idx`'s instructions occupy.
    pub(crate) fn byte_len(&self, idx: u32) -> u64 {
        self.blocks[idx as usize].byte_len as u64
    }

    /// The pool range holding block `idx`'s instructions, and its entry.
    pub(crate) fn inst_range(&self, idx: u32) -> (Range<usize>, u64) {
        let b = &self.blocks[idx as usize];
        (b.insts.start as usize..b.insts.end as usize, b.entry)
    }

    /// Everything the superblock hot loop needs about block `idx` in
    /// one descriptor read: instruction pool range, entry address, and
    /// whether the block touches memory.
    #[inline]
    pub(crate) fn block_info(&self, idx: u32) -> (Range<usize>, u64, bool) {
        let b = &self.blocks[idx as usize];
        (
            b.insts.start as usize..b.insts.end as usize,
            b.entry,
            b.mems.start != b.mems.end,
        )
    }

    /// One packed instruction entry.
    #[inline]
    pub(crate) fn inst(&self, i: usize) -> (Inst, u8) {
        self.insts[i]
    }

    /// One lowered micro-op (uop mode; same pool indices as
    /// [`inst`](Self::inst)).
    #[inline]
    pub(crate) fn uop(&self, i: usize) -> MicroOp {
        self.uops[i]
    }

    /// Block `idx`'s static memory-op shapes (superblock mode).
    pub(crate) fn shapes(&self, idx: u32) -> &[MemShape] {
        let b = &self.blocks[idx as usize];
        &self.mem_shapes[b.mems.start as usize..b.mems.end as usize]
    }

    /// The chained successor of block `from` for a transition to `rip`,
    /// if one is cached — the hot-loop path that skips
    /// [`lookup`](Self::lookup) entirely.
    #[inline]
    pub(crate) fn linked(&self, from: u32, rip: u64) -> Option<u32> {
        let l = &self.blocks[from as usize].links;
        if l[0].0 == rip {
            return Some(l[0].1);
        }
        if l[1].0 == rip {
            return Some(l[1].1);
        }
        None
    }

    /// Caches `from → to` for transitions to `rip`. The first slot is
    /// sticky (a direct jump or fall-through successor); the second
    /// covers a conditional's other arm, or memoizes the most recent
    /// target of a dynamic terminator.
    pub(crate) fn install_link(&mut self, from: u32, rip: u64, to: u32) {
        let l = &mut self.blocks[from as usize].links;
        if l[0].0 == NO_LINK.0 || l[0].0 == rip {
            l[0] = (rip, to);
        } else {
            l[1] = (rip, to);
        }
    }

    /// The batched trace event describing block `idx` (no memory
    /// records — the block engine's shape).
    pub(crate) fn event(&self, idx: u32) -> BlockEvent<'_> {
        let b = &self.blocks[idx as usize];
        BlockEvent {
            entry: b.entry,
            inst_count: b.inst_count,
            byte_len: b.byte_len,
            fetches: &self.fetches[b.insts.start as usize..b.insts.end as usize],
            lines64: &self.lines[b.lines.start as usize..b.lines.end as usize],
            crossings64: b.crossings64,
            mems: &[],
        }
    }

    /// The batched trace event for the first `count` instructions of
    /// block `idx`, carrying the memory records the executor captured —
    /// the superblock engine's shape. `count` covers the whole block in
    /// the common case; a store into text mid-block truncates to the
    /// executed prefix (line footprint and crossings recomputed for the
    /// prefix, which stays exact because lines ascend from the entry).
    pub(crate) fn prefix_event<'a>(
        &'a self,
        idx: u32,
        count: u32,
        mems: &'a [MemRecord],
    ) -> BlockEvent<'a> {
        let b = &self.blocks[idx as usize];
        debug_assert!(count >= 1 && count <= b.inst_count);
        if count == b.inst_count {
            let mut ev = self.event(idx);
            ev.mems = mems;
            return ev;
        }
        let fetches = &self.fetches[b.insts.start as usize..][..count as usize];
        let &(last_addr, last_len) = fetches.last().expect("count >= 1");
        let end = last_addr + last_len as u64;
        let nlines = (((end - 1) >> 6) - (b.entry >> 6) + 1) as usize;
        let crossings = fetches
            .iter()
            .filter(|&&(a, l)| (a >> 6) != ((a + l as u64 - 1) >> 6))
            .count() as u32;
        BlockEvent {
            entry: b.entry,
            inst_count: count,
            byte_len: (end - b.entry) as u32,
            fetches,
            lines64: &self.lines[b.lines.start as usize..][..nlines],
            crossings64: crossings,
            mems,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_isa::{encode_at, AluOp, Mem, Reg};

    /// Encodes `insts` contiguously at `base` into a fresh memory.
    fn memory_with(insts: &[Inst], base: u64) -> (Memory, u64) {
        let mut mem = Memory::new();
        let mut at = base;
        for i in insts {
            let e = encode_at(i, at).unwrap();
            mem.write(at, &e.bytes);
            at += e.bytes.len() as u64;
        }
        (mem, at - base)
    }

    fn cache_over(base: u64, span: usize) -> BlockCache {
        let mut c = BlockCache::default();
        c.ensure_span(base, span, TranslationMode::Block);
        c
    }

    fn supercache_over(base: u64, span: usize) -> BlockCache {
        let mut c = BlockCache::default();
        c.ensure_span(base, span, TranslationMode::Superblock);
        c
    }

    #[test]
    fn straight_line_run_ends_at_control_transfer() {
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::AluI {
                op: AluOp::Add,
                dst: Reg::Rax,
                imm: 2,
            },
            Inst::Ret,
            Inst::Nop { len: 1 },
        ];
        let (mem, len) = memory_with(&insts, 0x400000);
        let mut c = cache_over(0x400000, len as usize);
        let idx = c.translate(&mem, 0x400000).unwrap();
        let ev = c.event(idx);
        assert_eq!(ev.inst_count, 3, "block stops at (and includes) ret");
        assert_eq!(ev.entry, 0x400000);
        assert_eq!(ev.fetches.len(), 3);
        assert_eq!(ev.fetches[0].0, 0x400000);
        let span: u32 = ev.fetches.iter().map(|&(_, l)| l as u32).sum();
        assert_eq!(ev.byte_len, span);
        assert_eq!(c.lookup(0x400000), Some(idx), "entry indexed");
        assert_eq!(c.lookup(0x400001), None, "interior rips not indexed");
    }

    #[test]
    fn memory_touching_instructions_end_blocks_in_block_mode() {
        // mov; load; mov; store; mov; ret — D-side events must always
        // come from a block's last instruction under the block engine.
        let m = Mem::BaseDisp {
            base: Reg::R10,
            disp: 0,
        };
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Load {
                dst: Reg::Rcx,
                mem: m,
            },
            Inst::MovRI {
                dst: Reg::Rdx,
                imm: 2,
            },
            Inst::Store {
                mem: m,
                src: Reg::Rdx,
            },
            Inst::Ret,
        ];
        let (mem, len) = memory_with(&insts, 0x400000);
        let mut c = cache_over(0x400000, len as usize);
        let mut entry = 0x400000;
        let mut counts = Vec::new();
        while c.in_span(entry) {
            let idx = c.translate(&mem, entry).unwrap();
            let ev = c.event(idx);
            counts.push(ev.inst_count);
            entry += ev.byte_len as u64;
        }
        assert_eq!(counts, [2, 2, 1], "mov+load | mov+store | ret");
    }

    /// The same run in superblock mode is one block spanning the memory
    /// accesses, with the static shapes recorded in executor order.
    #[test]
    fn superblocks_span_memory_instructions_and_record_shapes() {
        let m = Mem::BaseDisp {
            base: Reg::R10,
            disp: 0,
        };
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Load {
                dst: Reg::Rcx,
                mem: m,
            },
            Inst::MovRI {
                dst: Reg::Rdx,
                imm: 2,
            },
            Inst::Store {
                mem: m,
                src: Reg::Rdx,
            },
            Inst::Push(Reg::Rax),
            Inst::Pop(Reg::Rcx),
            Inst::Ret,
        ];
        let (mem, len) = memory_with(&insts, 0x400000);
        let mut c = supercache_over(0x400000, len as usize);
        let idx = c.translate(&mem, 0x400000).unwrap();
        let ev = c.event(idx);
        assert_eq!(ev.inst_count, 7, "one superblock up to (and incl.) ret");
        assert!(c.block_info(idx).2, "block_info reports the memory ops");
        let shapes: Vec<(u32, bool)> = c.shapes(idx).iter().map(|s| (s.inst, s.write)).collect();
        assert_eq!(
            shapes,
            vec![(1, false), (3, true), (4, true), (5, false), (6, false)],
            "load, store, push, pop, ret's pop — in executor order"
        );
    }

    #[test]
    fn superblock_chain_links_install_and_drop() {
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Ret,
            Inst::MovRI {
                dst: Reg::Rcx,
                imm: 2,
            },
            Inst::Ret,
        ];
        let (mem, len) = memory_with(&insts, 0x400000);
        let mut c = supercache_over(0x400000, len as usize);
        let a = c.translate(&mem, 0x400000).unwrap();
        let b_entry = 0x400000 + c.event(a).byte_len as u64;
        let b = c.translate(&mem, b_entry).unwrap();
        assert_eq!(c.linked(a, b_entry), None, "no link before install");
        c.install_link(a, b_entry, b);
        assert_eq!(c.linked(a, b_entry), Some(b), "link followed");
        assert_eq!(c.linked(a, 0x400000), None, "other rips still miss");
        // Second slot covers a different successor; a third distinct
        // target evicts only the secondary slot.
        c.install_link(a, 0x400000, a);
        assert_eq!(c.linked(a, 0x400000), Some(a));
        assert_eq!(c.linked(a, b_entry), Some(b), "primary slot sticky");
        c.install_link(a, 0x999999, b);
        assert_eq!(c.linked(a, b_entry), Some(b), "primary survives eviction");
        assert_eq!(c.linked(a, 0x400000), None, "secondary evicted");
        // Invalidation drops every link with the blocks.
        c.invalidate();
        assert!(c.is_dirty());
        assert!(c.reclaim(), "reclaim reports the flush");
        let a2 = c.translate(&mem, 0x400000).unwrap();
        assert_eq!(c.linked(a2, b_entry), None, "links died with the flush");
    }

    #[test]
    fn line_footprint_and_crossings_precomputed() {
        // 7-byte movs starting 3 bytes before a 64-byte boundary: the
        // first instruction straddles it.
        let base = 0x400040 - 3;
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::MovRI {
                dst: Reg::Rcx,
                imm: 2,
            },
            Inst::Ret,
        ];
        let (mem, len) = memory_with(&insts, base);
        let mut c = cache_over(base, len as usize);
        let ev_idx = c.translate(&mem, base).unwrap();
        let ev = c.event(ev_idx);
        assert_eq!(ev.crossings64, 1, "first mov straddles the boundary");
        assert_eq!(ev.lines64, &[0x400000, 0x400040], "both lines spanned");
    }

    /// A truncated event (SMC mid-superblock) recomputes the prefix's
    /// byte length, line footprint, and crossings exactly.
    #[test]
    fn prefix_event_truncates_exactly() {
        let base = 0x400040 - 3;
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::MovRI {
                dst: Reg::Rcx,
                imm: 2,
            },
            Inst::MovRI {
                dst: Reg::Rdx,
                imm: 3,
            },
            Inst::Ret,
        ];
        let (mem, len) = memory_with(&insts, base);
        let mut c = supercache_over(base, len as usize);
        let idx = c.translate(&mem, base).unwrap();
        let full = c.event(idx);
        assert_eq!(full.inst_count, 4);
        let one = c.prefix_event(idx, 1, &[]);
        assert_eq!(one.inst_count, 1);
        assert_eq!(one.byte_len, 7);
        assert_eq!(one.lines64, &[0x400000, 0x400040]);
        assert_eq!(one.crossings64, 1, "the straddling first mov");
        let two = c.prefix_event(idx, 2, &[]);
        assert_eq!(two.byte_len, 14);
        assert_eq!(two.lines64, &[0x400000, 0x400040]);
        assert_eq!(two.crossings64, 1);
        let all = c.prefix_event(idx, 4, &[]);
        assert_eq!(all.byte_len, full.byte_len);
        assert_eq!(all.lines64, full.lines64);
        assert_eq!(all.crossings64, full.crossings64);
    }

    #[test]
    fn invalidate_unmaps_but_reclaims_only_between_blocks() {
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Ret,
        ];
        let (mem, len) = memory_with(&insts, 0x400000);
        let mut c = cache_over(0x400000, len as usize);
        let idx = c.translate(&mem, 0x400000).unwrap();
        c.invalidate();
        assert_eq!(c.lookup(0x400000), None, "mapping gone immediately");
        assert_eq!(
            c.event(idx).inst_count,
            2,
            "packed entries stay valid until reclaim"
        );
        c.reclaim();
        assert!(c.blocks.is_empty() && c.insts.is_empty() && c.lines.is_empty());
        // Retranslation after reclaim works.
        let idx = c.translate(&mem, 0x400000).unwrap();
        assert_eq!(c.event(idx).inst_count, 2);
    }

    /// Blocks stop at the flat span's boundary even when the bytes
    /// beyond it keep decoding: flat-index and spill blocks have
    /// different text-write invalidation bounds, so a block must lie
    /// wholly inside one region.
    #[test]
    fn translation_never_extends_past_the_indexed_span() {
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::MovRI {
                dst: Reg::Rcx,
                imm: 2,
            },
            Inst::MovRI {
                dst: Reg::Rdx,
                imm: 3,
            },
            Inst::Ret,
        ];
        let (mem, len) = memory_with(&insts, 0x400000);
        // Span covers only the first two instructions; the rest decodes
        // fine but lies outside.
        let span = 14usize; // two 7-byte movs
        assert!((span as u64) < len);
        let mut c = cache_over(0x400000, span);
        let idx = c.translate(&mem, 0x400000).unwrap();
        let ev = c.event(idx);
        assert_eq!(ev.inst_count, 2, "block bounded by the span end");
        assert_eq!(ev.byte_len as usize, span);
    }

    /// Out-of-span code translates into spill-indexed blocks: sorted
    /// entries, memo re-hits, pending buffer for out-of-order inserts,
    /// and write invalidation over the spill bounds.
    #[test]
    fn out_of_span_blocks_use_sorted_spill_index() {
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Ret,
        ];
        // Two copies far apart, both outside the (empty) flat span.
        let (mut mem, len) = memory_with(&insts, 0x500000);
        let (mem2, _) = memory_with(&insts, 0x700000);
        for a in 0..len {
            mem.write_u8(0x700000 + a, mem2.read_u8(0x700000 + a));
        }
        let mut c = cache_over(0, 0); // no flat span at all
        assert!(!c.in_span(0x500000));
        // Translate high first, then low: the low insert is out of order
        // and lands in the pending buffer.
        let hi = c.translate(&mem, 0x700000).unwrap();
        let lo = c.translate(&mem, 0x500000).unwrap();
        assert_eq!(c.spill.main.len(), 1);
        assert_eq!(c.spill.pending.len(), 1, "out-of-order insert buffered");
        assert_eq!(c.lookup(0x700000), Some(hi));
        assert_eq!(c.lookup(0x500000), Some(lo), "pending entries resolvable");
        assert_eq!(c.lookup(0x500000 + 1), None);
        c.spill.merge();
        assert!(c.spill.pending.is_empty());
        assert!(c.spill.main.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        assert_eq!(c.lookup(0x500000), Some(lo));
        // A store far from both regions leaves the blocks alone; one
        // into the spill bounds invalidates.
        c.note_write(0x400000, 8);
        assert!(!c.is_dirty(), "unrelated store ignored");
        c.note_write(0x700004, 8);
        assert!(c.is_dirty(), "store into spill text invalidates");
        c.reclaim();
        assert_eq!(c.lookup(0x500000), None);
        assert_eq!(c.lookup(0x700000), None);
    }

    /// Uop mode packs like superblock mode and keeps the micro-op pool
    /// parallel to the decoded pool across blocks, invalidation, and
    /// retranslation.
    #[test]
    fn uop_mode_lowers_a_parallel_pool() {
        let m = Mem::BaseDisp {
            base: Reg::R10,
            disp: 16,
        };
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Load {
                dst: Reg::Rcx,
                mem: m,
            },
            Inst::AluI {
                op: AluOp::Add,
                dst: Reg::Rcx,
                imm: 3,
            },
            Inst::Ret,
        ];
        let (mem, len) = memory_with(&insts, 0x400000);
        let mut c = BlockCache::default();
        c.ensure_span(0x400000, len as usize, TranslationMode::Uop);
        let idx = c.translate(&mem, 0x400000).unwrap();
        assert_eq!(c.event(idx).inst_count, 4, "packs like a superblock");
        assert_eq!(c.uops.len(), c.insts.len(), "pools parallel");
        let (range, _) = c.inst_range(idx);
        assert_eq!(
            c.uop(range.start).kind,
            crate::uop::UopKind::MovRI,
            "entries line up with the decoded pool"
        );
        assert_eq!(c.uop(range.start + 1).kind, crate::uop::UopKind::LoadBD);
        assert_eq!(c.uop(range.start + 1).imm, 16, "disp pre-resolved");
        assert_eq!(
            c.shapes(idx).len(),
            2,
            "uop mode records D-side shapes (load + ret's pop) like superblock mode"
        );
        // Invalidation + retranslation keeps the pools in lockstep.
        c.invalidate();
        c.reclaim();
        assert!(c.uops.is_empty(), "uop pool reclaimed with the rest");
        let idx = c.translate(&mem, 0x400000).unwrap();
        assert_eq!(c.event(idx).inst_count, 4);
        assert_eq!(c.uops.len(), c.insts.len());
    }

    #[test]
    fn undecodable_entry_fails_like_a_fetch() {
        let mem = Memory::new(); // zeros do not decode
        let mut c = cache_over(0x400000, 64);
        assert_eq!(
            c.translate(&mem, 0x400000),
            Err(EmuError::BadInstruction { rip: 0x400000 })
        );
    }

    #[test]
    fn undecodable_tail_ends_the_block_early() {
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 7,
            },
            Inst::MovRI {
                dst: Reg::Rcx,
                imm: 8,
            },
        ];
        let (mem, len) = memory_with(&insts, 0x400000);
        // Span extends past the encoded bytes; the zeros after them fail
        // to decode and end the block without failing the translation.
        let mut c = cache_over(0x400000, len as usize + 32);
        let idx = c.translate(&mem, 0x400000).unwrap();
        assert_eq!(c.event(idx).inst_count, 2);
    }
}
