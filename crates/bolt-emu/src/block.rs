//! The basic-block translation cache behind [`Machine::run_blocks`].
//!
//! Per-instruction emulation pays a decode-cache probe, an interpreter
//! dispatch, and a sink callback for every retired instruction. Real
//! binary translators amortize that cost across basic blocks: decode a
//! straight-line run once, then execute the pre-decoded entries in a
//! tight loop. This module holds the cache itself — packed [`Block`]
//! descriptors indexed by entry `rip` over the machine's flat text span,
//! with the decoded instructions, per-instruction fetch records, and the
//! precomputed I-side line footprint in shared pools.
//!
//! Two properties keep the block engine *observationally identical* to
//! stepping (see `tests/engine_invariance.rs`):
//!
//! * **Blocks end at the first control transfer or memory-touching
//!   instruction.** Every `on_mem`/`on_branch` event a block produces
//!   therefore comes from its final instruction, so charging the whole
//!   fetch footprint up front (one [`BlockEvent`] before the block
//!   executes) presents sinks with exactly the event order of
//!   per-instruction stepping — including the relative order of I-side
//!   and D-side accesses through shared cache levels.
//! * **Blocks self-invalidate on stores into text.** Since a store is
//!   always a block's last instruction, invalidation never happens while
//!   a block is mid-execution; the pools are reclaimed at the next block
//!   boundary and the patched bytes are retranslated, matching the step
//!   engine's (also invalidated) decode cache.
//!
//! [`Machine::run_blocks`]: crate::Machine::run_blocks

use crate::{BlockEvent, EmuError, Memory};
use bolt_isa::{decode, Inst};
use std::ops::Range;

/// Longest straight-line run a single block may hold. Blocks usually end
/// far earlier (at a branch or memory access); the cap bounds
/// translation latency for degenerate compute-only runs.
const MAX_BLOCK_INSTS: usize = 64;

/// One translated basic block: a packed descriptor into the cache's
/// shared pools.
#[derive(Debug)]
struct Block {
    /// Address of the first instruction.
    entry: u64,
    /// Range into the instruction/fetch pools.
    insts: Range<u32>,
    /// Range into the line-footprint pool: the 64-byte-aligned line
    /// addresses `[entry, entry + byte_len)` spans, ascending.
    lines: Range<u32>,
    /// Total bytes the block's instructions occupy.
    byte_len: u32,
    inst_count: u32,
    /// Fetches straddling a 64-byte line boundary.
    crossings64: u32,
}

/// Whether `inst` must be the last instruction of its block: control
/// transfers and program exits (so a block has at most one successor),
/// plus memory-touching instructions (so all D-side events come from a
/// block's final instruction — the ordering guarantee batched I-side
/// charging depends on).
fn ends_block(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Jcc { .. }
            | Inst::Jmp { .. }
            | Inst::JmpInd { .. }
            | Inst::Call { .. }
            | Inst::CallInd { .. }
            | Inst::Ret
            | Inst::RepzRet
            | Inst::Ud2
            | Inst::Syscall
            | Inst::Push(_)
            | Inst::Pop(_)
            | Inst::Load { .. }
            | Inst::Store { .. }
    )
}

/// The translation cache: entry-`rip`-indexed [`Block`]s over the
/// machine's flat text span, with pooled storage.
#[derive(Debug, Default)]
pub(crate) struct BlockCache {
    /// `entry_rip - base` → block index + 1 (`0` = untranslated). Sized
    /// lazily to the machine's flat text span on the first block-engine
    /// run, so step-only machines pay nothing.
    index: Vec<u32>,
    base: u64,
    blocks: Vec<Block>,
    /// Decoded `(inst, len)` entries, packed across all blocks.
    insts: Vec<(Inst, u8)>,
    /// Per-instruction `(addr, len)` fetch records, parallel to `insts`.
    fetches: Vec<(u64, u8)>,
    /// Pooled 64-byte line footprints.
    lines: Vec<u64>,
    /// Set by [`invalidate`](Self::invalidate); pools are rebuilt at the
    /// next block boundary ([`reclaim`](Self::reclaim)), never while a
    /// block is executing out of them.
    dirty: bool,
}

impl BlockCache {
    /// Drops everything — called by `Machine::reset`.
    pub(crate) fn clear(&mut self) {
        self.index.clear();
        self.base = 0;
        self.blocks.clear();
        self.insts.clear();
        self.fetches.clear();
        self.lines.clear();
        self.dirty = false;
    }

    /// Sizes the entry index to the machine's flat text span (no-op when
    /// already sized, e.g. a machine reused across runs of one image).
    pub(crate) fn ensure_span(&mut self, base: u64, span: usize) {
        if self.base != base || self.index.len() != span {
            self.clear();
            self.base = base;
            self.index = vec![0; span];
        }
    }

    /// Whether `rip` lies inside the indexed text span (out-of-span code
    /// executes through the step fallback).
    pub(crate) fn in_span(&self, rip: u64) -> bool {
        rip.checked_sub(self.base)
            .is_some_and(|o| (o as usize) < self.index.len())
    }

    /// The translated block entered at `rip`, if any.
    pub(crate) fn lookup(&self, rip: u64) -> Option<u32> {
        let o = rip.checked_sub(self.base)? as usize;
        let e = *self.index.get(o)?;
        (e != 0).then(|| e - 1)
    }

    /// Unmaps every block (a store landed in text). Pool storage stays
    /// intact until [`reclaim`](Self::reclaim) so a currently-executing
    /// block's packed entries remain valid.
    pub(crate) fn invalidate(&mut self) {
        if !self.blocks.is_empty() {
            self.index.fill(0);
            self.dirty = true;
        }
    }

    /// Rebuilds the pools after an invalidation. Called between blocks.
    pub(crate) fn reclaim(&mut self) {
        if self.dirty {
            self.blocks.clear();
            self.insts.clear();
            self.fetches.clear();
            self.lines.clear();
            self.dirty = false;
        }
    }

    /// Translates the straight-line run starting at `entry` (which must
    /// be in span): decodes up to the first block-ending instruction or
    /// [`MAX_BLOCK_INSTS`], packs the entries, and precomputes the
    /// 64-byte line footprint and crossing count.
    ///
    /// # Errors
    ///
    /// [`EmuError::BadInstruction`] if the bytes at `entry` itself do
    /// not decode — exactly when a step-engine fetch would fail. A later
    /// undecodable instruction just ends the block early; execution
    /// reaches it as its own (failing) entry only if control actually
    /// gets there.
    pub(crate) fn translate(&mut self, mem: &Memory, entry: u64) -> Result<u32, EmuError> {
        debug_assert!(self.in_span(entry), "translate requires an in-span entry");
        let insts_start = self.insts.len();
        let mut at = entry;
        let mut crossings = 0u32;
        let mut buf = [0u8; 16];
        loop {
            mem.read(at, &mut buf);
            let d = match decode(&buf, at) {
                Ok(d) => d,
                Err(_) if at == entry => return Err(EmuError::BadInstruction { rip: entry }),
                Err(_) => break,
            };
            self.insts.push((d.inst, d.len));
            self.fetches.push((at, d.len));
            if (at >> 6) != ((at + d.len as u64 - 1) >> 6) {
                crossings += 1;
            }
            at += d.len as u64;
            // A block never extends to instructions starting outside the
            // indexed span: out-of-span code executes through the step
            // fallback (whose spill cache has its own invalidation
            // bounds), and text-write invalidation only watches the span
            // itself plus one instruction length of slack.
            if ends_block(&d.inst)
                || self.insts.len() - insts_start >= MAX_BLOCK_INSTS
                || !self.in_span(at)
            {
                break;
            }
        }
        let lines_start = self.lines.len();
        let mut line = (entry >> 6) << 6;
        while line < at {
            self.lines.push(line);
            line += 64;
        }
        let idx = self.blocks.len() as u32;
        self.blocks.push(Block {
            entry,
            insts: insts_start as u32..self.insts.len() as u32,
            lines: lines_start as u32..self.lines.len() as u32,
            byte_len: (at - entry) as u32,
            inst_count: (self.insts.len() - insts_start) as u32,
            crossings64: crossings,
        });
        self.index[(entry - self.base) as usize] = idx + 1;
        Ok(idx)
    }

    /// The pool range holding block `idx`'s instructions, and its entry.
    pub(crate) fn inst_range(&self, idx: u32) -> (Range<usize>, u64) {
        let b = &self.blocks[idx as usize];
        (b.insts.start as usize..b.insts.end as usize, b.entry)
    }

    /// One packed instruction entry.
    #[inline]
    pub(crate) fn inst(&self, i: usize) -> (Inst, u8) {
        self.insts[i]
    }

    /// The batched trace event describing block `idx`.
    pub(crate) fn event(&self, idx: u32) -> BlockEvent<'_> {
        let b = &self.blocks[idx as usize];
        BlockEvent {
            entry: b.entry,
            inst_count: b.inst_count,
            byte_len: b.byte_len,
            fetches: &self.fetches[b.insts.start as usize..b.insts.end as usize],
            lines64: &self.lines[b.lines.start as usize..b.lines.end as usize],
            crossings64: b.crossings64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_isa::{encode_at, AluOp, Mem, Reg};

    /// Encodes `insts` contiguously at `base` into a fresh memory.
    fn memory_with(insts: &[Inst], base: u64) -> (Memory, u64) {
        let mut mem = Memory::new();
        let mut at = base;
        for i in insts {
            let e = encode_at(i, at).unwrap();
            mem.write(at, &e.bytes);
            at += e.bytes.len() as u64;
        }
        (mem, at - base)
    }

    fn cache_over(base: u64, span: usize) -> BlockCache {
        let mut c = BlockCache::default();
        c.ensure_span(base, span);
        c
    }

    #[test]
    fn straight_line_run_ends_at_control_transfer() {
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::AluI {
                op: AluOp::Add,
                dst: Reg::Rax,
                imm: 2,
            },
            Inst::Ret,
            Inst::Nop { len: 1 },
        ];
        let (mem, len) = memory_with(&insts, 0x400000);
        let mut c = cache_over(0x400000, len as usize);
        let idx = c.translate(&mem, 0x400000).unwrap();
        let ev = c.event(idx);
        assert_eq!(ev.inst_count, 3, "block stops at (and includes) ret");
        assert_eq!(ev.entry, 0x400000);
        assert_eq!(ev.fetches.len(), 3);
        assert_eq!(ev.fetches[0].0, 0x400000);
        let span: u32 = ev.fetches.iter().map(|&(_, l)| l as u32).sum();
        assert_eq!(ev.byte_len, span);
        assert_eq!(c.lookup(0x400000), Some(idx), "entry indexed");
        assert_eq!(c.lookup(0x400001), None, "interior rips not indexed");
    }

    #[test]
    fn memory_touching_instructions_end_blocks() {
        // mov; load; mov; store; mov; ret — D-side events must always
        // come from a block's last instruction.
        let m = Mem::BaseDisp {
            base: Reg::R10,
            disp: 0,
        };
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Load {
                dst: Reg::Rcx,
                mem: m,
            },
            Inst::MovRI {
                dst: Reg::Rdx,
                imm: 2,
            },
            Inst::Store {
                mem: m,
                src: Reg::Rdx,
            },
            Inst::Ret,
        ];
        let (mem, len) = memory_with(&insts, 0x400000);
        let mut c = cache_over(0x400000, len as usize);
        let mut entry = 0x400000;
        let mut counts = Vec::new();
        while c.in_span(entry) {
            let idx = c.translate(&mem, entry).unwrap();
            let ev = c.event(idx);
            counts.push(ev.inst_count);
            entry += ev.byte_len as u64;
        }
        assert_eq!(counts, [2, 2, 1], "mov+load | mov+store | ret");
    }

    #[test]
    fn line_footprint_and_crossings_precomputed() {
        // 7-byte movs starting 3 bytes before a 64-byte boundary: the
        // first instruction straddles it.
        let base = 0x400040 - 3;
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::MovRI {
                dst: Reg::Rcx,
                imm: 2,
            },
            Inst::Ret,
        ];
        let (mem, len) = memory_with(&insts, base);
        let mut c = cache_over(base, len as usize);
        let ev_idx = c.translate(&mem, base).unwrap();
        let ev = c.event(ev_idx);
        assert_eq!(ev.crossings64, 1, "first mov straddles the boundary");
        assert_eq!(ev.lines64, &[0x400000, 0x400040], "both lines spanned");
    }

    #[test]
    fn invalidate_unmaps_but_reclaims_only_between_blocks() {
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Ret,
        ];
        let (mem, len) = memory_with(&insts, 0x400000);
        let mut c = cache_over(0x400000, len as usize);
        let idx = c.translate(&mem, 0x400000).unwrap();
        c.invalidate();
        assert_eq!(c.lookup(0x400000), None, "mapping gone immediately");
        assert_eq!(
            c.event(idx).inst_count,
            2,
            "packed entries stay valid until reclaim"
        );
        c.reclaim();
        assert!(c.blocks.is_empty() && c.insts.is_empty() && c.lines.is_empty());
        // Retranslation after reclaim works.
        let idx = c.translate(&mem, 0x400000).unwrap();
        assert_eq!(c.event(idx).inst_count, 2);
    }

    /// Blocks stop at the indexed span's end even when the bytes beyond
    /// it keep decoding: out-of-span code must execute through the step
    /// fallback, whose caches have their own text-write invalidation
    /// bounds (translating past the span would cache instructions no
    /// store could ever invalidate).
    #[test]
    fn translation_never_extends_past_the_indexed_span() {
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::MovRI {
                dst: Reg::Rcx,
                imm: 2,
            },
            Inst::MovRI {
                dst: Reg::Rdx,
                imm: 3,
            },
            Inst::Ret,
        ];
        let (mem, len) = memory_with(&insts, 0x400000);
        // Span covers only the first two instructions; the rest decodes
        // fine but lies outside.
        let span = 14usize; // two 7-byte movs
        assert!((span as u64) < len);
        let mut c = cache_over(0x400000, span);
        let idx = c.translate(&mem, 0x400000).unwrap();
        let ev = c.event(idx);
        assert_eq!(ev.inst_count, 2, "block bounded by the span end");
        assert_eq!(ev.byte_len as usize, span);
    }

    #[test]
    fn undecodable_entry_fails_like_a_fetch() {
        let mem = Memory::new(); // zeros do not decode
        let mut c = cache_over(0x400000, 64);
        assert_eq!(
            c.translate(&mem, 0x400000),
            Err(EmuError::BadInstruction { rip: 0x400000 })
        );
    }

    #[test]
    fn undecodable_tail_ends_the_block_early() {
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 7,
            },
            Inst::MovRI {
                dst: Reg::Rcx,
                imm: 8,
            },
        ];
        let (mem, len) = memory_with(&insts, 0x400000);
        // Span extends past the encoded bytes; the zeros after them fail
        // to decode and end the block without failing the translation.
        let mut c = cache_over(0x400000, len as usize + 32);
        let idx = c.translate(&mem, 0x400000).unwrap();
        assert_eq!(c.event(idx).inst_count, 2);
    }
}
