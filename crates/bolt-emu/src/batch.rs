//! Sharded batch emulation: N independent invocations of one workload
//! binary across scoped worker threads.
//!
//! Emulation is the dominant wall-clock cost of every measurement in the
//! reproduction (the paper's subjects are data-center-scale binaries;
//! ours are emulated instruction by instruction). A [`ShardPlan`]
//! describes a batch of independent runs — each shard gets its own
//! freshly-loaded [`Machine`] and its own sink — and [`run_batch`]
//! executes them across `std::thread::scope` workers, the same sharding
//! discipline `bolt-passes::run_function_pass` uses for the optimizer.
//!
//! Determinism: shards never share mutable state (one machine, one sink,
//! one output vector each), workers own contiguous shard ranges, and
//! results are returned in shard-index order, so a batch is byte-for-byte
//! identical at any worker count. Workers *reuse* one machine across
//! their shards; [`Machine::load_elf`] fully resets it between runs.

use crate::{resolve_engine, EmuError, Engine, Machine, RunResult, TraceSink};
use bolt_elf::Elf;

/// Hard ceiling on the shard count, mirroring the worker ceiling of
/// `bolt-passes::resolve_threads`: a garbled `BOLT_SHARDS` request must
/// degrade to something bounded.
const MAX_SHARDS: usize = 4096;

/// Describes a batch of independent emulation runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of independent invocations.
    pub shards: usize,
    /// Worker threads to spread the shards over. This is an *effective*
    /// count (resolve knobs like `BOLT_THREADS` before building the
    /// plan, e.g. via `bolt-passes::resolve_threads`); `0` or `1` runs
    /// the batch serially on the calling thread. The batch result is
    /// byte-identical at any value.
    pub threads: usize,
    /// Per-shard step budget.
    pub max_steps: u64,
    /// Execution engine for every shard. `None` (the default) resolves
    /// via [`resolve_engine`] — the `BOLT_ENGINE` environment override
    /// or per-instruction stepping. All four engines produce
    /// byte-identical batch results; this only changes the wall clock.
    pub engine: Option<Engine>,
}

impl ShardPlan {
    /// A serial plan of `shards` runs with the default step budget.
    pub fn new(shards: usize) -> ShardPlan {
        ShardPlan {
            shards: shards.max(1),
            threads: 1,
            max_steps: u64::MAX,
            engine: None,
        }
    }

    /// Sets the worker count.
    pub fn with_threads(mut self, threads: usize) -> ShardPlan {
        self.threads = threads;
        self
    }

    /// Sets the per-shard step budget.
    pub fn with_max_steps(mut self, max_steps: u64) -> ShardPlan {
        self.max_steps = max_steps;
        self
    }

    /// Pins the execution engine (overriding the `BOLT_ENGINE` default).
    pub fn with_engine(mut self, engine: Engine) -> ShardPlan {
        self.engine = Some(engine);
        self
    }

    /// Effective worker count: never more workers than shards.
    pub fn workers(&self) -> usize {
        self.threads.max(1).min(self.shards.max(1))
    }
}

/// Resolves a shard-count knob.
///
/// * `shards >= 1`: that many shards (clamped to a 4096 ceiling).
/// * `shards == 0` (auto): the `BOLT_SHARDS` environment override if set
///   and positive, else `1` (serial measurement, the paper's default) —
///   unlike worker threads, the shard count changes *what* is measured
///   (how the workload is partitioned), so it never silently follows
///   machine parallelism.
pub fn resolve_shards(shards: usize) -> usize {
    if shards > 0 {
        return shards.min(MAX_SHARDS);
    }
    if let Ok(v) = std::env::var("BOLT_SHARDS") {
        match v.trim().parse::<usize>() {
            Ok(0) => {}
            Ok(n) => return n.min(MAX_SHARDS),
            // Mirror resolve_threads: a set-but-garbled override fails
            // loudly instead of silently de-sharding a CI leg.
            Err(_) => panic!("BOLT_SHARDS must be a non-negative integer, got {v:?}"),
        }
    }
    1
}

/// Resolves a per-shard step-budget knob.
///
/// * `explicit = Some(n)`: that budget, verbatim (a CLI flag wins over
///   the environment).
/// * `explicit = None`: the `BOLT_MAX_STEPS` environment override if
///   set and positive, else `default`.
///
/// The env knob exists so a hung workload can be diagnosed without a
/// rebuild: cap the budget, let the run die with a `DidNotExit` error
/// that names the budget, and bisect from there. Mirrors
/// [`resolve_shards`]: a set-but-garbled override fails loudly instead
/// of silently running unbounded.
pub fn resolve_max_steps(explicit: Option<u64>, default: u64) -> u64 {
    if let Some(n) = explicit {
        return n;
    }
    if let Ok(v) = std::env::var("BOLT_MAX_STEPS") {
        match v.trim().parse::<u64>() {
            Ok(0) => {}
            Ok(n) => return n,
            Err(_) => panic!("BOLT_MAX_STEPS must be a non-negative integer, got {v:?}"),
        }
    }
    default
}

/// One completed shard: its index, run result, observable output, and
/// the sink that consumed its trace.
#[derive(Debug)]
pub struct ShardRun<S> {
    pub shard: usize,
    pub result: RunResult,
    /// The program's emit-syscall output for this shard.
    pub output: Vec<i64>,
    pub sink: S,
}

/// Runs `plan.shards` independent invocations of `elf`, sharded across
/// `plan.workers()` scoped threads. For each shard index `i`,
/// `make_sink(i)` builds the shard's trace sink and `prepare(i, &mut m)`
/// runs after `load_elf` (patch a seed word, set registers, …) before
/// the shard executes. Results come back in shard-index order.
///
/// Each worker owns one contiguous range of shard indices and reuses a
/// single [`Machine`] across them ([`Machine::load_elf`] fully resets
/// it), so the batch output is byte-identical at any worker count.
///
/// # Errors
///
/// The first failing shard's [`EmuError`], by shard index.
pub fn run_batch<S, F, P>(
    elf: &Elf,
    plan: &ShardPlan,
    make_sink: F,
    prepare: P,
) -> Result<Vec<ShardRun<S>>, EmuError>
where
    S: TraceSink + Send,
    F: Fn(usize) -> S + Sync,
    P: Fn(usize, &mut Machine) + Sync,
{
    let shards = plan.shards.max(1);
    let workers = plan.workers();
    let engine = resolve_engine(plan.engine);

    let run_range = |range: std::ops::Range<usize>| -> Result<Vec<ShardRun<S>>, EmuError> {
        let mut machine = Machine::new();
        let mut done = Vec::with_capacity(range.len());
        for shard in range {
            machine.load_elf(elf);
            prepare(shard, &mut machine);
            let mut sink = make_sink(shard);
            let result = machine.run_engine(&mut sink, plan.max_steps, engine)?;
            done.push(ShardRun {
                shard,
                result,
                output: std::mem::take(&mut machine.output),
                sink,
            });
        }
        Ok(done)
    };

    if workers <= 1 {
        return run_range(0..shards);
    }

    // Contiguous shard ranges per worker; joined in worker order, so
    // the flattened result is in shard-index order and the first error
    // (by shard index) wins deterministically.
    let chunk = shards.div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(shards);
                let run_range = &run_range;
                scope.spawn(move || run_range(lo..hi))
            })
            .collect();
        let mut all = Vec::with_capacity(shards);
        let mut first_err = None;
        for h in handles {
            match h.join().expect("batch emulation worker") {
                Ok(done) => {
                    if first_err.is_none() {
                        all.extend(done);
                    }
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(all),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountingSink, Exit, NullSink};
    use bolt_isa::{encode_at, Inst, Reg};

    /// A binary that emits the value stored at `0x500000` (the "seed
    /// word") and exits with it: shards are distinguishable only through
    /// `prepare`.
    fn seed_echo_elf() -> Elf {
        let insts = [
            Inst::MovRI {
                dst: Reg::R10,
                imm: 0x500000,
            },
            Inst::Load {
                dst: Reg::Rdi,
                mem: bolt_isa::Mem::BaseDisp {
                    base: Reg::R10,
                    disp: 0,
                },
            },
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Syscall,
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 60,
            },
            Inst::Syscall,
        ];
        let mut code = Vec::new();
        let mut at = 0x400000u64;
        for i in &insts {
            let e = encode_at(i, at).unwrap();
            at += e.bytes.len() as u64;
            code.extend(e.bytes);
        }
        let mut elf = Elf::new(0x400000);
        elf.sections
            .push(bolt_elf::Section::code(".text", 0x400000, code));
        // The seed word lives in a writable data section.
        elf.sections
            .push(bolt_elf::Section::data(".data", 0x500000, vec![0; 8]));
        elf
    }

    fn seed_of(shard: usize) -> i64 {
        1000 + shard as i64
    }

    fn run_plan(plan: &ShardPlan) -> Vec<ShardRun<CountingSink>> {
        run_batch(
            &seed_echo_elf(),
            plan,
            |_| CountingSink::default(),
            |shard, m| m.mem.write_u64(0x500000, seed_of(shard) as u64),
        )
        .expect("batch runs")
    }

    #[test]
    fn shards_see_their_own_seed_and_keep_index_order() {
        let runs = run_plan(&ShardPlan::new(9).with_threads(4));
        assert_eq!(runs.len(), 9);
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.shard, i, "results in shard-index order");
            assert_eq!(r.output, vec![seed_of(i)]);
            assert_eq!(r.result.exit, Exit::Exited(seed_of(i)));
        }
    }

    #[test]
    fn batch_identical_at_any_worker_count() {
        let baseline: Vec<_> = run_plan(&ShardPlan::new(8))
            .into_iter()
            .map(|r| (r.shard, r.result, r.output, r.sink.insts))
            .collect();
        for threads in [2, 3, 8, 64] {
            let got: Vec<_> = run_plan(&ShardPlan::new(8).with_threads(threads))
                .into_iter()
                .map(|r| (r.shard, r.result, r.output, r.sink.insts))
                .collect();
            assert_eq!(got, baseline, "threads={threads}");
        }
    }

    #[test]
    fn step_budget_is_per_shard() {
        let plan = ShardPlan::new(3).with_threads(2).with_max_steps(2);
        let runs = run_batch(&seed_echo_elf(), &plan, |_| NullSink, |_, _| ()).unwrap();
        for r in &runs {
            assert_eq!(r.result.exit, Exit::MaxSteps);
            assert_eq!(r.result.steps, 2);
        }
    }

    #[test]
    fn first_shard_error_by_index_wins() {
        // Poison shard 5 (and 6) by zeroing their code page: zeros fail
        // to decode. The reported rip must be shard 5's entry regardless
        // of worker scheduling.
        let plan = ShardPlan::new(8).with_threads(4);
        let err = run_batch(
            &seed_echo_elf(),
            &plan,
            |_| NullSink,
            |shard, m| {
                if shard >= 5 {
                    m.mem.write(0x400000, &[0u8; 64]);
                }
            },
        )
        .unwrap_err();
        assert_eq!(err, EmuError::BadInstruction { rip: 0x400000 });
    }

    #[test]
    fn resolve_shards_explicit_env_and_clamp() {
        assert_eq!(resolve_shards(7), 7);
        assert_eq!(resolve_shards(1_000_000), MAX_SHARDS);
        // 0 with no env (or env handled by CI): at least one shard.
        assert!(resolve_shards(0) >= 1);
    }

    #[test]
    fn resolve_max_steps_explicit_wins_and_default_falls_through() {
        assert_eq!(resolve_max_steps(Some(42), 7), 42);
        assert_eq!(resolve_max_steps(Some(u64::MAX), 7), u64::MAX);
        // With no env set (CI never sets BOLT_MAX_STEPS), the default
        // flows through; with it set, any positive value is accepted —
        // either way the result is positive.
        assert!(resolve_max_steps(None, 7) > 0);
    }

    #[test]
    fn workers_never_exceed_shards() {
        assert_eq!(ShardPlan::new(3).with_threads(16).workers(), 3);
        assert_eq!(ShardPlan::new(16).with_threads(4).workers(), 4);
        assert_eq!(ShardPlan::new(5).with_threads(0).workers(), 1);
    }
}
