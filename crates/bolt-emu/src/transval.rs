//! Symbolic translation validation: proving cached block translations
//! semantically equivalent to the step semantics of the bytes they were
//! decoded from.
//!
//! [`crate::symexec`] supplies the machinery — a canonicalizing term
//! language plus one abstract evaluator per execution tier. This module
//! runs both evaluators from a common initial state and compares the
//! resulting [`SymState`]s observable by observable:
//!
//! * the final symbolic register file,
//! * the flags at every observation point (consumers, store/push
//!   liveness barriers, block exit) — this is where a dead-marked live
//!   flag writer surfaces,
//! * the *ordered* list of symbolic memory effects (address, width,
//!   value) — which also proves the superblock tier's recorded shape
//!   list announces the interleaved event order faithfully,
//! * the terminator's condition/target expression.
//!
//! The reference side is always a fresh decode of the block's bytes, so
//! the check catches corruption anywhere downstream of the decoder: a
//! cached instruction pool that drifted from the bytes, a micro-op
//! lowering bug, a bad liveness mark, a wrong shape record. Structural
//! validation (`uop::validate_block`) checks the pools against *each
//! other*; this layer checks them against *meaning*.
//!
//! Enabled per-translation via `BOLT_SEM_VALIDATE=1` /
//! `bolt-run --validate-semantics` (each block proven once, when it is
//! translated), or offline over raw code bytes via [`validate_code`]
//! (the `bolt -verify-sem` sweep).

use crate::block::{BlockCache, MemShape, TranslationMode};
use crate::exec::EmuError;
use crate::memory::Memory;
use crate::symexec::{sym_block_insts, sym_block_uops, SymState};
use crate::uop::MicroOp;
use bolt_isa::Inst;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// What kind of semantic disagreement a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemFindingKind {
    /// Cached instruction count disagrees with the reference decode.
    LengthMismatch,
    /// The cached block's bytes no longer decode.
    DecodeMismatch,
    /// A final register value diverges.
    RegMismatch,
    /// The flags observable at some point diverge.
    FlagMismatch,
    /// A memory effect's address or stored value diverges.
    MemEffectMismatch,
    /// The memory-effect event order (or the recorded shape list)
    /// diverges.
    EffectOrderMismatch,
    /// The block exit — branch condition, target, or kind — diverges.
    TerminatorMismatch,
}

impl SemFindingKind {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            SemFindingKind::LengthMismatch => "length-mismatch",
            SemFindingKind::DecodeMismatch => "decode-mismatch",
            SemFindingKind::RegMismatch => "reg-mismatch",
            SemFindingKind::FlagMismatch => "flag-mismatch",
            SemFindingKind::MemEffectMismatch => "mem-effect-mismatch",
            SemFindingKind::EffectOrderMismatch => "effect-order-mismatch",
            SemFindingKind::TerminatorMismatch => "terminator-mismatch",
        }
    }
}

/// One semantic disagreement between a translation and the step
/// semantics of its bytes.
#[derive(Debug, Clone)]
pub struct SemFinding {
    pub kind: SemFindingKind,
    /// Entry address of the offending block.
    pub entry: u64,
    /// Instruction index within the block the disagreement attributes
    /// to.
    pub inst: u32,
    /// The two disagreeing terms, rendered.
    pub detail: String,
}

impl fmt::Display for SemFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at block {:#x} inst {}: {}",
            self.kind.as_str(),
            self.entry,
            self.inst,
            self.detail
        )
    }
}

/// Proves one translation semantically equivalent to `reference` (a
/// fresh decode of the block's bytes). `cached` is the translation's
/// instruction pool; `uops`, when present, is the parallel micro-op
/// pool (uop tier) and becomes the evaluated side; `shapes`, when
/// present, is the recorded static memory-shape list (spanning tiers)
/// and is checked against the reference's effect order. Returns every
/// disagreement found (empty = proven equivalent).
pub fn validate_translation(
    entry: u64,
    reference: &[(Inst, u8)],
    cached: &[(Inst, u8)],
    uops: Option<&[MicroOp]>,
    shapes: Option<&[MemShape]>,
) -> Vec<SemFinding> {
    let mut out = Vec::new();
    let finding = |kind, inst, detail| SemFinding {
        kind,
        entry,
        inst,
        detail,
    };
    if reference.len() != cached.len() {
        return vec![finding(
            SemFindingKind::LengthMismatch,
            0,
            format!(
                "reference decodes {} instructions, translation holds {}",
                reference.len(),
                cached.len()
            ),
        )];
    }
    let a = sym_block_insts(reference, entry);
    let b = match uops {
        Some(uops) => sym_block_uops(uops, entry),
        None => sym_block_insts(cached, entry),
    };
    compare_states(entry, &a, &b, &mut out);
    if let Some(shapes) = shapes {
        // The recorded shape list announces the D-side event order to
        // the superblock engine's batched charging; prove it against
        // the reference's symbolic effect list.
        let want: Vec<(u32, bool)> = a.effects.iter().map(|e| (e.inst, e.write)).collect();
        let got: Vec<(u32, bool)> = shapes.iter().map(|s| (s.inst, s.write)).collect();
        if want != got {
            let at = want
                .iter()
                .zip(&got)
                .position(|(w, g)| w != g)
                .unwrap_or(want.len().min(got.len()));
            let inst = got.get(at).or(want.get(at)).map_or(0, |e| e.0);
            out.push(finding(
                SemFindingKind::EffectOrderMismatch,
                inst,
                format!(
                    "recorded shape list {got:?} disagrees with semantic effect order {want:?}"
                ),
            ));
        }
    }
    out
}

/// Compares the two final symbolic states observable by observable.
fn compare_states(entry: u64, a: &SymState, b: &SymState, out: &mut Vec<SemFinding>) {
    let finding = |kind, inst, detail| SemFinding {
        kind,
        entry,
        inst,
        detail,
    };
    for i in 0..16 {
        if a.regs[i] != b.regs[i] {
            let writer = b.reg_writer[i].min(a.reg_writer[i]);
            let name =
                bolt_isa::Reg::from_num(i as u8).map_or_else(|| format!("r{i}"), |r| r.to_string());
            out.push(finding(
                SemFindingKind::RegMismatch,
                writer,
                format!(
                    "final {name}: step semantics say {}, translation says {}",
                    a.regs[i], b.regs[i]
                ),
            ));
        }
    }
    let checks = a.flag_checks.len().max(b.flag_checks.len());
    for i in 0..checks {
        match (a.flag_checks.get(i), b.flag_checks.get(i)) {
            (Some(x), Some(y)) if x == y => {}
            (Some(x), Some(y)) => {
                out.push(finding(
                    SemFindingKind::FlagMismatch,
                    y.inst.min(x.inst),
                    format!(
                        "flags observed at inst {}: step semantics say {}, translation says {}",
                        x.inst, x.flags, y.flags
                    ),
                ));
            }
            (Some(x), None) => {
                out.push(finding(
                    SemFindingKind::FlagMismatch,
                    x.inst,
                    format!("translation lost the flags observation at inst {}", x.inst),
                ));
            }
            (None, Some(y)) => {
                out.push(finding(
                    SemFindingKind::FlagMismatch,
                    y.inst,
                    format!("translation observes flags at inst {} where step semantics have no observation", y.inst),
                ));
            }
            (None, None) => unreachable!(),
        }
    }
    if a.exit_flags != b.exit_flags {
        out.push(finding(
            SemFindingKind::FlagMismatch,
            u32::MAX,
            format!(
                "flags at block exit: step semantics say {}, translation says {}",
                a.exit_flags, b.exit_flags
            ),
        ));
    }
    let effects = a.effects.len().max(b.effects.len());
    for i in 0..effects {
        match (a.effects.get(i), b.effects.get(i)) {
            (Some(x), Some(y)) => {
                if (x.inst, x.write) != (y.inst, y.write) {
                    out.push(finding(
                        SemFindingKind::EffectOrderMismatch,
                        y.inst,
                        format!(
                            "memory effect #{i}: step semantics emit a {} by inst {}, \
                             translation a {} by inst {}",
                            rw(x.write),
                            x.inst,
                            rw(y.write),
                            y.inst
                        ),
                    ));
                    // Order is broken; element-wise address/value
                    // comparison past this point is noise.
                    break;
                }
                if x.addr != y.addr || x.width != y.width {
                    out.push(finding(
                        SemFindingKind::MemEffectMismatch,
                        y.inst,
                        format!(
                            "{} address at inst {}: step semantics say {} ({} bytes), \
                             translation says {} ({} bytes)",
                            rw(x.write),
                            x.inst,
                            x.addr,
                            x.width,
                            y.addr,
                            y.width
                        ),
                    ));
                }
                if x.value != y.value {
                    let none = || "<none>".to_string();
                    out.push(finding(
                        SemFindingKind::MemEffectMismatch,
                        y.inst,
                        format!(
                            "stored value at inst {}: step semantics say {}, translation says {}",
                            x.inst,
                            x.value.as_ref().map_or_else(none, |v| v.to_string()),
                            y.value.as_ref().map_or_else(none, |v| v.to_string()),
                        ),
                    ));
                }
            }
            (Some(x), None) => {
                out.push(finding(
                    SemFindingKind::EffectOrderMismatch,
                    x.inst,
                    format!(
                        "translation lost memory effect #{i} ({} by inst {})",
                        rw(x.write),
                        x.inst
                    ),
                ));
                break;
            }
            (None, Some(y)) => {
                out.push(finding(
                    SemFindingKind::EffectOrderMismatch,
                    y.inst,
                    format!(
                        "translation emits extra memory effect #{i} ({} by inst {})",
                        rw(y.write),
                        y.inst
                    ),
                ));
                break;
            }
            (None, None) => unreachable!(),
        }
    }
    if a.terminator != b.terminator {
        out.push(finding(
            SemFindingKind::TerminatorMismatch,
            u32::MAX,
            format!(
                "step semantics exit via `{}`, translation via `{}`",
                a.terminator, b.terminator
            ),
        ));
    }
}

fn rw(write: bool) -> &'static str {
    if write {
        "write"
    } else {
        "read"
    }
}

// ---------------------------------------------------------------------------
// Process-wide knob, mirroring the structural validator's.

/// 0 = unresolved, 1 = off, 2 = on.
static SEM_VALIDATE: AtomicU8 = AtomicU8::new(0);

/// Turns on per-translation semantic validation for the whole process
/// (`bolt-run --validate-semantics`). Sticky: there is no off switch,
/// so measurement baselines must be taken before enabling.
pub fn enable_sem_validation() {
    SEM_VALIDATE.store(2, Ordering::Relaxed);
}

/// Whether per-translation semantic validation is on, resolving the
/// `BOLT_SEM_VALIDATE` environment knob on first use.
pub fn sem_validation_enabled() -> bool {
    match SEM_VALIDATE.load(Ordering::Relaxed) {
        0 => {
            let on = std::env::var("BOLT_SEM_VALIDATE").is_ok_and(|v| v != "0" && !v.is_empty());
            SEM_VALIDATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        1 => false,
        _ => true,
    }
}

/// Sweeps `code` (placed at `base`) through every translation tier —
/// block, superblock, and uop — walking block to block and proving each
/// translation against a fresh decode of its bytes. The offline entry
/// point behind `bolt -verify-sem`.
pub fn validate_code(code: &[u8], base: u64) -> Vec<SemFinding> {
    let mut out = Vec::new();
    for mode in [
        TranslationMode::Block,
        TranslationMode::Superblock,
        TranslationMode::Uop,
    ] {
        let mut mem = Memory::new();
        mem.write(base, code);
        let mut cache = BlockCache::default();
        cache.ensure_span(base, code.len(), mode);
        let mut at = base;
        while at < base + code.len() as u64 {
            let idx = match cache.translate(&mem, at) {
                Ok(idx) => idx,
                // Padding or data between functions: skip a byte and
                // try the next offset, as the offline sweep has no
                // control flow to follow.
                Err(EmuError::BadInstruction { .. }) => {
                    at += 1;
                    continue;
                }
                Err(_) => break,
            };
            out.extend(cache.validate_semantics(&mem, idx));
            at += cache.byte_len(idx).max(1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::translation_shapes;
    use crate::uop::lower_into;
    use bolt_isa::{encode_at, AluOp, Cond, Mem, Reg, Target};

    fn with_len(insts: &[Inst]) -> Vec<(Inst, u8)> {
        insts
            .iter()
            .map(|&i| (i, bolt_isa::encoded_len(&i) as u8))
            .collect()
    }

    fn faithful(insts: &[(Inst, u8)]) -> (Vec<MicroOp>, Vec<MemShape>) {
        let mut uops = Vec::new();
        lower_into(&mut uops, insts);
        (uops, translation_shapes(insts))
    }

    #[test]
    fn faithful_translation_proves_clean() {
        let insts = with_len(&[
            Inst::Push(Reg::Rbp),
            Inst::MovRR {
                dst: Reg::Rbp,
                src: Reg::Rsp,
            },
            Inst::Load {
                dst: Reg::Rax,
                mem: Mem::base(Reg::Rdi, 16),
            },
            Inst::AluI {
                op: AluOp::Add,
                dst: Reg::Rax,
                imm: 7,
            },
            Inst::Store {
                mem: Mem::base(Reg::Rdi, 24),
                src: Reg::Rax,
            },
            Inst::Pop(Reg::Rbp),
            Inst::Ret,
        ]);
        let (uops, shapes) = faithful(&insts);
        let f = validate_translation(0x400000, &insts, &insts, Some(&uops), Some(&shapes));
        assert!(f.is_empty(), "unexpected findings: {f:?}");
        // Same without the uop pool (block/superblock tiers).
        let f = validate_translation(0x400000, &insts, &insts, None, Some(&shapes));
        assert!(f.is_empty(), "unexpected findings: {f:?}");
    }

    #[test]
    fn drifted_cached_pool_is_caught() {
        let reference = with_len(&[
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 5,
            },
            Inst::Ret,
        ]);
        let mut cached = reference.clone();
        cached[0].0 = Inst::MovRI {
            dst: Reg::Rax,
            imm: 6,
        };
        let f = validate_translation(0x400000, &reference, &cached, None, None);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, SemFindingKind::RegMismatch);
        assert_eq!(f[0].inst, 0);
    }

    #[test]
    fn wrong_shape_order_is_caught() {
        let insts = with_len(&[
            Inst::Load {
                dst: Reg::Rax,
                mem: Mem::base(Reg::Rdi, 0),
            },
            Inst::Store {
                mem: Mem::base(Reg::Rsi, 0),
                src: Reg::Rax,
            },
            Inst::Ret,
        ]);
        let (uops, mut shapes) = faithful(&insts);
        shapes.swap(0, 1);
        let f = validate_translation(0x400000, &insts, &insts, Some(&uops), Some(&shapes));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, SemFindingKind::EffectOrderMismatch);
    }

    #[test]
    fn offline_sweep_is_clean_on_real_encodings() {
        // A small function with a loop, flags consumed across
        // instructions, and stack traffic — encoded to real bytes and
        // swept through all three tiers.
        let insts = [
            Inst::Push(Reg::Rbx),
            Inst::MovRI {
                dst: Reg::Rbx,
                imm: 0,
            },
            Inst::AluI {
                op: AluOp::Add,
                dst: Reg::Rbx,
                imm: 3,
            },
            Inst::AluI {
                op: AluOp::Cmp,
                dst: Reg::Rbx,
                imm: 9,
            },
            Inst::Jcc {
                cond: Cond::B,
                target: Target::Addr(0),
                width: Default::default(),
            },
            Inst::Setcc {
                cond: Cond::E,
                dst: Reg::Rax,
            },
            Inst::Pop(Reg::Rbx),
            Inst::Ret,
        ];
        let base = 0x400000u64;
        // Lay out, resolving the backward branch to the `add`.
        let mut code = Vec::new();
        let mut addrs = Vec::new();
        let mut at = base;
        for inst in &insts {
            addrs.push(at);
            let enc = encode_at(inst, at).unwrap();
            at += enc.bytes.len() as u64;
            code.extend_from_slice(&enc.bytes);
        }
        let mut code2 = Vec::new();
        let mut at2 = base;
        for (i, inst) in insts.iter().enumerate() {
            let mut inst = *inst;
            if let Inst::Jcc { target, .. } = &mut inst {
                *target = Target::Addr(addrs[2]);
            }
            let enc = encode_at(&inst, at2).unwrap();
            assert_eq!(at2, addrs[i]);
            at2 += enc.bytes.len() as u64;
            code2.extend_from_slice(&enc.bytes);
        }
        code = code2;
        let f = validate_code(&code, base);
        assert!(f.is_empty(), "unexpected findings: {f:?}");
    }
}
