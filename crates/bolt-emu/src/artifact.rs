//! Durable on-disk artifact framing: the container format every
//! crash-safe interchange file in the project uses (per-shard profiles,
//! counters, combined shard-run records).
//!
//! Process-level sharding only works if a reducer can trust what it
//! reads back from disk: a worker may be OOM-killed mid-write, a disk
//! may tear a page, an operator may point the supervisor at a stale
//! directory. The framing makes every such failure *detectable* —
//! nothing that fails [`validate`] is ever merged — and the atomic
//! write protocol ([`write_atomic`]) makes the common cases
//! *impossible*: a file at the final path is either absent or was
//! completely written, because the bytes land under a temporary name
//! and only reach the real name via `rename(2)`.
//!
//! Layout (all little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic "BLTA"
//!      4     2  format version
//!      6     2  artifact kind (what the payload encodes)
//!      8     8  payload length
//!     16     4  CRC32 (IEEE) over bytes 4..16 and the payload
//!     20     n  payload
//! ```
//!
//! The CRC covers the version, kind, and length fields as well as the
//! payload, so a single bit flip *anywhere* after the magic is caught
//! (CRC32 detects all single-bit and all burst-<=32 errors); magic
//! flips are caught by the magic check itself. The file must end
//! exactly at `20 + len` — trailing garbage is rejected, so a torn
//! append can't smuggle bytes past the checksum.

use std::io::{self, Write};
use std::path::Path;

/// File magic: "BLTA" (BoLT Artifact).
pub const MAGIC: [u8; 4] = *b"BLTA";
/// Current format version. Decoders reject any other value.
pub const FORMAT_VERSION: u16 = 1;
/// Framed header length in bytes.
pub const HEADER_LEN: usize = 20;

/// Registry of artifact kinds, so independent encoders can never
/// collide on a kind id.
pub const KIND_PROFILE: u16 = 1;
pub const KIND_COUNTERS: u16 = 2;
pub const KIND_SHARD_RUN: u16 = 3;

/// Everything that can be wrong with an artifact's bytes. Every
/// variant is a *rejection*: the reducer treats the artifact as absent
/// and the shard as incomplete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// Shorter than the fixed header.
    TooShort { len: usize },
    /// First four bytes are not [`MAGIC`].
    BadMagic,
    /// Format version this decoder does not understand.
    BadVersion { found: u16 },
    /// The artifact is valid but encodes a different kind of payload.
    WrongKind { found: u16, expected: u16 },
    /// Header length disagrees with the actual byte count (truncated
    /// or extended file).
    LengthMismatch { header: u64, actual: u64 },
    /// Checksum failure: the bytes were altered after encoding.
    CrcMismatch { stored: u32, computed: u32 },
    /// The framed payload itself failed to decode.
    Malformed(&'static str),
    /// The file could not be read at all.
    Io(String),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::TooShort { len } => {
                write!(
                    f,
                    "artifact too short ({len} bytes, header is {HEADER_LEN})"
                )
            }
            ArtifactError::BadMagic => write!(f, "bad artifact magic (want \"BLTA\")"),
            ArtifactError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported artifact version {found} (want {FORMAT_VERSION})"
                )
            }
            ArtifactError::WrongKind { found, expected } => {
                write!(f, "artifact kind {found}, expected {expected}")
            }
            ArtifactError::LengthMismatch { header, actual } => {
                write!(
                    f,
                    "artifact length mismatch: header says {header}, file has {actual}"
                )
            }
            ArtifactError::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "artifact CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            ArtifactError::Malformed(what) => write!(f, "malformed artifact payload: {what}"),
            ArtifactError::Io(e) => write!(f, "artifact io: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// CRC32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the
/// `zlib`/`cksum -o3` polynomial. Bitwise implementation: artifacts
/// are small and written once per shard, so table generation isn't
/// worth the cache footprint.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// CRC over the checksummed span of a frame: header bytes 4..16
/// (version, kind, length) followed by the payload.
fn frame_crc(version: u16, kind: u16, payload: &[u8]) -> u32 {
    let mut span = Vec::with_capacity(12 + payload.len());
    span.extend_from_slice(&version.to_le_bytes());
    span.extend_from_slice(&kind.to_le_bytes());
    span.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    span.extend_from_slice(payload);
    crc32(&span)
}

/// Frames `payload` as a kind-`kind` artifact.
pub fn frame(kind: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&frame_crc(FORMAT_VERSION, kind, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates magic, version, length, and CRC; returns the artifact
/// kind. This is the supervisor's completeness check — it needs to
/// know an artifact is whole without understanding its payload.
pub fn validate(bytes: &[u8]) -> Result<u16, ArtifactError> {
    if bytes.len() < HEADER_LEN {
        return Err(ArtifactError::TooShort { len: bytes.len() });
    }
    if bytes[0..4] != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(ArtifactError::BadVersion { found: version });
    }
    let kind = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let actual = (bytes.len() - HEADER_LEN) as u64;
    if len != actual {
        return Err(ArtifactError::LengthMismatch {
            header: len,
            actual,
        });
    }
    let stored = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    let computed = frame_crc(version, kind, &bytes[HEADER_LEN..]);
    if stored != computed {
        return Err(ArtifactError::CrcMismatch { stored, computed });
    }
    Ok(kind)
}

/// [`validate`], then checks the kind and returns the payload slice.
pub fn unframe(bytes: &[u8], expected: u16) -> Result<&[u8], ArtifactError> {
    let found = validate(bytes)?;
    if found != expected {
        return Err(ArtifactError::WrongKind { found, expected });
    }
    Ok(&bytes[HEADER_LEN..])
}

/// Writes `bytes` to `path` atomically: the bytes land in a
/// same-directory temporary file, are flushed and fsynced, and only
/// then renamed over the final path. A reader (or a resumed
/// supervisor) can therefore never observe a half-written artifact at
/// `path` — the worst a crash leaves behind is a stale `.tmp.*` file,
/// which the supervisor sweeps on startup.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// The temporary sibling `write_atomic` stages into. Includes the pid
/// so two processes racing on one shard (a retried worker overlapping
/// a hung one) never clobber each other's staging file.
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    path.with_file_name(format!("{name}.tmp.{}", std::process::id()))
}

/// Reads and unframes a kind-`expected` artifact file.
pub fn read_payload(path: &Path, expected: u16) -> Result<Vec<u8>, ArtifactError> {
    let bytes = std::fs::read(path).map_err(|e| ArtifactError::Io(e.to_string()))?;
    let payload = unframe(&bytes, expected)?;
    Ok(payload.to_vec())
}

/// Reads and validates an artifact file without interpreting it;
/// returns its kind.
pub fn validate_file(path: &Path) -> Result<u16, ArtifactError> {
    let bytes = std::fs::read(path).map_err(|e| ArtifactError::Io(e.to_string()))?;
    validate(&bytes)
}

/// A little-endian payload cursor for artifact decoders. Every read
/// is bounds-checked; [`ByteReader::finish`] enforces that the payload
/// was consumed exactly, so a short or padded payload can't decode to
/// a plausible-looking value.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    pub fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ArtifactError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ArtifactError::Malformed(what))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self, what: &'static str) -> Result<u8, ArtifactError> {
        Ok(self.bytes(1, what)?[0])
    }

    pub fn u32(&mut self, what: &'static str) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.bytes(4, what)?.try_into().unwrap()))
    }

    pub fn u64(&mut self, what: &'static str) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.bytes(8, what)?.try_into().unwrap()))
    }

    pub fn i64(&mut self, what: &'static str) -> Result<i64, ArtifactError> {
        Ok(self.u64(what)? as i64)
    }

    /// A length prefix used to size an upcoming vector: bounds it by
    /// the bytes actually remaining so a corrupt count can't trigger a
    /// huge allocation before the per-element reads fail.
    pub fn count(&mut self, elem_size: usize, what: &'static str) -> Result<usize, ArtifactError> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(elem_size.max(1)) > self.buf.len() - self.pos {
            return Err(ArtifactError::Malformed(what));
        }
        Ok(n)
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self, what: &'static str) -> Result<(), ArtifactError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ArtifactError::Malformed(what))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trips() {
        let payload = b"hello artifact".to_vec();
        let framed = frame(KIND_PROFILE, &payload);
        assert_eq!(validate(&framed), Ok(KIND_PROFILE));
        assert_eq!(unframe(&framed, KIND_PROFILE).unwrap(), &payload[..]);
        assert_eq!(
            unframe(&framed, KIND_COUNTERS),
            Err(ArtifactError::WrongKind {
                found: KIND_PROFILE,
                expected: KIND_COUNTERS
            })
        );
    }

    #[test]
    fn empty_payload_frames() {
        let framed = frame(KIND_COUNTERS, &[]);
        assert_eq!(framed.len(), HEADER_LEN);
        assert_eq!(unframe(&framed, KIND_COUNTERS).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let framed = frame(KIND_SHARD_RUN, b"payload bytes under test");
        for i in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[i] ^= 1 << bit;
                assert!(
                    validate(&bad).is_err(),
                    "flip byte {i} bit {bit} must be rejected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_and_extension_is_rejected() {
        let framed = frame(KIND_PROFILE, b"0123456789abcdef");
        for keep in 0..framed.len() {
            assert!(validate(&framed[..keep]).is_err(), "prefix {keep}");
        }
        let mut extended = framed.clone();
        extended.push(0);
        assert!(matches!(
            validate(&extended),
            Err(ArtifactError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn atomic_write_round_trips_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("bolt-artifact-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.bolta");
        let framed = frame(KIND_PROFILE, b"data");
        write_atomic(&path, &framed).unwrap();
        assert_eq!(read_payload(&path, KIND_PROFILE).unwrap(), b"data");
        assert!(!tmp_path(&path).exists(), "tmp staging file renamed away");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reader_rejects_overruns_and_slack() {
        let buf = [1u8, 0, 0, 0, 0, 0, 0, 0];
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u64("v").unwrap(), 1);
        assert!(r.u8("past end").is_err());
        // Slack: payload not fully consumed.
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u32("v").unwrap(), 1);
        assert!(r.finish("slack").is_err());
        // Oversized count prefix rejected before allocation.
        let mut r = ByteReader::new(&buf);
        assert!(r.count(1 << 20, "count").is_err());
    }
}
