//! A sorted spill index shared by the decode cache and the block
//! translation cache: key → value entries sorted by key, probed with a
//! last-hit memo then binary search, with out-of-order inserts buffered
//! in a capacity-bounded pending vector and folded in by one sorted
//! merge pass — so cold decode/translation of a wide image in
//! call-graph order pays amortized merges instead of an O(len)
//! `Vec::insert` memmove per new entry.

/// Out-of-order inserts buffered before a merge — bounds the per-insert
/// memmove to this many entries and the merge count to
/// `main_len / SPILL_PENDING_CAP`.
const SPILL_PENDING_CAP: usize = 1024;

/// Sorted-by-key map with last-hit memo and bounded pending buffer.
///
/// Fields are crate-visible so unit tests can assert the internal
/// shape (sortedness, which side an insert landed on).
#[derive(Debug)]
pub(crate) struct SpillIndex<T> {
    /// Sorted main vector.
    pub(crate) main: Vec<(u64, T)>,
    /// Out-of-order inserts, sorted, merged into `main` when full.
    pub(crate) pending: Vec<(u64, T)>,
    /// Index of the `main` entry most recently hit; sequential keys hit
    /// `memo` or `memo + 1` without searching.
    memo: usize,
}

// Manual impl: the derive would needlessly require `T: Default`.
impl<T> Default for SpillIndex<T> {
    fn default() -> SpillIndex<T> {
        SpillIndex {
            main: Vec::new(),
            pending: Vec::new(),
            memo: 0,
        }
    }
}

impl<T: Copy> SpillIndex<T> {
    /// Total cached entries (main + pending). Only assertions need
    /// this; production code never counts entries.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.main.len() + self.pending.len()
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.main.is_empty() && self.pending.is_empty()
    }

    pub(crate) fn clear(&mut self) {
        self.main.clear();
        self.pending.clear();
        self.memo = 0;
    }

    /// The value stored under `key`, if any: memo probe first (a
    /// sequential key lands on `memo` or, advancing, `memo + 1`), then
    /// binary search of the main vector and the pending buffer.
    #[inline]
    pub(crate) fn lookup(&mut self, key: u64) -> Option<T> {
        for probe in [self.memo, self.memo + 1] {
            if let Some(&(at, hit)) = self.main.get(probe) {
                if at == key {
                    self.memo = probe;
                    return Some(hit);
                }
            }
        }
        if let Ok(i) = self.main.binary_search_by_key(&key, |e| e.0) {
            self.memo = i;
            return Some(self.main[i].1);
        }
        if let Ok(i) = self.pending.binary_search_by_key(&key, |e| e.0) {
            return Some(self.pending[i].1);
        }
        None
    }

    /// Inserts `key → value`. Ascending keys (sequential cold decode or
    /// translation, the common case) append to the sorted main vector;
    /// out-of-order keys go through the bounded pending buffer.
    pub(crate) fn insert(&mut self, key: u64, value: T) {
        match self.main.last() {
            Some(&(last, _)) if key < last => {
                let i = self
                    .pending
                    .binary_search_by_key(&key, |e| e.0)
                    .unwrap_err();
                self.pending.insert(i, (key, value));
                if self.pending.len() >= SPILL_PENDING_CAP {
                    self.merge();
                }
            }
            _ => {
                self.main.push((key, value));
                self.memo = self.main.len() - 1;
            }
        }
    }

    /// Folds the pending buffer into the sorted main vector (one sorted
    /// merge pass).
    pub(crate) fn merge(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let old = std::mem::take(&mut self.main);
        let pending = std::mem::take(&mut self.pending);
        let mut merged = Vec::with_capacity(old.len() + pending.len());
        let mut a = old.into_iter().peekable();
        let mut b = pending.into_iter().peekable();
        while let (Some(&(ka, _)), Some(&(kb, _))) = (a.peek(), b.peek()) {
            merged.push(if ka <= kb {
                a.next().unwrap()
            } else {
                b.next().unwrap()
            });
        }
        merged.extend(a);
        merged.extend(b);
        self.main = merged;
        self.memo = 0;
    }

    /// `(lowest key, highest key)` across both vectors, or `None` when
    /// empty. Pending keys always sort below the main vector's last key
    /// but can precede its first.
    pub(crate) fn bounds(&self) -> Option<(u64, u64)> {
        let (&(mut first, _), &(last, _)) = (self.main.first()?, self.main.last()?);
        if let Some(&(p, _)) = self.pending.first() {
            first = first.min(p);
        }
        Some((first, last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_appends_out_of_order_pends_and_merges() {
        let mut s = SpillIndex::default();
        s.insert(10, 'a');
        s.insert(20, 'b');
        assert_eq!(s.main.len(), 2);
        s.insert(5, 'c'); // below main's last -> pending
        assert_eq!((s.main.len(), s.pending.len()), (2, 1));
        assert_eq!(s.lookup(10), Some('a'), "main hits");
        assert_eq!(s.lookup(5), Some('c'), "pending entries resolvable");
        assert_eq!(s.lookup(11), None);
        assert_eq!(s.bounds(), Some((5, 20)), "bounds span pending");
        s.merge();
        assert!(s.pending.is_empty());
        assert!(s.main.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        assert_eq!(s.lookup(5), Some('c'));
        s.clear();
        assert_eq!(s.bounds(), None);
    }

    #[test]
    fn memo_rehits_sequential_keys() {
        let mut s = SpillIndex::default();
        for k in 0..10u64 {
            s.insert(k * 4, k);
        }
        // Two sequential sweeps: the second resolves through memo/memo+1.
        for _ in 0..2 {
            for k in 0..10u64 {
                assert_eq!(s.lookup(k * 4), Some(k));
            }
        }
    }

    #[test]
    fn pending_cap_forces_merge() {
        let mut s = SpillIndex::default();
        s.insert(u64::MAX - 1, 0u32); // pin main's last high
        for k in 0..SPILL_PENDING_CAP as u64 {
            s.insert(k, k as u32);
        }
        assert!(s.pending.is_empty(), "cap reached -> merged");
        assert_eq!(s.main.len(), SPILL_PENDING_CAP + 1);
        assert!(s.main.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
