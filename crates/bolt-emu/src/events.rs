//! Trace events: the emulator's substitute for hardware performance
//! monitoring (retired instructions, LBR-visible branches, memory
//! accesses).

/// The kind of a control-transfer event. Matches what Intel LBRs can record
/// (paper section 5.1): taken branches, including calls and returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional direct branch.
    Cond,
    /// Unconditional direct branch.
    Uncond,
    /// Indirect jump (jump table dispatch, PLT stub).
    IndirectJump,
    /// Direct call.
    Call,
    /// Indirect call.
    IndirectCall,
    /// Return.
    Return,
}

impl BranchKind {
    /// Whether this kind is a call or return (used when building call
    /// graphs from LBRs, paper section 5.3).
    pub fn is_call_or_return(self) -> bool {
        matches!(
            self,
            BranchKind::Call | BranchKind::IndirectCall | BranchKind::Return
        )
    }
}

/// One control-transfer event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchEvent {
    /// Address of the branch instruction.
    pub from: u64,
    /// Destination address (the fall-through address when not taken).
    pub to: u64,
    /// Whether the branch was taken. Only `Cond` branches can be
    /// not-taken; LBR hardware records taken branches only.
    pub taken: bool,
    pub kind: BranchKind,
}

/// One data-memory access made by an instruction inside a batched
/// block event, with its effective address resolved at execute time.
///
/// The superblock and uop engines record these while the block
/// executes (the static shape — which instruction accesses memory,
/// read or write — is known at translation time; only the address is
/// dynamic) and deliver them interleaved with the fetch records so
/// sinks observe exactly the step engine's event order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRecord {
    /// Index into [`BlockEvent::fetches`] of the accessing instruction.
    pub inst: u32,
    /// Resolved effective address.
    pub addr: u64,
    /// Access width in bytes.
    pub len: u8,
    /// `true` for stores, `false` for loads.
    pub write: bool,
}

/// A batched retirement event: `inst_count` consecutive instructions of
/// a translated basic block, covering the straight-line byte range
/// `[entry, entry + byte_len)`.
///
/// Emitted by the block-level execution engines. Under
/// [`Machine::run_blocks`] blocks end at the first control transfer *or*
/// memory-touching instruction, every `on_mem`/`on_branch` event a block
/// produces comes from its last instruction, and `mems` is empty — so a
/// sink that charges the whole fetch footprint here observes exactly
/// the event order of per-instruction stepping. Under
/// [`Machine::run_superblocks`] (and [`Machine::run_uops`], which
/// shares its translation and batching) blocks span memory-touching
/// instructions and the event carries the executed instructions' memory
/// accesses in `mems`, interleaved with the fetches by instruction
/// index; replaying fetch `i` then its memory records reproduces the
/// step engine's order exactly (a block's terminating branch event, if
/// any, is delivered live right after the block event).
///
/// [`Machine::run_blocks`]: crate::Machine::run_blocks
/// [`Machine::run_superblocks`]: crate::Machine::run_superblocks
/// [`Machine::run_uops`]: crate::Machine::run_uops
#[derive(Debug, Clone, Copy)]
pub struct BlockEvent<'a> {
    /// Address of the block's first instruction.
    pub entry: u64,
    /// Instructions retired by this event.
    pub inst_count: u32,
    /// Total bytes the block's instructions occupy.
    pub byte_len: u32,
    /// Per-instruction `(addr, len)` fetch records in retirement order —
    /// replaying `on_inst` over these (interleaved with `mems`) is
    /// exactly equivalent to this event (the default implementation
    /// does just that). The block engines always emit at least one
    /// fetch; sinks treat an empty slice as "nothing retired".
    pub fetches: &'a [(u64, u8)],
    /// The 64-byte-aligned line addresses the block's bytes span,
    /// ascending — the I-side cache footprint, precomputed at
    /// translation time for sinks modeling 64-byte lines.
    pub lines64: &'a [u64],
    /// Number of fetches straddling a 64-byte line boundary (each such
    /// fetch touches two lines).
    pub crossings64: u32,
    /// Data-memory accesses of the block's instructions in program
    /// order, each tagged with the index of its fetch (superblock and
    /// uop engines; empty under the plain block engine).
    pub mems: &'a [MemRecord],
}

impl BlockEvent<'_> {
    /// Replays this event as its equivalent per-instruction
    /// [`on_inst`](TraceSink::on_inst) / [`on_mem`](TraceSink::on_mem)
    /// sequence — fetch `i` first, then instruction `i`'s memory
    /// records — the exact-equivalence fallback shared by every sink's
    /// `on_block` slow path (and the trait's default implementation).
    #[inline]
    pub fn replay<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        let mut mi = 0usize;
        for (i, &(addr, len)) in self.fetches.iter().enumerate() {
            sink.on_inst(addr, len);
            while let Some(m) = self.mems.get(mi) {
                if m.inst as usize != i {
                    break;
                }
                sink.on_mem(m.addr, m.len, m.write);
                mi += 1;
            }
        }
    }
}

/// A consumer of the emulator's event stream.
///
/// The microarchitecture simulator, the LBR sampler, and the plain IP
/// sampler all implement this; composite sinks fan events out.
pub trait TraceSink {
    /// An instruction retired at `addr`, occupying `len` bytes.
    #[inline]
    fn on_inst(&mut self, addr: u64, len: u8) {
        let _ = (addr, len);
    }

    /// A translated basic block retired (block execution engine only).
    /// The default replays [`on_inst`](Self::on_inst) per fetch record,
    /// so a sink that never overrides this behaves identically under
    /// either engine; overriding it lets a sink amortize per-instruction
    /// work across the block.
    #[inline]
    fn on_block(&mut self, ev: BlockEvent<'_>) {
        ev.replay(self);
    }

    /// A control-transfer instruction executed.
    #[inline]
    fn on_branch(&mut self, ev: BranchEvent) {
        let _ = ev;
    }

    /// A data memory access.
    #[inline]
    fn on_mem(&mut self, addr: u64, len: u8, write: bool) {
        let _ = (addr, len, write);
    }
}

/// A sink that discards all events.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    /// Discarding a batched event outright (instead of replaying it
    /// into per-instruction no-ops) keeps the block engines' null-sink
    /// cost at the dispatch itself.
    #[inline]
    fn on_block(&mut self, _ev: BlockEvent<'_>) {}
}

/// Fans events out to two sinks (compose for more).
pub struct Tee<'a, A: ?Sized, B: ?Sized>(pub &'a mut A, pub &'a mut B);

impl<A: TraceSink + ?Sized, B: TraceSink + ?Sized> TraceSink for Tee<'_, A, B> {
    #[inline]
    fn on_inst(&mut self, addr: u64, len: u8) {
        self.0.on_inst(addr, len);
        self.1.on_inst(addr, len);
    }

    #[inline]
    fn on_block(&mut self, ev: BlockEvent<'_>) {
        self.0.on_block(ev);
        self.1.on_block(ev);
    }

    #[inline]
    fn on_branch(&mut self, ev: BranchEvent) {
        self.0.on_branch(ev);
        self.1.on_branch(ev);
    }

    #[inline]
    fn on_mem(&mut self, addr: u64, len: u8, write: bool) {
        self.0.on_mem(addr, len, write);
        self.1.on_mem(addr, len, write);
    }
}

/// A sink that counts events (useful in tests and quick stats).
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    pub insts: u64,
    pub branches: u64,
    pub taken_branches: u64,
    pub cond_branches: u64,
    pub taken_cond_branches: u64,
    pub calls: u64,
    pub returns: u64,
    pub mem_reads: u64,
    pub mem_writes: u64,
}

impl TraceSink for CountingSink {
    #[inline]
    fn on_inst(&mut self, _addr: u64, _len: u8) {
        self.insts += 1;
    }

    #[inline]
    fn on_block(&mut self, ev: BlockEvent<'_>) {
        self.insts += ev.inst_count as u64;
        for m in ev.mems {
            if m.write {
                self.mem_writes += 1;
            } else {
                self.mem_reads += 1;
            }
        }
    }

    #[inline]
    fn on_branch(&mut self, ev: BranchEvent) {
        self.branches += 1;
        if ev.taken {
            self.taken_branches += 1;
        }
        match ev.kind {
            BranchKind::Cond => {
                self.cond_branches += 1;
                if ev.taken {
                    self.taken_cond_branches += 1;
                }
            }
            BranchKind::Call | BranchKind::IndirectCall => self.calls += 1,
            BranchKind::Return => self.returns += 1,
            _ => {}
        }
    }

    #[inline]
    fn on_mem(&mut self, _addr: u64, _len: u8, write: bool) {
        if write {
            self.mem_writes += 1;
        } else {
            self.mem_reads += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_tallies() {
        let mut s = CountingSink::default();
        s.on_inst(0x400000, 1);
        s.on_branch(BranchEvent {
            from: 0x400000,
            to: 0x400010,
            taken: true,
            kind: BranchKind::Cond,
        });
        s.on_branch(BranchEvent {
            from: 0x400002,
            to: 0x400004,
            taken: false,
            kind: BranchKind::Cond,
        });
        s.on_mem(0x500000, 8, true);
        assert_eq!(s.insts, 1);
        assert_eq!(s.branches, 2);
        assert_eq!(s.taken_branches, 1);
        assert_eq!(s.cond_branches, 2);
        assert_eq!(s.mem_writes, 1);
    }

    #[test]
    fn tee_duplicates() {
        let mut a = CountingSink::default();
        let mut b = CountingSink::default();
        let mut t = Tee(&mut a, &mut b);
        t.on_inst(0, 1);
        t.on_inst(1, 1);
        assert_eq!(a.insts, 2);
        assert_eq!(b.insts, 2);
    }

    #[test]
    fn on_block_default_replays_fetches() {
        struct PerInst(Vec<(u64, u8)>);
        impl TraceSink for PerInst {
            fn on_inst(&mut self, addr: u64, len: u8) {
                self.0.push((addr, len));
            }
        }
        let fetches = [(0x400000u64, 4u8), (0x400004, 2)];
        let ev = BlockEvent {
            entry: 0x400000,
            inst_count: 2,
            byte_len: 6,
            fetches: &fetches,
            lines64: &[0x400000],
            crossings64: 0,
            mems: &[],
        };
        let mut s = PerInst(Vec::new());
        s.on_block(ev);
        assert_eq!(s.0, fetches, "default on_block replays on_inst per fetch");
        let mut c = CountingSink::default();
        c.on_block(ev);
        assert_eq!(c.insts, 2, "counting sink batches the whole block");
        let mut a = CountingSink::default();
        let mut b = CountingSink::default();
        Tee(&mut a, &mut b).on_block(ev);
        assert_eq!((a.insts, b.insts), (2, 2), "tee fans the block out");
    }

    /// The replay fallback interleaves fetch and memory records by
    /// instruction index — the exact step-engine order — and the
    /// counting sink's batched path tallies both.
    #[test]
    fn on_block_interleaves_memory_records() {
        #[derive(Debug, PartialEq)]
        enum E {
            I(u64),
            M(u64, bool),
        }
        struct Log(Vec<E>);
        impl TraceSink for Log {
            fn on_inst(&mut self, addr: u64, _len: u8) {
                self.0.push(E::I(addr));
            }
            fn on_mem(&mut self, addr: u64, _len: u8, write: bool) {
                self.0.push(E::M(addr, write));
            }
        }
        let fetches = [(0x400000u64, 4u8), (0x400004, 3), (0x400007, 1)];
        let mems = [
            MemRecord {
                inst: 1,
                addr: 0x500000,
                len: 8,
                write: false,
            },
            MemRecord {
                inst: 2,
                addr: 0x500008,
                len: 8,
                write: true,
            },
            MemRecord {
                inst: 2,
                addr: 0x500010,
                len: 8,
                write: true,
            },
        ];
        let ev = BlockEvent {
            entry: 0x400000,
            inst_count: 3,
            byte_len: 8,
            fetches: &fetches,
            lines64: &[0x400000],
            crossings64: 0,
            mems: &mems,
        };
        let mut log = Log(Vec::new());
        log.on_block(ev);
        assert_eq!(
            log.0,
            vec![
                E::I(0x400000),
                E::I(0x400004),
                E::M(0x500000, false),
                E::I(0x400007),
                E::M(0x500008, true),
                E::M(0x500010, true),
            ],
            "fetch i precedes its own memory records, follows earlier ones"
        );
        let mut c = CountingSink::default();
        c.on_block(ev);
        assert_eq!((c.insts, c.mem_reads, c.mem_writes), (3, 1, 2));
    }

    #[test]
    fn call_return_classification() {
        assert!(BranchKind::Call.is_call_or_return());
        assert!(BranchKind::Return.is_call_or_return());
        assert!(!BranchKind::Cond.is_call_or_return());
    }
}
