//! # bolt-emu — functional emulator for the x86-64 subset
//!
//! Executes the ELF binaries produced by the compiler substrate and emits a
//! trace of retired instructions, control transfers, and memory accesses.
//! This stream is the reproduction's substitute for running on real
//! hardware: the LBR sampler (`bolt-profile`) and the microarchitecture
//! model (`bolt-sim`) both consume it through the [`TraceSink`] trait.
//!
//! Because the emulator is *functional* (registers, flags, memory, and
//! syscalls all behave architecturally), it doubles as the correctness
//! oracle for the whole project: a binary must produce byte-identical
//! output before and after BOLT rewrites it.

pub mod artifact;
mod batch;
mod block;
mod events;
mod exec;
mod memory;
mod spill;
pub mod supervise;
pub mod symexec;
pub mod transval;
mod uop;

/// Longest encodable instruction; text-write invalidation (decode and
/// block caches alike) treats any store within this many bytes past a
/// cached region as overlapping, since an instruction starting inside
/// the region can extend this far past it.
pub(crate) const MAX_INST_LEN: u64 = 16;

pub use artifact::ArtifactError;
pub use batch::{resolve_max_steps, resolve_shards, run_batch, ShardPlan, ShardRun};
pub use block::{translation_shapes, BlockTier, InjectedFault, MemShape, TierCounts};
pub use events::{
    BlockEvent, BranchEvent, BranchKind, CountingSink, MemRecord, NullSink, Tee, TraceSink,
};
pub use exec::{
    resolve_engine, EmuError, Engine, Exit, Flags, Machine, RunResult, RETURN_SENTINEL, STACK_TOP,
};
pub use memory::Memory;
pub use supervise::{
    run_supervised, ShardEvent, ShardEventKind, SuperviseOutcome, SupervisePlan, SuperviseReport,
};
pub use transval::{
    enable_sem_validation, sem_validation_enabled, validate_code, validate_translation, SemFinding,
    SemFindingKind,
};
pub use uop::{
    enable_uop_validation, lower_into, uop_validation_enabled, validate_block, MicroOp, UopKind,
};
