//! The functional emulator core.

use crate::{BranchEvent, BranchKind, Memory, TraceSink};
use bolt_isa::{decode, AluOp, Cond, Inst, Mem, Reg, Rm, ShiftOp, Target};
use std::collections::HashMap;
use std::fmt;

/// Fixed stack top for emulated programs.
pub const STACK_TOP: u64 = 0x7FFF_FF00_0000;
/// Return-address sentinel used by [`Machine::call_function`].
pub const RETURN_SENTINEL: u64 = 0xFFFF_FFFF_FFFF_FF00;

/// Arithmetic flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    pub zf: bool,
    pub sf: bool,
    pub of: bool,
    pub cf: bool,
    pub pf: bool,
}

impl Flags {
    /// Evaluates a condition code against the flags.
    pub fn cond(&self, c: Cond) -> bool {
        match c {
            Cond::O => self.of,
            Cond::No => !self.of,
            Cond::B => self.cf,
            Cond::Ae => !self.cf,
            Cond::E => self.zf,
            Cond::Ne => !self.zf,
            Cond::Be => self.cf || self.zf,
            Cond::A => !self.cf && !self.zf,
            Cond::S => self.sf,
            Cond::Ns => !self.sf,
            Cond::P => self.pf,
            Cond::Np => !self.pf,
            Cond::L => self.sf != self.of,
            Cond::Ge => self.sf == self.of,
            Cond::Le => self.zf || (self.sf != self.of),
            Cond::G => !self.zf && (self.sf == self.of),
        }
    }
}

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// The program invoked the exit syscall with this code.
    Exited(i64),
    /// The step budget ran out.
    MaxSteps,
    /// Control returned to the [`RETURN_SENTINEL`] (function-call mode).
    Returned,
}

/// Emulation errors (always fatal for the run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// Bytes at `rip` did not decode.
    BadInstruction { rip: u64 },
    /// `ud2` executed.
    Trap { rip: u64 },
    /// Unknown syscall number.
    BadSyscall { rip: u64, number: u64 },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::BadInstruction { rip } => write!(f, "undecodable instruction at {rip:#x}"),
            EmuError::Trap { rip } => write!(f, "trap (ud2) at {rip:#x}"),
            EmuError::BadSyscall { rip, number } => {
                write!(f, "unsupported syscall {number} at {rip:#x}")
            }
        }
    }
}

impl std::error::Error for EmuError {}

/// Result of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    pub exit: Exit,
    /// Instructions retired.
    pub steps: u64,
}

/// The emulated machine: registers, flags, memory, and a decode cache.
///
/// # Examples
///
/// ```
/// use bolt_emu::Machine;
/// use bolt_elf::{Elf, Section};
///
/// // A binary whose entry point immediately exits with code 7:
/// //   movq $60, %rax ; movq $7, %rdi ; syscall
/// let code = vec![
///     0x48, 0xC7, 0xC0, 0x3C, 0, 0, 0,
///     0x48, 0xC7, 0xC7, 0x07, 0, 0, 0,
///     0x0F, 0x05,
/// ];
/// let mut elf = Elf::new(0x400000);
/// elf.sections.push(Section::code(".text", 0x400000, code));
///
/// let mut m = Machine::new();
/// m.load_elf(&elf);
/// let r = m.run(&mut bolt_emu::NullSink, 100)?;
/// assert_eq!(r.exit, bolt_emu::Exit::Exited(7));
/// # Ok::<(), bolt_emu::EmuError>(())
/// ```
#[derive(Debug, Default)]
pub struct Machine {
    pub regs: [u64; 16],
    pub flags: Flags,
    pub rip: u64,
    pub mem: Memory,
    /// Values written by the emit syscall — the program's observable
    /// output (used to verify BOLT preserves semantics).
    pub output: Vec<i64>,
    /// Flat decode-cache index covering the loaded text segment: slot
    /// `rip - icache_base` holds `entry + 1` into `icache_entries`, or
    /// 0 while undecoded. One `u32` per text byte (only instruction
    /// starts ever fill in); decoded instructions live packed in
    /// `icache_entries`, so the per-byte cost stays 4 bytes regardless
    /// of `size_of::<Inst>()`.
    icache_index: Vec<u32>,
    icache_entries: Vec<(Inst, u8)>,
    icache_base: u64,
    /// Decode cache for code executed outside the loaded text span
    /// (tests poke code into memory directly, and images wider than
    /// [`ICACHE_MAX_SPAN`] fall back here entirely).
    icache_spill: HashMap<u64, (Inst, u8)>,
}

/// Largest text span (in bytes) the flat decode cache covers — 32 MiB
/// of index per machine at 4 bytes per text byte. An image with
/// executable sections spread wider falls back to the spill map.
const ICACHE_MAX_SPAN: u64 = 8 << 20;

impl Machine {
    pub fn new() -> Machine {
        Machine::default()
    }

    /// Resets all architectural and cached state — registers, flags,
    /// memory, recorded output, and the decode caches — returning the
    /// machine to its freshly-constructed state. Called by [`load_elf`]
    /// so a machine can be reused across independent runs (e.g. one
    /// worker emulating many shards) without state from a previous
    /// program leaking into the next.
    ///
    /// [`load_elf`]: Machine::load_elf
    pub fn reset(&mut self) {
        self.regs = [0; 16];
        self.flags = Flags::default();
        self.rip = 0;
        self.mem.clear();
        self.output.clear();
        self.icache_index.clear();
        self.icache_entries.clear();
        self.icache_base = 0;
        self.icache_spill.clear();
    }

    /// Loads all allocatable sections of an ELF image and initializes
    /// `rip`/`rsp`. The machine is fully [`reset`](Machine::reset)
    /// first: a reused machine behaves exactly like a fresh one.
    pub fn load_elf(&mut self, elf: &bolt_elf::Elf) {
        self.reset();
        for s in &elf.sections {
            if s.is_alloc() {
                self.mem.write(s.addr, &s.data);
            }
        }
        // Size the flat decode cache to the executable span.
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for s in &elf.sections {
            if s.is_alloc() && s.is_exec() && !s.data.is_empty() {
                lo = lo.min(s.addr);
                hi = hi.max(s.addr + s.data.len() as u64);
            }
        }
        if lo < hi && hi - lo <= ICACHE_MAX_SPAN {
            self.icache_base = lo;
            self.icache_index.resize((hi - lo) as usize, 0);
        }
        self.rip = elf.entry;
        self.set_reg(Reg::Rsp, STACK_TOP - 64);
    }

    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.num() as usize]
    }

    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.num() as usize] = v;
    }

    fn effective_addr(&self, mem: &Mem) -> u64 {
        match mem {
            Mem::BaseDisp { base, disp } => self.reg(*base).wrapping_add(*disp as i64 as u64),
            Mem::BaseIndexScale {
                base,
                index,
                scale,
                disp,
            } => self
                .reg(*base)
                .wrapping_add(self.reg(*index).wrapping_mul(*scale as u64))
                .wrapping_add(*disp as i64 as u64),
            Mem::RipRel { target } => match target {
                Target::Addr(a) => *a,
                Target::Label(_) => panic!("unresolved label reached the emulator"),
            },
        }
    }

    fn fetch(&mut self, rip: u64) -> Result<(Inst, u8), EmuError> {
        // Fast path: the flat index over the loaded text segment.
        let slot = rip
            .checked_sub(self.icache_base)
            .map(|o| o as usize)
            .filter(|&o| o < self.icache_index.len());
        if let Some(o) = slot {
            let e = self.icache_index[o];
            if e != 0 {
                return Ok(self.icache_entries[(e - 1) as usize]);
            }
        } else if let Some(&hit) = self.icache_spill.get(&rip) {
            return Ok(hit);
        }
        let mut buf = [0u8; 16];
        self.mem.read(rip, &mut buf);
        let d = decode(&buf, rip).map_err(|_| EmuError::BadInstruction { rip })?;
        match slot {
            Some(o) => {
                self.icache_entries.push((d.inst, d.len));
                self.icache_index[o] = self.icache_entries.len() as u32;
            }
            None => {
                self.icache_spill.insert(rip, (d.inst, d.len));
            }
        }
        Ok((d.inst, d.len))
    }

    fn set_flags_logic(&mut self, r: u64) {
        self.flags = Flags {
            zf: r == 0,
            sf: (r >> 63) != 0,
            of: false,
            cf: false,
            pf: (r as u8).count_ones() % 2 == 0,
        };
    }

    fn set_flags_sub(&mut self, a: u64, b: u64) -> u64 {
        let r = a.wrapping_sub(b);
        self.flags = Flags {
            zf: r == 0,
            sf: (r >> 63) != 0,
            cf: a < b,
            of: (((a ^ b) & (a ^ r)) >> 63) != 0,
            pf: (r as u8).count_ones() % 2 == 0,
        };
        r
    }

    fn set_flags_add(&mut self, a: u64, b: u64) -> u64 {
        let r = a.wrapping_add(b);
        self.flags = Flags {
            zf: r == 0,
            sf: (r >> 63) != 0,
            cf: r < a,
            of: ((!(a ^ b) & (a ^ r)) >> 63) != 0,
            pf: (r as u8).count_ones() % 2 == 0,
        };
        r
    }

    fn alu(&mut self, op: AluOp, a: u64, b: u64) -> u64 {
        match op {
            AluOp::Add => self.set_flags_add(a, b),
            AluOp::Sub => self.set_flags_sub(a, b),
            AluOp::Cmp => {
                self.set_flags_sub(a, b);
                a
            }
            AluOp::And => {
                let r = a & b;
                self.set_flags_logic(r);
                r
            }
            AluOp::Or => {
                let r = a | b;
                self.set_flags_logic(r);
                r
            }
            AluOp::Xor => {
                let r = a ^ b;
                self.set_flags_logic(r);
                r
            }
        }
    }

    fn push<S: TraceSink + ?Sized>(&mut self, v: u64, sink: &mut S) {
        let rsp = self.reg(Reg::Rsp).wrapping_sub(8);
        self.set_reg(Reg::Rsp, rsp);
        self.mem.write_u64(rsp, v);
        sink.on_mem(rsp, 8, true);
    }

    fn pop<S: TraceSink + ?Sized>(&mut self, sink: &mut S) -> u64 {
        let rsp = self.reg(Reg::Rsp);
        let v = self.mem.read_u64(rsp);
        sink.on_mem(rsp, 8, false);
        self.set_reg(Reg::Rsp, rsp.wrapping_add(8));
        v
    }

    fn resolve_rm<S: TraceSink + ?Sized>(&mut self, rm: &Rm, sink: &mut S) -> u64 {
        match rm {
            Rm::Reg(r) => self.reg(*r),
            Rm::Mem(m) => {
                let ea = self.effective_addr(m);
                sink.on_mem(ea, 8, false);
                self.mem.read_u64(ea)
            }
        }
    }

    /// Executes one instruction. Returns `Some(exit)` when the program
    /// terminates.
    ///
    /// # Errors
    ///
    /// See [`EmuError`].
    pub fn step<S: TraceSink + ?Sized>(&mut self, sink: &mut S) -> Result<Option<Exit>, EmuError> {
        let rip = self.rip;
        let (inst, len) = self.fetch(rip)?;
        let next = rip + len as u64;
        sink.on_inst(rip, len);
        let mut new_rip = next;

        match inst {
            Inst::Push(r) => {
                let v = self.reg(r);
                self.push(v, sink);
            }
            Inst::Pop(r) => {
                let v = self.pop(sink);
                self.set_reg(r, v);
            }
            Inst::MovRR { dst, src } => {
                let v = self.reg(src);
                self.set_reg(dst, v);
            }
            Inst::MovRI { dst, imm } => self.set_reg(dst, imm as u64),
            Inst::MovRSym { dst, target } => {
                let Target::Addr(a) = target else {
                    panic!("unresolved symbol reached the emulator");
                };
                self.set_reg(dst, a);
            }
            Inst::Load { dst, mem } => {
                let ea = self.effective_addr(&mem);
                sink.on_mem(ea, 8, false);
                let v = self.mem.read_u64(ea);
                self.set_reg(dst, v);
            }
            Inst::Store { mem, src } => {
                let ea = self.effective_addr(&mem);
                sink.on_mem(ea, 8, true);
                let v = self.reg(src);
                self.mem.write_u64(ea, v);
            }
            Inst::Lea { dst, mem } => {
                let ea = self.effective_addr(&mem);
                self.set_reg(dst, ea);
            }
            Inst::Alu { op, dst, src } => {
                let r = self.alu(op, self.reg(dst), self.reg(src));
                if op.writes_dst() {
                    self.set_reg(dst, r);
                }
            }
            Inst::AluI { op, dst, imm } => {
                let r = self.alu(op, self.reg(dst), imm as i64 as u64);
                if op.writes_dst() {
                    self.set_reg(dst, r);
                }
            }
            Inst::Test { a, b } => {
                let r = self.reg(a) & self.reg(b);
                self.set_flags_logic(r);
            }
            Inst::Imul { dst, src } => {
                let a = self.reg(dst) as i64;
                let b = self.reg(src) as i64;
                let (r, over) = a.overflowing_mul(b);
                self.flags = Flags {
                    zf: r == 0,
                    sf: r < 0,
                    of: over,
                    cf: over,
                    pf: (r as u8).count_ones() % 2 == 0,
                };
                self.set_reg(dst, r as u64);
            }
            Inst::Shift { op, dst, amount } => {
                let a = self.reg(dst);
                let c = (amount & 63) as u32;
                if c != 0 {
                    let (r, cf) = match op {
                        ShiftOp::Shl => (a.wrapping_shl(c), (a >> (64 - c)) & 1 != 0),
                        ShiftOp::Shr => (a.wrapping_shr(c), (a >> (c - 1)) & 1 != 0),
                        ShiftOp::Sar => (
                            ((a as i64).wrapping_shr(c)) as u64,
                            ((a as i64) >> (c - 1)) & 1 != 0,
                        ),
                    };
                    self.flags = Flags {
                        zf: r == 0,
                        sf: (r >> 63) != 0,
                        of: false,
                        cf,
                        pf: (r as u8).count_ones() % 2 == 0,
                    };
                    self.set_reg(dst, r);
                }
            }
            Inst::Setcc { cond, dst } => {
                let bit = u64::from(self.flags.cond(cond));
                let old = self.reg(dst);
                self.set_reg(dst, (old & !0xFF) | bit);
            }
            Inst::Movzx8 { dst, src } => {
                let v = self.reg(src) & 0xFF;
                self.set_reg(dst, v);
            }
            Inst::Jcc { cond, target, .. } => {
                let taken = self.flags.cond(cond);
                let tgt = target.addr().expect("decoded branches are resolved");
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: if taken { tgt } else { next },
                    taken,
                    kind: BranchKind::Cond,
                });
                if taken {
                    new_rip = tgt;
                }
            }
            Inst::Jmp { target, .. } => {
                let tgt = target.addr().expect("decoded branches are resolved");
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: tgt,
                    taken: true,
                    kind: BranchKind::Uncond,
                });
                new_rip = tgt;
            }
            Inst::JmpInd { rm } => {
                let tgt = self.resolve_rm(&rm, sink);
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: tgt,
                    taken: true,
                    kind: BranchKind::IndirectJump,
                });
                new_rip = tgt;
            }
            Inst::Call { target } => {
                let tgt = target.addr().expect("decoded branches are resolved");
                self.push(next, sink);
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: tgt,
                    taken: true,
                    kind: BranchKind::Call,
                });
                new_rip = tgt;
            }
            Inst::CallInd { rm } => {
                let tgt = self.resolve_rm(&rm, sink);
                self.push(next, sink);
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: tgt,
                    taken: true,
                    kind: BranchKind::IndirectCall,
                });
                new_rip = tgt;
            }
            Inst::Ret | Inst::RepzRet => {
                let tgt = self.pop(sink);
                sink.on_branch(BranchEvent {
                    from: rip,
                    to: tgt,
                    taken: true,
                    kind: BranchKind::Return,
                });
                if tgt == RETURN_SENTINEL {
                    self.rip = tgt;
                    return Ok(Some(Exit::Returned));
                }
                new_rip = tgt;
            }
            Inst::Nop { .. } => {}
            Inst::Ud2 => return Err(EmuError::Trap { rip }),
            Inst::Syscall => {
                let nr = self.reg(Reg::Rax);
                match nr {
                    1 => {
                        // "emit": record rdi as program output.
                        let v = self.reg(Reg::Rdi) as i64;
                        self.output.push(v);
                        self.set_reg(Reg::Rax, 8);
                    }
                    60 | 231 => {
                        self.rip = next;
                        return Ok(Some(Exit::Exited(self.reg(Reg::Rdi) as i64)));
                    }
                    number => return Err(EmuError::BadSyscall { rip, number }),
                }
            }
        }

        self.rip = new_rip;
        Ok(None)
    }

    /// Runs until exit, error, or `max_steps` instructions.
    ///
    /// # Errors
    ///
    /// See [`EmuError`].
    pub fn run<S: TraceSink + ?Sized>(
        &mut self,
        sink: &mut S,
        max_steps: u64,
    ) -> Result<RunResult, EmuError> {
        let mut steps = 0u64;
        while steps < max_steps {
            steps += 1;
            if let Some(exit) = self.step(sink)? {
                return Ok(RunResult { exit, steps });
            }
        }
        Ok(RunResult {
            exit: Exit::MaxSteps,
            steps,
        })
    }

    /// Calls the function at `addr` with up to six integer arguments,
    /// running until it returns. Used by unit tests to exercise individual
    /// functions.
    ///
    /// # Errors
    ///
    /// See [`EmuError`].
    pub fn call_function<S: TraceSink + ?Sized>(
        &mut self,
        addr: u64,
        args: &[u64],
        sink: &mut S,
        max_steps: u64,
    ) -> Result<u64, EmuError> {
        assert!(args.len() <= 6, "at most six register arguments");
        for (i, &a) in args.iter().enumerate() {
            self.set_reg(Reg::ARGS[i], a);
        }
        self.set_reg(Reg::Rsp, STACK_TOP - 64);
        self.push(RETURN_SENTINEL, &mut crate::NullSink);
        self.rip = addr;
        let r = self.run(sink, max_steps)?;
        debug_assert!(matches!(r.exit, Exit::Returned | Exit::MaxSteps));
        Ok(self.reg(Reg::Rax))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountingSink, NullSink};
    use bolt_isa::{encode_at, Label};

    /// Assembles instructions at `base`, resolving label `n` to the start
    /// of instruction `n`.
    fn asm(insts: &[Inst], base: u64) -> Vec<u8> {
        // Two passes: compute addresses, then encode with resolution.
        let mut addrs = Vec::with_capacity(insts.len());
        let mut pos = base;
        for i in insts {
            addrs.push(pos);
            pos += bolt_isa::encoded_len(i) as u64;
        }
        let mut out = Vec::new();
        for (i, inst) in insts.iter().enumerate() {
            let mut inst = *inst;
            if let Some(Target::Label(Label(n))) = inst.target() {
                inst.set_target(Target::Addr(addrs[n as usize]));
            }
            out.extend(encode_at(&inst, addrs[i]).unwrap().bytes);
        }
        out
    }

    fn machine_with(insts: &[Inst]) -> Machine {
        let mut m = Machine::new();
        let code = asm(insts, 0x400000);
        m.mem.write(0x400000, &code);
        m.rip = 0x400000;
        m.set_reg(Reg::Rsp, STACK_TOP - 64);
        m
    }

    #[test]
    fn arithmetic_and_flags() {
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 5,
            },
            Inst::MovRI {
                dst: Reg::Rcx,
                imm: 7,
            },
            Inst::Alu {
                op: AluOp::Add,
                dst: Reg::Rax,
                src: Reg::Rcx,
            },
            Inst::AluI {
                op: AluOp::Cmp,
                dst: Reg::Rax,
                imm: 12,
            },
        ];
        let mut m = machine_with(&insts);
        for _ in 0..4 {
            m.step(&mut NullSink).unwrap();
        }
        assert_eq!(m.reg(Reg::Rax), 12);
        assert!(m.flags.zf, "12 - 12 sets ZF");
        assert!(m.flags.cond(Cond::E));
        assert!(!m.flags.cond(Cond::L));
        assert!(m.flags.cond(Cond::Ge));
    }

    #[test]
    fn signed_comparison_conditions() {
        let mut m = machine_with(&[
            Inst::MovRI {
                dst: Reg::Rax,
                imm: -3,
            },
            Inst::AluI {
                op: AluOp::Cmp,
                dst: Reg::Rax,
                imm: 2,
            },
        ]);
        m.step(&mut NullSink).unwrap();
        m.step(&mut NullSink).unwrap();
        assert!(m.flags.cond(Cond::L), "-3 < 2 signed");
        assert!(!m.flags.cond(Cond::B), "-3 is huge unsigned");
        assert!(m.flags.cond(Cond::Ne));
    }

    #[test]
    fn setcc_and_movzx() {
        let mut m = machine_with(&[
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 10,
            },
            Inst::AluI {
                op: AluOp::Cmp,
                dst: Reg::Rax,
                imm: 3,
            },
            Inst::Setcc {
                cond: Cond::G,
                dst: Reg::Rdx,
            },
            Inst::Movzx8 {
                dst: Reg::Rdx,
                src: Reg::Rdx,
            },
        ]);
        m.set_reg(Reg::Rdx, 0xFFFF_FFFF_FFFF_FF00);
        for _ in 0..4 {
            m.step(&mut NullSink).unwrap();
        }
        assert_eq!(m.reg(Reg::Rdx), 1);
    }

    #[test]
    fn branch_events_and_control_flow() {
        // 0: mov rax, 1
        // 1: test rax, rax
        // 2: jne L4 (taken)
        // 3: ud2 (skipped)
        // 4: ret -> sentinel
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::Test {
                a: Reg::Rax,
                b: Reg::Rax,
            },
            Inst::Jcc {
                cond: Cond::Ne,
                target: Target::Label(Label(4)),
                width: bolt_isa::JumpWidth::Near,
            },
            Inst::Ud2,
            Inst::Ret,
        ];
        let mut m = machine_with(&insts);
        m.push(RETURN_SENTINEL, &mut NullSink);
        let mut sink = CountingSink::default();
        let r = m.run(&mut sink, 100).unwrap();
        assert_eq!(r.exit, Exit::Returned);
        assert_eq!(sink.taken_cond_branches, 1);
        assert_eq!(sink.returns, 1);
        assert_eq!(r.steps, 4);
    }

    #[test]
    fn call_and_stack_discipline() {
        // main: call f; ret
        // f: mov rax, 42; ret
        let insts = [
            Inst::Call {
                target: Target::Label(Label(2)),
            },
            Inst::Ret,
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 42,
            },
            Inst::Ret,
        ];
        let mut m = machine_with(&insts);
        let rax = m.call_function(0x400000, &[], &mut NullSink, 100).unwrap();
        assert_eq!(rax, 42);
    }

    #[test]
    fn memory_and_jump_table_dispatch() {
        // Jump table with 2 entries in "rodata" at 0x500000.
        // mov rax, 1 (index)
        // movabs r10, 0x500000
        // mov r11, [r10 + rax*8]
        // jmp r11
        // L4: mov rax, 111; ret   (entry 0)
        // L6: mov rax, 222; ret   (entry 1)
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::MovRI {
                dst: Reg::R10,
                imm: 0x500000,
            },
            Inst::Load {
                dst: Reg::R11,
                mem: Mem::BaseIndexScale {
                    base: Reg::R10,
                    index: Reg::Rax,
                    scale: 8,
                    disp: 0,
                },
            },
            Inst::JmpInd {
                rm: Rm::Reg(Reg::R11),
            },
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 111,
            },
            Inst::Ret,
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 222,
            },
            Inst::Ret,
        ];
        let mut m = machine_with(&insts);
        // Compute addresses of insts 4 and 6 the same way `asm` does.
        let mut addrs = vec![0x400000u64];
        for i in &insts {
            let last = *addrs.last().unwrap();
            addrs.push(last + bolt_isa::encoded_len(i) as u64);
        }
        m.mem.write_u64(0x500000, addrs[4]);
        m.mem.write_u64(0x500008, addrs[6]);
        let mut sink = CountingSink::default();
        let rax = m.call_function(0x400000, &[], &mut sink, 100).unwrap();
        assert_eq!(rax, 222, "index 1 selects the second table entry");
        assert!(sink.mem_reads >= 1);
    }

    #[test]
    fn syscall_emit_and_exit() {
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::MovRI {
                dst: Reg::Rdi,
                imm: -99,
            },
            Inst::Syscall,
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 60,
            },
            Inst::MovRI {
                dst: Reg::Rdi,
                imm: 3,
            },
            Inst::Syscall,
        ];
        let mut m = machine_with(&insts);
        let r = m.run(&mut NullSink, 100).unwrap();
        assert_eq!(r.exit, Exit::Exited(3));
        assert_eq!(m.output, vec![-99]);
    }

    /// An ELF whose entry emits `mark` and then exits with `mark`.
    fn emitting_elf(mark: i64) -> bolt_elf::Elf {
        let insts = [
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 1,
            },
            Inst::MovRI {
                dst: Reg::Rdi,
                imm: mark,
            },
            Inst::Syscall,
            Inst::MovRI {
                dst: Reg::Rax,
                imm: 60,
            },
            Inst::Syscall,
        ];
        let code = asm(&insts, 0x400000);
        let mut elf = bolt_elf::Elf::new(0x400000);
        elf.sections
            .push(bolt_elf::Section::code(".text", 0x400000, code));
        elf
    }

    #[test]
    fn load_elf_fully_resets_machine_state() {
        // First program: dirties regs, flags, memory, and output.
        let mut m = Machine::new();
        m.load_elf(&emitting_elf(11));
        m.set_reg(Reg::R9, 0xDEAD);
        m.mem.write_u64(0x700000, 0xDEAD_BEEF);
        let r = m.run(&mut NullSink, 100).unwrap();
        assert_eq!(r.exit, Exit::Exited(11));
        assert_eq!(m.output, vec![11]);

        // Reloading must not leak any of that into the second run.
        m.load_elf(&emitting_elf(22));
        assert_eq!(m.reg(Reg::R9), 0, "stale registers cleared");
        assert_eq!(m.flags, Flags::default(), "stale flags cleared");
        assert_eq!(m.mem.read_u64(0x700000), 0, "stale memory pages cleared");
        assert!(m.output.is_empty(), "stale output cleared");
        let r = m.run(&mut NullSink, 100).unwrap();
        assert_eq!(r.exit, Exit::Exited(22));
        assert_eq!(m.output, vec![22], "only the second program's output");

        // A reused machine matches a fresh one observably.
        let mut fresh = Machine::new();
        fresh.load_elf(&emitting_elf(22));
        fresh.run(&mut NullSink, 100).unwrap();
        assert_eq!(m.output, fresh.output);
        assert_eq!(m.regs, fresh.regs);
    }

    #[test]
    fn flat_icache_covers_loaded_text() {
        let mut m = Machine::new();
        m.load_elf(&emitting_elf(5));
        assert!(
            !m.icache_index.is_empty(),
            "flat index sized to the text span"
        );
        assert_eq!(m.icache_base, 0x400000);
        let r = m.run(&mut NullSink, 100).unwrap();
        assert_eq!(r.exit, Exit::Exited(5));
        assert_eq!(
            m.icache_entries.len(),
            5,
            "one packed entry per decoded instruction start"
        );
        assert!(m.icache_spill.is_empty(), "no spill for in-span code");
    }

    #[test]
    fn traps_and_bad_code() {
        let mut m = machine_with(&[Inst::Ud2]);
        assert_eq!(m.step(&mut NullSink), Err(EmuError::Trap { rip: 0x400000 }));
        let mut m = Machine::new();
        m.rip = 0x999000; // zeros decode as add [rax], al? -> unsupported
        assert!(matches!(
            m.step(&mut NullSink),
            Err(EmuError::BadInstruction { .. })
        ));
    }

    #[test]
    fn shifts() {
        let mut m = machine_with(&[
            Inst::MovRI {
                dst: Reg::Rax,
                imm: -16,
            },
            Inst::Shift {
                op: ShiftOp::Sar,
                dst: Reg::Rax,
                amount: 2,
            },
            Inst::MovRI {
                dst: Reg::Rcx,
                imm: 3,
            },
            Inst::Shift {
                op: ShiftOp::Shl,
                dst: Reg::Rcx,
                amount: 4,
            },
        ]);
        for _ in 0..4 {
            m.step(&mut NullSink).unwrap();
        }
        assert_eq!(m.reg(Reg::Rax) as i64, -4);
        assert_eq!(m.reg(Reg::Rcx), 48);
    }
}
